//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (which route through an owned `serde::Value` tree rather than the
//! upstream visitor machinery). Because crates.io is unreachable in this
//! build environment, the parser is hand-rolled over `proc_macro` tokens —
//! no `syn`/`quote`. Supported shapes, which cover every derive site in the
//! workspace:
//!
//! * structs with named fields;
//! * tuple structs (newtypes serialize as their inner value; wider tuples as
//!   a sequence), including `#[serde(transparent)]`;
//! * enums with unit, tuple (1-field) and struct variants, externally tagged
//!   like upstream serde.
//!
//! Generics are intentionally unsupported (no derive site needs them); the
//! macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
        transparent: bool,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Returns `true` if this attribute group is `serde(transparent)`.
fn attr_is_transparent(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(inner))) if i.to_string() == "serde" => {
            inner.stream().to_string().trim() == "transparent"
        }
        _ => false,
    }
}

/// Skips `#[...]` attributes, returning whether any was `#[serde(transparent)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut transparent = false;
    while *pos + 1 < tokens.len() {
        match (&tokens[*pos], &tokens[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if attr_is_transparent(g) {
                    transparent = true;
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    transparent
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = tokens.get(*pos) {
        if i.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Parses the field names out of a named-field brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => panic!("serde_derive stub: expected field name, got `{other}`"),
            None => break,
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => panic!("serde_derive stub: expected `:` after field `{name}`"),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple group by top-level commas.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => panic!("serde_derive stub: expected variant name, got `{other}`"),
            None => break,
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let transparent = skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive stub: unsupported struct body: {other:?}"),
            };
            Item::Struct {
                name,
                fields,
                transparent,
            }
        }
        "enum" => {
            let variants = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
                other => panic!("serde_derive stub: unsupported enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

fn named_ser(fields: &[String], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({access}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn named_de(fields: &[String], ctor: &str, src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
            )
        })
        .collect();
    format!("{ctor} {{ {} }}", inits.join(", "))
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct {
            name,
            fields,
            transparent,
        } => {
            let body = match fields {
                Fields::Named(fs) => named_ser(fs, "&self."),
                Fields::Tuple(1) => {
                    let _ = transparent; // 1-tuples always serialize transparently
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\"))"
                        ),
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let inner = named_ser(fs, "");
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})])"
                            )
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(x0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Seq(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields, .. } => {
            let body = match fields {
                Fields::Named(fs) => {
                    format!("::std::result::Result::Ok({})", named_de(fs, name, "v"))
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} =>\n\
                                 ::std::result::Result::Ok({name}({})),\n\
                             other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                                 ::std::format!(\"expected {n}-element sequence for {name}, got {{other:?}}\"))),\n\
                         }}",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname})",
                        vname = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(fs) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({})",
                            named_de(fs, &format!("{name}::{vname}"), "inner")
                        )),
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?))"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match inner {{\n\
                                     ::serde::Value::Seq(items) if items.len() == {n} =>\n\
                                         ::std::result::Result::Ok({name}::{vname}({})),\n\
                                     other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                                         ::std::format!(\"bad payload for {name}::{vname}: {{other:?}}\"))),\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                                         ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::DeError::msg(\n\
                                 ::std::format!(\"cannot deserialize {name} from {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                data_arms = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(",\n"))
                },
            )
        }
    };
    code.parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
