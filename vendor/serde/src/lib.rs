//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset the DPSS workspace uses: `#[derive(Serialize,
//! Deserialize)]` (including `#[serde(transparent)]` newtypes and
//! externally-tagged enums) and a self-describing [`Value`] tree that
//! `serde_json` renders to / parses from JSON text.
//!
//! Unlike real serde there is no zero-copy visitor machinery: serialization
//! goes through an owned [`Value`]. That is plenty for the workspace's
//! report/figure persistence, and the public trait names match upstream so
//! call sites (`serde_json::to_string_pretty`, derives) are source-compatible.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing data tree, the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and text formats like JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => return Err(DeError::msg(format!(
                        "expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::msg("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(DeError::msg(format!(
                        "expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            ref other => Err(DeError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::msg(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::F64(2.5)).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn map_get_finds_keys() {
        let m = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(m.get("a"), Some(&Value::U64(1)));
        assert_eq!(m.get("b"), None);
    }
}
