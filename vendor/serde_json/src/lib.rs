//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders the vendored `serde::Value` tree to JSON text and parses JSON
//! text back. Covers the workspace's call sites: [`to_string`],
//! [`to_string_pretty`] and [`from_str`]. Output is valid JSON (RFC 8259):
//! strings are escaped, numbers use Rust's shortest round-trip formatting,
//! and non-finite floats serialize as `null` (matching upstream).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` on f64 is the shortest representation that round-trips.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no separator space
                    }
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; find its byte length.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {:?}",
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {:?}",
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("fig \"6\"".into())),
            ("count".into(), Value::U64(3)),
            ("delta".into(), Value::F64(-0.25)),
            (
                "rows".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::I64(-7)]),
            ),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &v, None, 0);
        assert_eq!(parse(&compact).unwrap(), v);
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.5f64, 2.0, -3.25];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
    }
}
