//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the API the `dpss-bench` benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size`), [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`].
//!
//! It measures wall-clock medians over a fixed sample count and prints one
//! line per benchmark — no statistics engine, plots or HTML reports. The
//! point is that `cargo bench` compiles and produces comparable numbers
//! offline; swap in upstream criterion when a registry is available.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped between setup calls (accepted for API
/// compatibility; every batch is size 1 here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine` over this bench's sample count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.result.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.result.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut timings = Vec::with_capacity(samples);
    {
        let mut b = Bencher {
            samples,
            result: &mut timings,
        };
        f(&mut b);
    }
    if timings.is_empty() {
        println!("{id:<50} (no measurement)");
        return;
    }
    timings.sort();
    let median = timings[timings.len() / 2];
    let total: Duration = timings.iter().sum();
    println!(
        "{id:<50} median {:>12.3?}   mean {:>12.3?}   ({} samples)",
        median,
        total / timings.len() as u32,
        timings.len()
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_apis_run_the_closures() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.sample_size(3)
            .bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);

        let mut batched = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_function("u", |b| {
            b.iter_batched(|| 5usize, |x| batched += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(batched, 10);
    }
}
