//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of exactly the API
//! surface the DPSS crates use:
//!
//! * [`rngs::StdRng`] — a xoshiro256++ generator (not the upstream ChaCha12,
//!   but a high-quality, deterministic, seedable PRNG; all repository
//!   artifacts are keyed to *this* stream);
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion, matching
//!   the upstream contract that distinct seeds give independent streams;
//! * [`Rng::gen`] for `f64`, `f32`, `bool`, `u32`, `u64`.
//!
//! Swapping in the real crate later only re-keys the synthetic traces; no
//! correctness property in the workspace depends on the exact stream.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A PRNG that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// High-level convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard uniform distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}
