//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io/)
//! crate, covering the API surface the DPSS property suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * range strategies over `f64` and integer types, [`strategy::Just`],
//!   [`prop_oneof!`] and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream, chosen deliberately for CI friendliness:
//!
//! * sampling is **deterministic** — the RNG is seeded from the test name,
//!   so failures always reproduce;
//! * there is **no shrinking**; the failing case's number is reported
//!   instead (re-runs regenerate the identical inputs);
//! * case counts are capped (default 64, see
//!   [`test_runner::ProptestConfig`]) and can be overridden with the
//!   `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Strategy trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (no shrinking to invert, so
        /// this is a plain post-transform).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;
        fn generate(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u = rng.next_f64();
            self.start + u * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty integer range strategy");
                    let offset = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_int_range_inclusive {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(hi >= lo, "empty inclusive range strategy");
                    let span = hi - lo + 1;
                    let offset = (rng.next_u64() as i128).rem_euclid(span);
                    (lo + offset) as $t
                }
            }
        )*};
    }

    impl_int_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u = rng.next_f64();
            self.start() + u * (self.end() - self.start())
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Creates a union over the given non-empty option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() as usize) % self.options.len();
            self.options[i].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Half-open length range for [`vec()`]; built from a `usize` (exact
    /// length) or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec-length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.end() >= r.start(), "empty vec-length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Config, RNG and failure plumbing used by the [`crate::proptest!`]
    //! expansion.

    use std::fmt;

    /// Hard ceiling applied to every suite so `cargo test -q` stays inside
    /// CI time even if a caller asks for thousands of cases.
    pub const MAX_CASES: u32 = 256;

    fn default_cases() -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(64),
            Err(_) => 64,
        }
    }

    /// Per-suite configuration (only `cases` is modeled).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Requested number of cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Requests `cases` runs per property (capped at [`MAX_CASES`]).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count actually run: the requested count, capped, with a
        /// `PROPTEST_CASES` environment override taking precedence.
        pub fn effective_cases(&self) -> u32 {
            if let Ok(v) = std::env::var("PROPTEST_CASES") {
                if let Ok(n) = v.parse::<u32>() {
                    return n.min(MAX_CASES);
                }
            }
            self.cases.min(MAX_CASES)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: default_cases(),
            }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 RNG; one independent stream per test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the test's name (FNV-1a), so every test
        /// has a stable, independent input sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministically sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed on deterministic case {case}/{cases}: {e}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        // push-after-new is deliberate: each push coerces its concrete
        // strategy to the boxed trait object, which vec![] cannot.
        #[allow(clippy::vec_init_then_push)]
        {
            let mut options: ::std::vec::Vec<
                ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
            > = ::std::vec::Vec::new();
            $(options.push(::std::boxed::Box::new($strat));)+
            $crate::strategy::Union::new(options)
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_land_inside(x in -5.0..5.0f64, n in 3usize..9) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_bounds(
            xs in collection::vec(0.0..1.0f64, 2..6),
            fixed in collection::vec(0u64..10, 4),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(fixed.len(), 4);
        }

        #[test]
        fn oneof_picks_only_listed(v in prop_oneof![Just(1u8), Just(4u8)]) {
            prop_assert!(v == 1 || v == 4);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
