//! Facade smoke test: one short run of each headline controller through
//! the `smartdpss` re-exports alone, asserting the Theorem 2 cost ordering
//! `offline ≤ smart ≤ impatient` (offline sees the whole future, so it
//! lower-bounds any online policy; impatient serves immediately at any
//! price, so a cost-aware online policy must not lose to it).

use smartdpss::{
    Engine, Impatient, OfflineOptimal, Scenario, SimParams, SlotClock, SmartDpss, SmartDpssConfig,
};

#[test]
fn theorem_2_cost_ordering_on_a_tiny_trace() {
    // Six days: the shortest horizon on which the ordering is strict.
    // Shorter runs let SmartDPSS park backlog past the horizon edge (cost
    // it never pays), which can place it nominally below offline.
    let clock = SlotClock::new(6, 24, 1.0).unwrap();
    let traces = Scenario::icdcs13().generate(&clock, 42).unwrap();
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, traces.clone()).unwrap();

    let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
    let mut offline = OfflineOptimal::new(params, traces).unwrap();
    let mut impatient = Impatient::two_markets();

    let smart_run = engine.run(&mut smart).unwrap();
    let offline_run = engine.run(&mut offline).unwrap();
    let impatient_run = engine.run(&mut impatient).unwrap();

    // Every controller must keep the datacenter up.
    for (name, r) in [
        ("smart", &smart_run),
        ("offline", &offline_run),
        ("impatient", &impatient_run),
    ] {
        assert_eq!(r.availability_violations, 0, "{name} caused a blackout");
        assert_eq!(r.unserved_ds.mwh(), 0.0, "{name} dropped DS demand");
    }

    let (off, smart, imp) = (
        offline_run.total_cost().dollars(),
        smart_run.total_cost().dollars(),
        impatient_run.total_cost().dollars(),
    );
    // Tiny tolerance: offline's frame LP and the online policies round
    // through the same plant, so ties at 1e-9 scale are equalities.
    assert!(
        off <= smart + 1e-6,
        "offline (${off:.4}) must lower-bound smart (${smart:.4})"
    );
    assert!(
        smart <= imp + 1e-6,
        "smart (${smart:.4}) must not lose to impatient (${imp:.4})"
    );
}
