//! Facade smoke test: one short run of each headline controller through
//! the `smartdpss` re-exports alone, asserting the Theorem 2 cost ordering
//! `offline ≤ smart ≤ impatient` (offline sees the whole future, so it
//! lower-bounds any online policy; impatient serves immediately at any
//! price, so a cost-aware online policy must not lose to it).

use smartdpss::{
    Engine, Impatient, OfflineOptimal, RunReport, Scenario, SimParams, SlotClock, SmartDpss,
    SmartDpssConfig,
};

/// The horizon-edge-backlog invariant. The cost ordering is only
/// meaningful if no controller "wins" by parking served-never-paid demand
/// past the horizon edge, so the edge behaviour is asserted, not assumed:
///
/// * every controller's parked backlog is FIFO-consistent — it cannot
///   exceed one `Ddtmax` arrival per slot of its oldest pending age;
/// * the *online* policies drain: whatever remains at horizon end arrived
///   within the last few slots (the service-latency floor of Eq. (2)'s
///   pre-arrival semantics, which makes even eager service one slot
///   late);
/// * the *offline benchmark* is the documented exception: its frame LP
///   enforces an intra-frame service deadline but may relax it (or have
///   its plan clipped by the plant), so it can defer up to one coarse
///   frame of arrivals past the edge — never more. This slack is cost it
///   never pays, which is why the ordering below is checked on a horizon
///   long enough (6 days) for it to be strict anyway.
fn assert_horizon_edge_invariant(name: &str, r: &RunReport, slots_per_frame: usize) {
    let ddt_max = smartdpss::traces::paper_ddt_max().mwh();
    let age_slots = r.oldest_pending_age.map_or(0, |a| a + 1);
    assert!(
        r.final_backlog.mwh() <= age_slots as f64 * ddt_max + 1e-9,
        "{name}: parked backlog {} MWh exceeds {} slots of Ddtmax arrivals",
        r.final_backlog.mwh(),
        age_slots,
    );
    let drain_slots = if name == "offline" {
        slots_per_frame // the documented horizon-edge exception
    } else {
        3 // online service-latency floor
    };
    assert!(
        age_slots <= drain_slots,
        "{name}: oldest parked backlog is {age_slots} slots old \
         (allowed {drain_slots}) — horizon-edge draining regressed",
    );
    assert!(
        r.final_backlog.mwh() <= drain_slots as f64 * ddt_max + 1e-9,
        "{name}: parked backlog {} MWh exceeds the {drain_slots}-slot \
         horizon-edge allowance",
        r.final_backlog.mwh(),
    );
}

#[test]
fn theorem_2_cost_ordering_on_a_tiny_trace() {
    // Six days: the shortest horizon on which the ordering is strict
    // (see `assert_horizon_edge_invariant` for why short horizons are
    // delicate at the edge).
    let clock = SlotClock::new(6, 24, 1.0).unwrap();
    let traces = Scenario::icdcs13().generate(&clock, 42).unwrap();
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, traces.clone()).unwrap();

    let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
    let mut offline = OfflineOptimal::new(params, traces).unwrap();
    let mut impatient = Impatient::two_markets();

    let smart_run = engine.run(&mut smart).unwrap();
    let offline_run = engine.run(&mut offline).unwrap();
    let impatient_run = engine.run(&mut impatient).unwrap();

    // Every controller must keep the datacenter up, and none may escape
    // the horizon-edge backlog invariant.
    for (name, r) in [
        ("smart", &smart_run),
        ("offline", &offline_run),
        ("impatient", &impatient_run),
    ] {
        assert_eq!(r.availability_violations, 0, "{name} caused a blackout");
        assert_eq!(r.unserved_ds.mwh(), 0.0, "{name} dropped DS demand");
        assert_horizon_edge_invariant(name, r, clock.slots_per_frame());
    }

    let (off, smart, imp) = (
        offline_run.total_cost().dollars(),
        smart_run.total_cost().dollars(),
        impatient_run.total_cost().dollars(),
    );
    // Tiny tolerance: offline's frame LP and the online policies round
    // through the same plant, so ties at 1e-9 scale are equalities.
    assert!(
        off <= smart + 1e-6,
        "offline (${off:.4}) must lower-bound smart (${smart:.4})"
    );
    assert!(
        smart <= imp + 1e-6,
        "smart (${smart:.4}) must not lose to impatient (${imp:.4})"
    );
}
