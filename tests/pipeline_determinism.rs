//! Cross-crate pipeline properties: deterministic reproduction, CSV
//! round-trips feeding the engine, LP-vs-closed-form controller
//! equivalence, and per-slot energy conservation audits.

use smartdpss::{Engine, SimParams, SlotClock, SmartDpss, SmartDpssConfig, TraceSet};

#[test]
fn identical_seeds_reproduce_identical_reports() {
    let params = SimParams::icdcs13();
    let clock = SlotClock::icdcs13_month();
    let mk = || {
        let traces = smartdpss::traces::paper_month_traces(77).unwrap();
        let engine = Engine::new(params, traces).unwrap();
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        engine.run(&mut ctl).unwrap()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn csv_round_trip_preserves_simulation_results() {
    let truth = smartdpss::traces::paper_month_traces(5).unwrap();
    let csv = truth.to_csv();
    let back = TraceSet::from_csv(truth.clock, &csv).unwrap();
    assert_eq!(back, truth);

    let params = SimParams::icdcs13();
    let clock = truth.clock;
    let a = {
        let engine = Engine::new(params, truth).unwrap();
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        engine.run(&mut ctl).unwrap()
    };
    let b = {
        let engine = Engine::new(params, back).unwrap();
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        engine.run(&mut ctl).unwrap()
    };
    assert_eq!(a, b, "csv round-trip changed the physics");
}

#[test]
fn lp_backed_controller_matches_closed_form_on_the_full_month() {
    let truth = smartdpss::traces::paper_month_traces(9).unwrap();
    let params = SimParams::icdcs13();
    let clock = truth.clock;
    let engine = Engine::new(params, truth).unwrap();
    let mut cf = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
    let mut lp = SmartDpss::new(
        SmartDpssConfig::icdcs13().with_lp_solver(true),
        params,
        clock,
    )
    .unwrap();
    let r_cf = engine.run(&mut cf).unwrap();
    let r_lp = engine.run(&mut lp).unwrap();
    let rel = (r_cf.total_cost().dollars() - r_lp.total_cost().dollars()).abs()
        / r_cf.total_cost().dollars();
    assert!(
        rel < 1e-6,
        "cf {} vs lp {}",
        r_cf.total_cost(),
        r_lp.total_cost()
    );
    assert!((r_cf.average_delay_slots - r_lp.average_delay_slots).abs() < 1e-6);
    assert_eq!(r_cf.availability_violations, r_lp.availability_violations);
}

#[test]
fn per_slot_energy_balance_holds_over_the_month() {
    let truth = smartdpss::traces::paper_month_traces(13).unwrap();
    let params = SimParams::icdcs13();
    let clock = truth.clock;
    let engine = Engine::new(params, truth.clone())
        .unwrap()
        .with_slot_recording(true);
    let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
    let r = engine.run(&mut ctl).unwrap();
    let outcomes = r.slot_outcomes.as_ref().unwrap();
    assert_eq!(outcomes.len(), clock.total_slots());
    for o in outcomes {
        // Eq. (4): s(τ) + bdc − brc = d_ds + s_dt + W (+ unserved slack).
        let lhs = o.supply_lt + o.purchase_rt + o.renewable + o.discharge;
        let rhs = o.served_ds + o.served_dt + o.charge + o.waste + o.unserved_ds;
        assert!(
            (lhs.mwh() - rhs.mwh()).abs() < 1e-6,
            "balance broken at slot {}",
            o.slot.index
        );
        // Battery exclusivity: brc(τ)·bdc(τ) ≡ 0.
        assert!(
            o.charge.mwh() == 0.0 || o.discharge.mwh() == 0.0,
            "simultaneous charge/discharge at slot {}",
            o.slot.index
        );
        // Interconnect cap (Eq. 5).
        assert!(o.grid_draw().mwh() <= 2.0 + 1e-9, "Pgrid exceeded");
        // Served delay-sensitive demand never exceeds the truth.
        assert!(o.served_ds.mwh() <= truth.demand_ds[o.slot.index].mwh() + 1e-9);
    }
    // Queue conservation at the horizon: arrivals = served + final backlog.
    let arrivals: f64 = truth.demand_dt.iter().map(|e| e.mwh()).sum();
    let accounted = r.served_dt.mwh() + r.final_backlog.mwh();
    assert!(
        (arrivals - accounted).abs() < 1e-6,
        "dt energy leak: {arrivals} vs {accounted}"
    );
}

#[test]
fn fifteen_minute_slots_run_end_to_end() {
    // The paper's other granularity (§II: slots are "15 or 60 minutes").
    // One week of 15-minute slots: 7 daily frames × 96 slots.
    let clock = SlotClock::new(7, 96, 0.25).unwrap();
    let truth = smartdpss::Scenario::icdcs13().generate(&clock, 21).unwrap();
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, truth)
        .unwrap()
        .with_slot_recording(true);
    let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
    let r = engine.run(&mut ctl).unwrap();
    assert_eq!(r.slots, 672);
    assert_eq!(r.availability_violations, 0);
    assert_eq!(r.unserved_ds.mwh(), 0.0);
    assert!((r.availability() - 1.0).abs() < 1e-12);
    for o in r.slot_outcomes.as_ref().unwrap() {
        // Interconnect cap scales with the slot length: 2 MW × 0.25 h.
        assert!(o.grid_draw().mwh() <= 0.5 + 1e-9, "Pgrid over 15 minutes");
        let lhs = o.supply_lt + o.purchase_rt + o.renewable + o.discharge;
        let rhs = o.served_ds + o.served_dt + o.charge + o.waste + o.unserved_ds;
        assert!((lhs.mwh() - rhs.mwh()).abs() < 1e-6);
    }
}

#[test]
fn different_seeds_produce_different_but_valid_worlds() {
    let params = SimParams::icdcs13();
    let clock = SlotClock::icdcs13_month();
    let mut costs = Vec::new();
    for seed in [1, 2, 3] {
        let truth = smartdpss::traces::paper_month_traces(seed).unwrap();
        let engine = Engine::new(params, truth).unwrap();
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        let r = engine.run(&mut ctl).unwrap();
        assert_eq!(r.availability_violations, 0, "seed {seed}");
        costs.push(r.total_cost().dollars());
    }
    assert!(
        costs[0] != costs[1] && costs[1] != costs[2],
        "seeds must matter"
    );
}
