//! The Fig. 8 (renewable penetration / demand variation) and Fig. 10
//! (system expansion) behaviours, verified end-to-end across crates.

use smartdpss::traces::scaling;
use smartdpss::{Engine, SimParams, SlotClock, SmartDpss, SmartDpssConfig};

fn run_on(traces: smartdpss::TraceSet) -> smartdpss::RunReport {
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, traces).unwrap();
    let mut ctl = SmartDpss::new(
        SmartDpssConfig::icdcs13(),
        params,
        SlotClock::icdcs13_month(),
    )
    .unwrap();
    engine.run(&mut ctl).unwrap()
}

#[test]
fn cost_decreases_with_renewable_penetration() {
    // Fig. 8: sweep penetration 0 → 100%; operating cost must fall
    // markedly (renewables are free at the margin).
    let truth = smartdpss::traces::paper_month_traces(42).unwrap();
    let mut last = f64::INFINITY;
    for pen in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let t = scaling::with_renewable_penetration(&truth, pen).unwrap();
        let cost = run_on(t).time_average_cost().dollars();
        assert!(
            cost <= last * 1.02,
            "penetration {pen}: cost {cost} above previous {last}"
        );
        last = cost;
    }
    // End-to-end drop must be large.
    let zero = run_on(scaling::with_renewable_penetration(&truth, 0.0).unwrap());
    let full = run_on(scaling::with_renewable_penetration(&truth, 1.0).unwrap());
    assert!(
        full.time_average_cost().dollars() < 0.7 * zero.time_average_cost().dollars(),
        "full penetration {} vs none {}",
        full.time_average_cost().dollars(),
        zero.time_average_cost().dollars()
    );
}

#[test]
fn cost_rises_mildly_with_demand_variation() {
    // Fig. 8's second axis: more demand variation → slightly higher cost.
    let truth = smartdpss::traces::paper_month_traces(42).unwrap();
    let flat = run_on(scaling::with_demand_variation(&truth, 0.25).unwrap());
    let wild = run_on(scaling::with_demand_variation(&truth, 2.0).unwrap());
    assert!(
        wild.total_cost().dollars() > flat.total_cost().dollars() * 0.98,
        "variation should not make operation cheaper: flat {} wild {}",
        flat.total_cost().dollars(),
        wild.total_cost().dollars()
    );
}

#[test]
fn expansion_grows_cost_sublinearly() {
    // Fig. 10: β ∈ {1, 2, 5, 10} with the UPS fixed. Total cost grows,
    // but less than proportionally (amortization), and the system stays
    // available even though demand can now exceed the fixed Pgrid... the
    // grid cap scales as part of the datacenter build-out in the paper's
    // expansion; we scale it alongside to keep the model physical.
    let truth = smartdpss::traces::paper_month_traces(42).unwrap();
    let base_params = SimParams::icdcs13();
    let mut costs = Vec::new();
    for beta in [1.0, 2.0, 5.0, 10.0] {
        let t = scaling::expand(&truth, beta).unwrap();
        let mut params = base_params;
        params.grid_cap = base_params.grid_cap * beta; // expanded interconnect
        let engine = Engine::new(params, t).unwrap();
        let mut ctl = SmartDpss::new(
            SmartDpssConfig::icdcs13(),
            params,
            SlotClock::icdcs13_month(),
        )
        .unwrap();
        let r = engine.run(&mut ctl).unwrap();
        assert_eq!(r.availability_violations, 0, "beta {beta}");
        costs.push(r.total_cost().dollars());
    }
    assert!(costs[1] > costs[0] && costs[2] > costs[1] && costs[3] > costs[2]);
    // "Almost linearly" (paper Fig. 10): per-unit operating cost stays in
    // a narrow band around the base system. (With the UPS fixed, a few
    // percent of super-linearity is physical — EXPERIMENTS.md, Fig. 10.)
    let per_unit = costs[3] / 10.0 / costs[0];
    assert!(
        (0.85..=1.15).contains(&per_unit),
        "per-unit cost drifted {per_unit:.3}x: {costs:?}"
    );
}

#[test]
fn expansion_with_fixed_interconnect_hits_the_wall_visibly() {
    // Keeping Pgrid fixed while demand doubles is a mis-provisioned
    // system: the report must say so through emergency purchases, shed
    // delay-tolerant service or availability violations — not silence.
    let truth = smartdpss::traces::paper_month_traces(42).unwrap();
    let doubled = scaling::expand(&truth, 2.0).unwrap();
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, doubled).unwrap();
    let mut ctl = SmartDpss::new(
        SmartDpssConfig::icdcs13(),
        params,
        SlotClock::icdcs13_month(),
    )
    .unwrap();
    let r = engine.run(&mut ctl).unwrap();
    let stressed = r.availability_violations > 0
        || r.energy_emergency.mwh() > 0.0
        || r.final_backlog.mwh() > 10.0;
    assert!(
        stressed,
        "doubling demand under a fixed 2 MW feed must show stress"
    );
}
