//! Robustness (paper Fig. 9 / Theorem 3) and failure injection beyond the
//! paper: estimation errors, renewable blackouts, demand surges and price
//! spike regimes must degrade cost gracefully and never threaten
//! availability.

use smartdpss::traces::{scaling, PriceModel, Scenario};
use smartdpss::{
    Engine, Impatient, SimParams, SlotClock, SmartDpss, SmartDpssConfig, UniformError,
};

fn month_truth(seed: u64) -> smartdpss::TraceSet {
    smartdpss::traces::paper_month_traces(seed).unwrap()
}

fn run_smart(engine: &Engine, params: SimParams) -> smartdpss::RunReport {
    let mut ctl = SmartDpss::new(
        SmartDpssConfig::icdcs13(),
        params,
        SlotClock::icdcs13_month(),
    )
    .unwrap();
    engine.run(&mut ctl).unwrap()
}

#[test]
fn estimation_errors_degrade_cost_gracefully() {
    // The Fig. 9 experiment: ±50% uniform observation errors. The paper
    // reports the cost-reduction delta staying within a few percent; we
    // assert a (generous) ±8pp band and intact availability.
    let truth = month_truth(42);
    let params = SimParams::icdcs13();
    let clean = Engine::new(params, truth.clone()).unwrap();
    let baseline = clean
        .run(&mut Impatient::two_markets())
        .unwrap()
        .total_cost()
        .dollars();
    let clean_cost = run_smart(&clean, params).total_cost().dollars();
    let clean_reduction = (baseline - clean_cost) / baseline;

    for (fraction, seed) in [(0.1, 1u64), (0.25, 2), (0.5, 3), (0.5, 4)] {
        let observed = UniformError::new(fraction)
            .unwrap()
            .perturb(&truth, seed)
            .unwrap();
        let engine = Engine::new(params, truth.clone())
            .unwrap()
            .with_observed(observed)
            .unwrap();
        let r = run_smart(&engine, params);
        let reduction = (baseline - r.total_cost().dollars()) / baseline;
        assert!(
            (reduction - clean_reduction).abs() < 0.08,
            "±{fraction}: reduction {reduction:.3} vs clean {clean_reduction:.3}"
        );
        assert_eq!(r.availability_violations, 0);
        assert_eq!(r.unserved_ds.mwh(), 0.0);
    }
}

#[test]
fn renewable_blackout_is_survivable() {
    // Kill all renewables (penetration 0, the leftmost Fig. 8 point): the
    // grid-only system must stay available and cost must rise.
    let truth = month_truth(42);
    let params = SimParams::icdcs13();
    let dark = scaling::with_renewable_penetration(&truth, 0.0).unwrap();
    let base = run_smart(&Engine::new(params, truth).unwrap(), params);
    let r = run_smart(&Engine::new(params, dark).unwrap(), params);
    assert_eq!(r.availability_violations, 0);
    assert!(r.total_cost() > base.total_cost());
}

#[test]
fn demand_surge_is_survivable() {
    // Double the demand variation (Fig. 8's x-axis stress): availability
    // must hold; cost may rise.
    let truth = month_truth(42);
    let params = SimParams::icdcs13();
    let wild = scaling::with_demand_variation(&truth, 2.0).unwrap();
    let r = run_smart(&Engine::new(params, wild).unwrap(), params);
    assert_eq!(r.availability_violations, 0);
    assert_eq!(r.unserved_ds.mwh(), 0.0);
}

#[test]
fn price_spike_regime_is_survivable_and_hedged() {
    // A pathological real-time market (constant spikes): the two-timescale
    // structure should shift purchases long-term-ahead.
    let clock = SlotClock::icdcs13_month();
    let spiky = Scenario::icdcs13()
        .with_price(PriceModel::icdcs13().with_spikes(0.5, 200.0))
        .generate(&clock, 42)
        .unwrap();
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, spiky).unwrap();
    let r = run_smart(&engine, params);
    assert_eq!(r.availability_violations, 0);
    assert!(
        r.energy_lt > r.energy_rt,
        "long-term should dominate under spikes: lt {} rt {}",
        r.energy_lt,
        r.energy_rt
    );
}

#[test]
fn cycle_budget_exhaustion_is_survivable() {
    // Hard Nmax: after the battery locks out, the system must keep serving.
    let truth = month_truth(42);
    let mut params = SimParams::icdcs13();
    params.battery.cycle_budget = Some(10);
    let engine = Engine::new(params, truth).unwrap();
    let r = run_smart(&engine, params);
    assert!(r.battery_ops <= 10, "ops {} exceed Nmax", r.battery_ops);
    assert_eq!(r.availability_violations, 0);
}

#[test]
fn tight_interconnect_forces_emergency_purchases_not_blackouts() {
    // Shrink Pgrid until the guard has to work. Demand peaks were clipped
    // at 2 MW; at 1.6 MW the controller underestimates and the plant's
    // emergency path must cover the difference or shed delay-tolerant
    // service — never delay-sensitive load, unless physically impossible.
    let truth = month_truth(42);
    let mut params = SimParams::icdcs13();
    params.grid_cap = smartdpss::Power::from_mw(1.6);
    let engine = Engine::new(params, truth.clone()).unwrap();
    let r = run_smart(&engine, params);
    // Physically impossible slots are those where d_ds alone exceeds
    // Pgrid + battery; count them as the ceiling for violations.
    let impossible = truth
        .demand_ds
        .iter()
        .filter(|d| d.mwh() > 1.6 + 0.5)
        .count();
    assert!(
        r.availability_violations <= impossible,
        "violations {} vs physically impossible {}",
        r.availability_violations,
        impossible
    );
}

#[test]
fn observed_and_true_calendars_must_match() {
    let truth = month_truth(1);
    let other = Scenario::icdcs13()
        .generate(&SlotClock::new(2, 24, 1.0).unwrap(), 1)
        .unwrap();
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, truth).unwrap();
    assert!(engine.with_observed(other).is_err());
}
