//! Seasonal generality check (beyond the paper's January evaluation):
//! the same controller, unchanged, must exploit a summer solar profile —
//! more daylight means higher penetration and lower operating cost.

use smartdpss::traces::SolarModel;
use smartdpss::{Engine, Scenario, SimParams, SlotClock, SmartDpss, SmartDpssConfig};

fn run_season(solar: SolarModel, seed: u64) -> (f64, smartdpss::RunReport) {
    let clock = SlotClock::icdcs13_month();
    let traces = Scenario::icdcs13()
        .with_solar(solar)
        .generate(&clock, seed)
        .unwrap();
    let penetration = traces.renewable_penetration();
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, traces).unwrap();
    let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
    (penetration, engine.run(&mut ctl).unwrap())
}

#[test]
fn summer_sun_cuts_cost_without_retuning() {
    let (pen_winter, winter) = run_season(SolarModel::icdcs13(), 42);
    let (pen_summer, summer) = run_season(SolarModel::summer(), 42);
    assert!(
        pen_summer > pen_winter * 1.3,
        "summer penetration {pen_summer} vs winter {pen_winter}"
    );
    assert!(
        summer.time_average_cost() < winter.time_average_cost(),
        "summer {} vs winter {}",
        summer.time_average_cost(),
        winter.time_average_cost()
    );
    assert_eq!(summer.availability_violations, 0);
    assert!((summer.availability() - 1.0).abs() < 1e-12);
}

#[test]
fn summer_surplus_stresses_curtailment_not_stability() {
    // Long daylight on a winter-sized farm produces real surplus; the
    // system must curtail (waste) rather than destabilize.
    let (_, summer) = run_season(SolarModel::summer(), 7);
    assert!(
        summer.energy_wasted.mwh() > 0.0,
        "surplus must show up as waste"
    );
    assert_eq!(summer.unserved_ds.mwh(), 0.0);
    assert!(
        summer.final_backlog.mwh() < 50.0,
        "backlog must stay bounded"
    );
}
