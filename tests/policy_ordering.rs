//! Cross-crate benchmark ordering: on paper-shaped traces, the relaxation
//! lower bound must sit below the offline benchmark, which must sit below
//! (or equal to) SmartDPSS, which must beat the Impatient baseline — the
//! ordering behind Fig. 6(a).

use smartdpss::{
    cheapest_window_bound, Engine, Impatient, MarketMode, OfflineOptimal, SimParams, SlotClock,
    SmartDpss, SmartDpssConfig,
};

fn setup(seed: u64) -> (Engine, SimParams, SlotClock) {
    let clock = SlotClock::icdcs13_month();
    let traces = smartdpss::traces::paper_month_traces(seed).unwrap();
    let params = SimParams::icdcs13();
    (Engine::new(params, traces).unwrap(), params, clock)
}

#[test]
fn full_ordering_holds_on_the_paper_month() {
    let (engine, params, clock) = setup(42);
    let bound = cheapest_window_bound(engine.truth(), &params);

    let mut offline = OfflineOptimal::new(params, engine.truth().clone()).unwrap();
    let r_off = engine.run(&mut offline).unwrap();

    let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
    let r_smart = engine.run(&mut smart).unwrap();

    let r_imp = engine.run(&mut Impatient::two_markets()).unwrap();

    assert!(
        bound <= r_off.total_cost(),
        "bound {bound} above offline {}",
        r_off.total_cost()
    );
    assert!(
        r_off.total_cost() <= r_smart.total_cost(),
        "offline {} above smart {}",
        r_off.total_cost(),
        r_smart.total_cost()
    );
    assert!(
        r_smart.total_cost() < r_imp.total_cost(),
        "smart {} not below impatient {}",
        r_smart.total_cost(),
        r_imp.total_cost()
    );
}

#[test]
fn ordering_is_not_a_seed_accident() {
    for seed in [7, 99, 1234] {
        let (engine, params, clock) = setup(seed);
        let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
        let r_smart = engine.run(&mut smart).unwrap();
        let r_imp = engine.run(&mut Impatient::two_markets()).unwrap();
        assert!(
            r_smart.total_cost() < r_imp.total_cost(),
            "seed {seed}: smart {} vs impatient {}",
            r_smart.total_cost(),
            r_imp.total_cost()
        );
        // The saving the paper reports is material, not a rounding artifact.
        let saving = 1.0 - r_smart.total_cost() / r_imp.total_cost();
        assert!(
            saving > 0.05,
            "seed {seed}: saving only {:.1}%",
            saving * 100.0
        );
    }
}

#[test]
fn large_v_approaches_the_offline_cost() {
    let (engine, params, clock) = setup(42);
    let mut offline = OfflineOptimal::new(params, engine.truth().clone()).unwrap();
    let off = engine.run(&mut offline).unwrap().total_cost().dollars();

    let mut v1 = SmartDpss::new(SmartDpssConfig::icdcs13().with_v(1.0), params, clock).unwrap();
    let c1 = engine.run(&mut v1).unwrap().total_cost().dollars();
    let mut v5 = SmartDpss::new(SmartDpssConfig::icdcs13().with_v(5.0), params, clock).unwrap();
    let c5 = engine.run(&mut v5).unwrap().total_cost().dollars();

    let gap1 = (c1 - off).abs() / off;
    let gap5 = (c5 - off).abs() / off;
    assert!(
        gap5 < gap1 + 0.02,
        "gap must shrink: V=1 {gap1:.3}, V=5 {gap5:.3}"
    );
    assert!(gap5 < 0.15, "V=5 should be close to offline: {gap5:.3}");
}

#[test]
fn two_markets_beat_real_time_only_for_both_policies() {
    let (engine, params, clock) = setup(42);
    let mut tm = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
    let mut rtm = SmartDpss::new(
        SmartDpssConfig::icdcs13().with_market(MarketMode::RealTimeOnly),
        params,
        clock,
    )
    .unwrap();
    let c_tm = engine.run(&mut tm).unwrap().total_cost();
    let c_rtm = engine.run(&mut rtm).unwrap().total_cost();
    assert!(c_tm < c_rtm, "smart: tm {c_tm} vs rtm {c_rtm}");

    // The paper's Fig. 7 claim is specific to SmartDPSS; Impatient's naive
    // flat hedge can waste enough to lose the long-term advantage, so for
    // it we only require the two modes to be in the same ballpark.
    let c_imp_tm = engine
        .run(&mut Impatient::two_markets())
        .unwrap()
        .total_cost();
    let c_imp_rtm = engine
        .run(&mut Impatient::real_time_only())
        .unwrap()
        .total_cost();
    let ratio = c_imp_tm.dollars() / c_imp_rtm.dollars();
    assert!(
        (0.8..1.2).contains(&ratio),
        "impatient: tm {c_imp_tm} vs rtm {c_imp_rtm}"
    );
}

#[test]
fn impatient_has_the_best_delay() {
    let (engine, params, clock) = setup(42);
    let r_imp = engine.run(&mut Impatient::two_markets()).unwrap();
    let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap();
    let r_smart = engine.run(&mut smart).unwrap();
    assert!(r_imp.average_delay_slots < r_smart.average_delay_slots);
    assert!(r_imp.max_delay_slots <= 2);
}

#[test]
fn every_policy_keeps_the_lights_on() {
    let (engine, params, clock) = setup(42);
    let mut policies: Vec<Box<dyn smartdpss::Controller>> = vec![
        Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap()),
        Box::new(OfflineOptimal::new(params, engine.truth().clone()).unwrap()),
        Box::new(Impatient::two_markets()),
        Box::new(Impatient::real_time_only()),
    ];
    for p in policies.iter_mut() {
        let r = engine.run(p.as_mut()).unwrap();
        assert_eq!(
            r.availability_violations, 0,
            "{} violated availability",
            r.controller
        );
        assert_eq!(r.unserved_ds.mwh(), 0.0, "{} shed load", r.controller);
    }
}
