//! The stepping-API conformance suite: `Engine::begin` +
//! `step_frame × K` + `finish` must reproduce `Engine::run` **byte for
//! byte** (compared as serialized report JSON) — across every built-in
//! scenario-pack variant, the paper's base scenario, and every built-in
//! controller family, at seed 42.
//!
//! `Engine::run` is itself implemented on top of the stepping API, so
//! this pins two things at once: that the refactor kept the legacy
//! entry point intact, and that external frame-by-frame drivers (the
//! frame-synchronous fleet loop, custom harnesses) see exactly the
//! physics a plain run sees.

use smartdpss::core::RecedingHorizon;
use smartdpss::{
    Controller, Engine, GreedyBattery, Impatient, OfflineOptimal, Price, Scenario, ScenarioPack,
    SimParams, SlotClock, SmartDpss, SmartDpssConfig,
};

/// A fresh instance of every built-in controller family.
fn controller_roster(
    params: SimParams,
    engine: &Engine,
) -> Vec<(&'static str, Box<dyn Controller>)> {
    let clock = engine.truth().clock;
    vec![
        (
            "smart",
            Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
                as Box<dyn Controller>,
        ),
        (
            "offline",
            Box::new(OfflineOptimal::new(params, engine.truth().clone()).unwrap()),
        ),
        ("impatient", Box::new(Impatient::two_markets())),
        (
            "greedy",
            Box::new(GreedyBattery::around(Price::from_dollars_per_mwh(35.0)).unwrap()),
        ),
        ("receding", Box::new(RecedingHorizon::new(params).unwrap())),
    ]
}

fn assert_stepping_matches_run(engine: &Engine, params: SimParams, what: &str) {
    let frames = engine.truth().clock.frames();
    // Two fresh controller rosters: one per execution path, so neither
    // sees the other's internal state.
    let run_roster = controller_roster(params, engine);
    let step_roster = controller_roster(params, engine);
    for ((name, mut run_ctl), (_, mut step_ctl)) in run_roster.into_iter().zip(step_roster) {
        let via_run = engine.run(run_ctl.as_mut()).unwrap();
        let mut stepping = engine.begin().unwrap();
        for k in 0..frames {
            assert_eq!(stepping.frames_completed(), k);
            assert!(!stepping.is_done());
            stepping.step_frame(step_ctl.as_mut()).unwrap();
        }
        assert!(stepping.is_done());
        let via_steps = stepping.finish().unwrap();
        let run_json = serde_json::to_string(&via_run).unwrap();
        let steps_json = serde_json::to_string(&via_steps).unwrap();
        assert_eq!(
            run_json, steps_json,
            "{what}/{name}: stepped run diverged from Engine::run"
        );
    }
}

#[test]
fn stepping_reproduces_run_on_every_builtin_pack_variant() {
    let clock = SlotClock::new(4, 24, 1.0).unwrap();
    let params = SimParams::icdcs13();
    for pack_name in ScenarioPack::builtin_names() {
        let pack = ScenarioPack::builtin(pack_name).unwrap();
        for v in 0..pack.len() {
            let traces = pack.generate(&clock, 42, v).unwrap();
            let engine = Engine::new(params, traces).unwrap();
            let what = format!("{pack_name}/{}", pack.variant(v).unwrap().0);
            assert_stepping_matches_run(&engine, params, &what);
        }
    }
}

#[test]
fn stepping_reproduces_run_on_the_paper_scenario_with_recording() {
    // The base scenario, with slot recording on — the configuration the
    // multi-site fleet loop actually drives — so the recorded outcome
    // stream is pinned too.
    let clock = SlotClock::new(4, 24, 1.0).unwrap();
    let params = SimParams::icdcs13();
    let traces = Scenario::icdcs13().generate(&clock, 42).unwrap();
    let engine = Engine::new(params, traces)
        .unwrap()
        .with_slot_recording(true);
    assert_stepping_matches_run(&engine, params, "icdcs13/recorded");
}

#[test]
fn finish_requires_every_frame_and_stepping_past_the_end_is_inert() {
    let clock = SlotClock::new(3, 8, 1.0).unwrap();
    let params = SimParams::icdcs13();
    let traces = Scenario::icdcs13().generate(&clock, 42).unwrap();
    let engine = Engine::new(params, traces).unwrap();
    let mut ctl = Impatient::two_markets();

    // Finishing early is an error that names the progress made.
    let mut partial = engine.begin().unwrap();
    partial.step_frame(&mut ctl).unwrap();
    match partial.finish() {
        Err(smartdpss::sim::SimError::RunIncomplete {
            frames_done,
            frames_total,
        }) => {
            assert_eq!((frames_done, frames_total), (1, 3));
        }
        other => panic!("expected RunIncomplete, got {other:?}"),
    }

    // Stepping past the end is a no-op, not an error.
    let mut ctl = Impatient::two_markets();
    let mut full = engine.begin().unwrap();
    for _ in 0..3 {
        full.step_frame(&mut ctl).unwrap();
    }
    assert!(full.is_done());
    full.step_frame(&mut ctl).unwrap();
    assert_eq!(full.frames_completed(), 3);
    let report = full.finish().unwrap();
    assert!(report.total_cost() > smartdpss::Money::ZERO);
    assert_eq!(report.energy_lt + report.energy_rt, {
        let mut ctl = Impatient::two_markets();
        let r = engine.run(&mut ctl).unwrap();
        r.energy_lt + r.energy_rt
    });
}
