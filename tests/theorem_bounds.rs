//! Empirical verification of the Theorem 2 guarantees (paper §V-A).
//!
//! What holds *exactly* in this reproduction, for every configuration:
//! the battery window `b(τ) ∈ [Bmin, Bmax]` (Thm 2(2)), the derived
//! `X(t)` window (Thm 2(1)), and datacenter availability.
//!
//! What holds *as a scaling law*: `Qmax`, `Ymax` and `λmax` grow `O(V)`
//! and the cost gap shrinks `O(1/V)`. The paper's deterministic constants
//! assume the printed price-free service rule; a price-respecting service
//! rule (either P5 objective against a real market) tracks prices instead,
//! so we assert the bounds up to a documented constant multiple and the
//! exact scaling direction (see EXPERIMENTS.md, "Theorem 2").

use smartdpss::{
    BatteryParams, Engine, P5Objective, SimParams, SlotClock, SmartDpss, SmartDpssConfig,
    TheoremBounds,
};

/// Loose empirical multiples: regressions that break the mechanism blow
/// past these by orders of magnitude; honest O(V) behaviour sits well
/// inside. Keyed to the vendored deterministic RNG stream: on seed 42 the
/// worst observed multiples are ~8.6× Qmax and ~4.4× λmax (PaperLiteral
/// objective at V = 0.3); Derived stays below 5× on every bound.
const QUEUE_SLACK: f64 = 12.0;
const DELAY_SLACK: f64 = 6.0;

fn month_engine(params: SimParams) -> Engine {
    let traces = smartdpss::traces::paper_month_traces(42).unwrap();
    Engine::new(params, traces).unwrap()
}

/// The theorem's own regime: a battery large enough that `Vmax > 0`.
fn big_battery_params() -> SimParams {
    let mut params = SimParams::icdcs13();
    params.battery = BatteryParams::icdcs13(120.0);
    params
}

#[test]
fn battery_window_holds_for_every_configuration() {
    for minutes in [0.0, 15.0, 120.0] {
        let params = SimParams::icdcs13_with_battery(minutes);
        let engine = month_engine(params);
        for v in [0.05, 1.0, 5.0] {
            let mut ctl = SmartDpss::new(
                SmartDpssConfig::icdcs13().with_v(v),
                params,
                SlotClock::icdcs13_month(),
            )
            .unwrap();
            let r = engine.run(&mut ctl).unwrap();
            assert!(
                r.battery_min.mwh() >= params.battery.min_level.mwh() - 1e-9,
                "Bmin violated at {minutes} min, V {v}"
            );
            assert!(
                r.battery_max.mwh() <= params.battery.capacity.mwh() + 1e-9,
                "Bmax violated at {minutes} min, V {v}"
            );
            assert_eq!(
                r.availability_violations, 0,
                "blackout at {minutes} min, V {v}"
            );
        }
    }
}

#[test]
fn x_queue_stays_in_theorem_window() {
    let params = big_battery_params();
    let engine = month_engine(params).with_slot_recording(true);
    let config = SmartDpssConfig::icdcs13().with_v(0.3);
    let mut ctl = SmartDpss::new(config, params, SlotClock::icdcs13_month()).unwrap();
    let bounds = *ctl.bounds();
    assert!(bounds.v_max >= 0.3, "test must run inside the premise");
    let r = engine.run(&mut ctl).unwrap();
    for o in r.slot_outcomes.as_ref().unwrap() {
        let x = bounds.x_of_level(&params, o.battery_level_after.mwh());
        assert!(
            x >= bounds.x_lower - 1e-9 && x <= bounds.x_upper + 1e-9,
            "X {x} outside [{}, {}] at slot {}",
            bounds.x_lower,
            bounds.x_upper,
            o.slot.index
        );
    }
}

#[test]
fn queue_and_delay_track_their_bounds_up_to_constants() {
    let params = big_battery_params();
    let engine = month_engine(params);
    for obj in [P5Objective::Derived, P5Objective::PaperLiteral] {
        for v in [0.3, 1.0] {
            let config = SmartDpssConfig::icdcs13().with_v(v).with_p5_objective(obj);
            let bounds = TheoremBounds::compute(&config, &params, &SlotClock::icdcs13_month());
            let mut ctl = SmartDpss::new(config, params, SlotClock::icdcs13_month()).unwrap();
            let r = engine.run(&mut ctl).unwrap();
            assert!(
                r.max_backlog.mwh() <= QUEUE_SLACK * bounds.q_max,
                "{obj:?} V={v}: backlog {} vs Qmax {}",
                r.max_backlog.mwh(),
                bounds.q_max
            );
            assert!(
                ctl.y_max_seen() <= QUEUE_SLACK * bounds.y_max,
                "{obj:?} V={v}: Y {} vs Ymax {}",
                ctl.y_max_seen(),
                bounds.y_max
            );
            assert!(
                (r.max_delay_slots as f64) <= DELAY_SLACK * bounds.lambda_max_slots,
                "{obj:?} V={v}: delay {} vs λmax {}",
                r.max_delay_slots,
                bounds.lambda_max_slots
            );
        }
    }
}

#[test]
fn queue_delay_and_cost_scale_as_theorem_2_predicts() {
    // O(V) queues/delay, O(1/V) cost gap: sweep V over two decades and
    // check monotone direction with a small tolerance for trace noise.
    let params = SimParams::icdcs13();
    let engine = month_engine(params);
    let mut costs = Vec::new();
    let mut delays = Vec::new();
    let mut backlogs = Vec::new();
    for v in [0.1, 0.5, 1.0, 2.0, 5.0] {
        let mut ctl = SmartDpss::new(
            SmartDpssConfig::icdcs13().with_v(v),
            params,
            SlotClock::icdcs13_month(),
        )
        .unwrap();
        let r = engine.run(&mut ctl).unwrap();
        costs.push(r.time_average_cost().dollars());
        delays.push(r.average_delay_slots);
        backlogs.push(r.max_backlog.mwh());
    }
    for w in delays.windows(2) {
        assert!(w[1] >= w[0] * 0.95, "delay not growing with V: {delays:?}");
    }
    for w in backlogs.windows(2) {
        assert!(
            w[1] >= w[0] * 0.9,
            "backlog not growing with V: {backlogs:?}"
        );
    }
    for w in costs.windows(2) {
        assert!(w[1] <= w[0] * 1.02, "cost not shrinking with V: {costs:?}");
    }
    // Two decades of V must produce a material spread.
    assert!(delays[4] > 3.0 * delays[0], "delay O(V): {delays:?}");
    assert!(costs[0] > costs[4] * 1.1, "cost O(1/V): {costs:?}");
}

#[test]
fn epsilon_controls_the_delay_cost_knob() {
    // Fig. 7's ε effect: larger ε → shorter delay, weakly higher cost.
    let params = SimParams::icdcs13();
    let engine = month_engine(params);
    let mut prev_delay = f64::INFINITY;
    for eps in [0.25, 0.5, 1.0, 2.0] {
        let mut ctl = SmartDpss::new(
            SmartDpssConfig::icdcs13().with_epsilon(eps),
            params,
            SlotClock::icdcs13_month(),
        )
        .unwrap();
        let r = engine.run(&mut ctl).unwrap();
        assert!(
            r.average_delay_slots <= prev_delay * 1.05,
            "delay must shrink as ε grows (ε {eps}: {} vs prev {prev_delay})",
            r.average_delay_slots
        );
        prev_delay = r.average_delay_slots;
    }
}

#[test]
fn bounds_are_internally_consistent() {
    let params = big_battery_params();
    let clock = SlotClock::icdcs13_month();
    for v in [0.1, 0.39, 1.0, 5.0] {
        let config = SmartDpssConfig::icdcs13().with_v(v);
        let b = TheoremBounds::compute(&config, &params, &clock);
        assert!(
            b.u_max >= b.q_max.max(b.y_max) - 1e-12,
            "Umax covers Q and Y"
        );
        assert!(b.x_lower < b.x_upper);
        assert!(b.lambda_max_slots >= 1.0);
        assert!(b.h2 >= b.h1);
        assert!(b.cost_gap > 0.0);
    }
}
