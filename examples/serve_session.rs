//! Streaming control: drive a `dpss-serve` session in memory, kill it
//! mid-month, and resume from the snapshot — then verify the resumed
//! month matches an uninterrupted one byte for byte.
//!
//! ```sh
//! cargo run --release --example serve_session
//! ```

use std::io::BufReader;
use std::path::Path;

use smartdpss::serve::{serve, Response, ServeOptions};

const DAYS: usize = 5;

/// Runs one NDJSON request log through an in-memory serve loop and
/// returns the transcript lines.
fn run(log: &str, options: &ServeOptions) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    let mut input = BufReader::new(log.as_bytes());
    let mut output = Vec::new();
    serve(&mut input, &mut output, options)?;
    Ok(String::from_utf8(output)?
        .lines()
        .map(str::to_owned)
        .collect())
}

fn finished_line(transcript: &[String]) -> String {
    transcript
        .iter()
        .find(|l| l.starts_with("{\"Finished\":"))
        .expect("session finished")
        .clone()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let state_dir = Path::new("target/serve_session_example");
    let _ = std::fs::remove_dir_all(state_dir);

    // First life: a 5-day scenario session, snapshotted after day 2 —
    // and then the "process" stops mid-month (the log simply ends).
    let mut first_life = String::from("{\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":5}\n");
    first_life.push_str("{\"cmd\":\"step\"}\n{\"cmd\":\"step\"}\n{\"cmd\":\"snapshot\"}\n");
    let options = ServeOptions {
        state_dir: Some(state_dir.to_path_buf()),
        ..ServeOptions::default()
    };
    let transcript = run(&first_life, &options)?;
    println!("first life ({} responses):", transcript.len());
    for line in &transcript {
        println!("  {line}");
    }

    // Second life: resume from disk and finish the month.
    let mut second_life = String::new();
    for _ in 2..DAYS {
        second_life.push_str("{\"cmd\":\"step\"}\n");
    }
    second_life.push_str("{\"cmd\":\"finish\"}\n{\"cmd\":\"shutdown\"}\n");
    let resumed = run(
        &second_life,
        &ServeOptions {
            resume: true,
            ..options
        },
    )?;
    println!("\nsecond life resumes where the first died:");
    println!("  {}", resumed[1]);

    // The proof: an uninterrupted run of the same month, byte-compared.
    let mut uninterrupted = String::from("{\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":5}\n");
    for _ in 0..DAYS {
        uninterrupted.push_str("{\"cmd\":\"step\"}\n");
    }
    uninterrupted.push_str("{\"cmd\":\"finish\"}\n{\"cmd\":\"shutdown\"}\n");
    let batch = run(&uninterrupted, &ServeOptions::default())?;
    let (a, b) = (finished_line(&resumed), finished_line(&batch));
    println!(
        "\nresumed final report == uninterrupted final report: {}",
        a == b
    );
    assert_eq!(a, b, "resume must be byte-identical");

    // The report itself, through the typed protocol.
    let parsed: Response = serde_json::from_str(&a)?;
    if let Response::Finished { report } = parsed {
        println!("final report: {}", report.summary());
    }
    Ok(())
}
