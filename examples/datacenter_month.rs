//! The paper's headline experiment in one binary: run SmartDPSS, the
//! offline benchmark and the Impatient baseline on the same one-month
//! trace and compare operating cost, delay and energy mix (§VI).
//!
//! ```sh
//! cargo run --release --example datacenter_month
//! ```

use smartdpss::{
    cheapest_window_bound, Engine, Impatient, OfflineOptimal, RunReport, SimParams, SmartDpss,
    SmartDpssConfig,
};

fn row(r: &RunReport) -> String {
    format!(
        "{:<12} ${:>8.2} ${:>9.2}   {:>6.1}  {:>5}   {:>6.1} {:>6.1} {:>6.1}",
        r.controller,
        r.time_average_cost().dollars(),
        r.total_cost().dollars(),
        r.average_delay_slots,
        r.max_delay_slots,
        r.energy_lt.mwh(),
        r.energy_rt.mwh(),
        r.energy_wasted.mwh(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let traces = smartdpss::traces::paper_month_traces(42)?;
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, traces.clone())?;
    let clock = engine.truth().clock;

    println!("one-month DPSS comparison (seed 42, Pgrid 2 MW, 15-min UPS)\n");
    println!(
        "{:<12} {:>9} {:>10}   {:>6}  {:>5}   {:>6} {:>6} {:>6}",
        "policy", "$/slot", "total", "delay", "max", "lt", "rt", "waste"
    );

    let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)?;
    println!("{}", row(&engine.run(&mut smart)?));

    let mut offline = OfflineOptimal::new(params, traces.clone())?;
    println!("{}", row(&engine.run(&mut offline)?));

    let mut impatient = Impatient::two_markets();
    println!("{}", row(&engine.run(&mut impatient)?));

    println!(
        "\nrelaxation lower bound on any policy: ${:.2} total",
        cheapest_window_bound(&traces, &params).dollars()
    );
    println!("(delay in fine slots = hours; lt/rt/waste in MWh over the month)");
    Ok(())
}
