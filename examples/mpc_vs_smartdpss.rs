//! Statistics-free feedback vs forecast-driven optimization: run the
//! receding-horizon MPC controller under increasingly good forecasts and
//! compare it with SmartDPSS, which never forecasts at all (extension;
//! the paper's §VII positions SmartDPSS against lookahead designs).
//!
//! ```sh
//! cargo run --release --example mpc_vs_smartdpss
//! ```

use smartdpss::{Engine, ForecastPolicy, RecedingHorizon, SimParams, SmartDpss, SmartDpssConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = smartdpss::traces::paper_month_traces(42)?;
    let params = SimParams::icdcs13();
    let clock = truth.clock;

    println!(
        "{:<38} {:>8}  {:>8}",
        "controller / forecast", "$/slot", "delay h"
    );

    let engine = Engine::new(params, truth.clone())?;
    let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)?;
    let r = engine.run(&mut smart)?;
    println!(
        "{:<38} {:>8.3}  {:>8.2}",
        "smart-dpss (no forecast at all)",
        r.time_average_cost().dollars(),
        r.average_delay_slots
    );

    let policies: [(&str, ForecastPolicy); 4] = [
        (
            "mpc / previous-frame average",
            ForecastPolicy::PrevFrameAverage,
        ),
        (
            "mpc / oracle mean ± 50%",
            ForecastPolicy::NoisyOracle {
                rel_std: 0.5,
                seed: 1,
            },
        ),
        (
            "mpc / oracle mean ± 22.2%",
            ForecastPolicy::NoisyOracle {
                rel_std: 0.222,
                seed: 1,
            },
        ),
        ("mpc / perfect oracle mean", ForecastPolicy::Oracle),
    ];
    for (label, policy) in policies {
        let engine = Engine::new(params, truth.clone())?.with_forecast(policy)?;
        let mut mpc = RecedingHorizon::new(params)?;
        let r = engine.run(&mut mpc)?;
        println!(
            "{label:<38} {:>8.3}  {:>8.2}",
            r.time_average_cost().dollars(),
            r.average_delay_slots
        );
    }

    println!(
        "\neven a *perfect* frame-mean forecast does not close the gap to \
         SmartDPSS: the MPC plans against a flat daily profile, while the \
         Lyapunov queues react to every slot's actual prices and renewables. \
         That per-slot feedback — not prediction — is where the savings live."
    );
    Ok(())
}
