//! Robustness to estimation errors (the paper's Fig. 9 and Theorem 3):
//! feed the controller observations corrupted with uniform ±50% errors
//! while the physical plant runs on the truth, and measure how much of
//! the cost reduction survives.
//!
//! ```sh
//! cargo run --release --example robustness
//! ```

use smartdpss::{Engine, Impatient, SimParams, SmartDpss, SmartDpssConfig, UniformError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let truth = smartdpss::traces::paper_month_traces(42)?;
    let params = SimParams::icdcs13();
    let clock = truth.clock;

    // Baseline for "cost reduction": the Impatient policy.
    let clean_engine = Engine::new(params, truth.clone())?;
    let impatient = clean_engine.run(&mut Impatient::two_markets())?;
    let baseline = impatient.total_cost().dollars();
    println!("impatient baseline: ${baseline:.2} total\n");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>10}",
        "±err", "smart total", "reduction", "Δ vs clean"
    );

    let mut clean_reduction = 0.0;
    for fraction in [0.0, 0.1, 0.25, 0.5] {
        let observed =
            UniformError::new(fraction)?.perturb(&truth, 1000 + (fraction * 100.0) as u64)?;
        let engine = Engine::new(params, truth.clone())?.with_observed(observed)?;
        let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)?;
        let r = engine.run(&mut smart)?;
        let reduction = 100.0 * (baseline - r.total_cost().dollars()) / baseline;
        if fraction == 0.0 {
            clean_reduction = reduction;
        }
        println!(
            "{:>5.0}%  {:>12.2}  {:>11.2}%  {:>+9.2}pp",
            fraction * 100.0,
            r.total_cost().dollars(),
            reduction,
            reduction - clean_reduction,
        );
        assert_eq!(r.unserved_ds.mwh(), 0.0, "availability must survive errors");
    }
    println!(
        "\nthe cost-reduction delta stays within a small band — the \
         approximation-robustness the paper reports as [−1.6%, +2.1%]."
    );
    Ok(())
}
