//! Quickstart: run the SmartDPSS controller on one month of synthetic
//! paper-shaped traces and print the operating report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smartdpss::{Engine, SimParams, SmartDpss, SmartDpssConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 31 daily frames × 24 hourly slots of demand, solar and prices,
    // deterministic in the seed.
    let traces = smartdpss::traces::paper_month_traces(42)?;
    println!(
        "inputs : {:.1} MWh demand, {:.1} MWh solar ({:.0}% penetration), \
         mean prices lt {} / rt {}",
        traces.total_demand().mwh(),
        traces.total_renewable().mwh(),
        100.0 * traces.renewable_penetration(),
        traces.mean_lt_price(),
        traces.mean_rt_price(),
    );

    // The paper's §VI-A plant (2 MW interconnect, 15-minute UPS) and the
    // default controller tuning (V = 1, ε = 0.5, two markets).
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, traces)?;
    let mut controller = SmartDpss::new(SmartDpssConfig::icdcs13(), params, engine.truth().clock)?;

    let report = engine.run(&mut controller)?;
    println!("result : {}", report.summary());
    println!(
        "         battery ops {}, peak grid draw {:.2} MW, renewable share {:.0}%",
        report.battery_ops,
        report.peak_grid_draw.mwh(), // 1-hour slots: MWh == MW
        100.0 * report.renewable_share(),
    );

    // The Theorem 2 worst-case delay bound for this tuning.
    let bounds = controller.bounds();
    println!(
        "bounds : Qmax {:.2} MWh, worst-case delay {} slots (observed max {})",
        bounds.q_max, bounds.lambda_max_slots, report.max_delay_slots,
    );
    Ok(())
}
