//! Frame-synchronous fleet dispatch on a price-spike fleet: the three
//! dispatch modes side by side.
//!
//! Three SmartDPSS sites share one spiky real-time market over a lossy
//! ring (5% line loss, $2/MWh wheeling). Post-hoc settlement can only
//! route the curtailment the sites happened to realize; the planned LP
//! routes the same curtailment optimally; *coordinated* dispatch closes
//! the loop — between frames the planner forecasts each site's
//! curtailment and its neighbours' real-time exposure, and directs
//! sites to buy-to-export when a neighbour's delivered price (after
//! loss and wheeling) beats the local long-term price plus waste
//! penalty. On spiky variants that arbitrage is worth real money; on
//! calm ones the directives stay inert and coordinated collapses to
//! planned.
//!
//! ```sh
//! cargo run --release --example coordinated_dispatch
//! ```

use smartdpss::bench::PAPER_SEED;
use smartdpss::{
    Controller, Energy, Engine, FleetPlanner, Interconnect, MultiSiteEngine, Price, RunReport,
    ScenarioPack, SimParams, SlotClock, SmartDpss, SmartDpssConfig,
};

fn smart_boxes(params: SimParams, clock: SlotClock, n: usize) -> Vec<Box<dyn Controller>> {
    (0..n)
        .map(|_| {
            Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
                as Box<dyn Controller>
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let pack = ScenarioPack::builtin("price-spike").expect("built-in pack");
    let sites = 3usize;
    let ring = Interconnect::ring(sites, Energy::from_mwh(2.0))?
        .with_uniform_loss(0.05)?
        .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))?;
    println!("price-spike fleet, 3 SmartDPSS sites, {}", ring.describe());
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "variant", "post-hoc $", "planned $", "coord $", "coord - plan", "xfer MWh"
    );

    for v in 0..pack.len() {
        let engines: Vec<Engine> = (0..sites)
            .map(|s| {
                Engine::new(
                    params,
                    pack.generate_site(&clock, PAPER_SEED, v, s).unwrap(),
                )
                .unwrap()
            })
            .collect();
        let multi = MultiSiteEngine::new(engines)?.with_interconnect(ring.clone())?;

        // Post-hoc: run to completion, settle greedily after the fact.
        let posthoc = multi.run(&mut smart_boxes(params, clock, sites))?;

        // Planned: identical site runs, settled by the flow LP.
        let reports: Vec<RunReport> = posthoc.sites.clone();
        let planned = FleetPlanner::for_engine(&multi).couple(&multi, reports)?;

        // Coordinated: the planner directs the sites between frames.
        let mut dispatcher = FleetPlanner::for_engine(&multi).with_coordination(true);
        let coordinated =
            multi.run_with(&mut smart_boxes(params, clock, sites), &mut dispatcher)?;

        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>14.2} {:>12.2}",
            pack.variant(v).expect("v ranges over 0..pack.len()").0,
            posthoc.total_cost().dollars(),
            planned.total_cost().dollars(),
            coordinated.total_cost().dollars(),
            coordinated.total_cost().dollars() - planned.total_cost().dollars(),
            coordinated.energy_transferred.mwh(),
        );
    }
    Ok(())
}
