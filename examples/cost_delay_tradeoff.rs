//! The `[O(1/V), O(V)]` cost–delay trade-off of Theorem 2, on real
//! simulations: sweep the control parameter `V` and watch time-average
//! cost fall while service delay grows (the paper's Fig. 6(a)/(b)).
//!
//! ```sh
//! cargo run --release --example cost_delay_tradeoff
//! ```

use smartdpss::{Engine, SimParams, SmartDpss, SmartDpssConfig};

fn bar(len: usize) -> String {
    "#".repeat(len.min(60))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let traces = smartdpss::traces::paper_month_traces(42)?;
    let params = SimParams::icdcs13();
    let engine = Engine::new(params, traces)?;
    let clock = engine.truth().clock;

    println!("V sweep (ε = 0.5, T = 24, Bmax = 15 min)\n");
    println!("{:>6}  {:>8}  {:>8}  cost / delay", "V", "$/slot", "delay");
    for v in [0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0] {
        let config = SmartDpssConfig::icdcs13().with_v(v);
        let mut controller = SmartDpss::new(config, params, clock)?;
        let r = engine.run(&mut controller)?;
        let cost = r.time_average_cost().dollars();
        println!(
            "{v:>6}  {cost:>8.2}  {:>8.1}  {:<30} {}",
            r.average_delay_slots,
            bar((cost - 25.0).max(0.0) as usize),
            bar((r.average_delay_slots / 4.0) as usize),
        );
    }
    println!(
        "\ncost decreases toward the offline optimum as O(1/V); \
         delay grows as O(V) — pick V where the trade-off suits your SLO."
    );
    Ok(())
}
