//! Infrastructure planning with the simulator: how much UPS battery and
//! which renewable portfolio pay off for a 2 MW datacenter? Combines the
//! paper's Fig. 7 battery sweep with the wind-farm extension.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use smartdpss::traces::WindModel;
use smartdpss::{Engine, Power, Scenario, SimParams, SlotClock, SmartDpss, SmartDpssConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = SlotClock::icdcs13_month();

    // ---- Question 1: battery sizing (paper Fig. 7, Bmax sweep). --------
    println!("battery sizing (solar only, V = 1):\n");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>6}",
        "Bmax", "$/slot", "waste", "ops"
    );
    let solar_traces = Scenario::icdcs13().generate(&clock, 42)?;
    for minutes in [0.0, 5.0, 15.0, 30.0, 60.0] {
        let params = SimParams::icdcs13_with_battery(minutes);
        let engine = Engine::new(params, solar_traces.clone())?;
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)?;
        let r = engine.run(&mut ctl)?;
        println!(
            "{:>7} min  {:>8.2}  {:>8.1}  {:>6}",
            minutes,
            r.time_average_cost().dollars(),
            r.energy_wasted.mwh(),
            r.battery_ops,
        );
    }

    // ---- Question 2: does adding wind help? (extension) ----------------
    println!("\nrenewable portfolio (15-min battery, V = 1):\n");
    println!(
        "{:>22}  {:>8}  {:>12}",
        "portfolio", "$/slot", "penetration"
    );
    let params = SimParams::icdcs13();
    let portfolios: Vec<(&str, Scenario)> = vec![
        ("solar 2.5 MW", Scenario::icdcs13()),
        (
            "solar 2.5 + wind 1 MW",
            Scenario::icdcs13().with_wind(WindModel::icdcs13()),
        ),
        (
            "wind 2 MW only",
            Scenario::icdcs13()
                .with_solar(smartdpss::traces::SolarModel::icdcs13().with_capacity(Power::ZERO))
                .with_wind(WindModel::icdcs13().with_capacity(Power::from_mw(2.0))),
        ),
    ];
    for (name, scenario) in portfolios {
        let traces = scenario.generate(&clock, 42)?;
        let engine = Engine::new(params, traces)?;
        let mut ctl = SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock)?;
        let r = engine.run(&mut ctl)?;
        println!(
            "{:>22}  {:>8.2}  {:>11.0}%",
            name,
            r.time_average_cost().dollars(),
            100.0 * engine.truth().renewable_penetration(),
        );
    }
    println!(
        "\nwind generates around the clock (no diurnal gap), so the same \
         nameplate capacity displaces more grid energy — but it is also \
         less correlated with the afternoon demand peak."
    );
    Ok(())
}
