//! Planned vs post-hoc settlement over a lossy interconnect: three sites
//! of each scenario pack's first variant share one market, coupled by
//! (a) the legacy pooled lossless knob and (b) a directed ring with 5%
//! line losses and a $2/MWh wheeling charge. The post-hoc mode settles
//! realized curtailment greedily; the planned mode routes each frame's
//! exports with the `FleetPlanner` flow LP.
//!
//! ```sh
//! cargo run --release --example lossy_interconnect
//! ```

use smartdpss::{
    Energy, Engine, FleetPlanner, Interconnect, MultiSiteEngine, MultiSiteReport, Price, RunReport,
    ScenarioPack, SimParams, SlotClock, SmartDpss, SmartDpssConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let sites = 3usize;

    // A one-directional ring 0 → 1 → 2 → 0: per-pair caps (no pool),
    // realistic losses, and a wheeling charge per MWh sent.
    let ring = |n: usize| -> Result<Interconnect, smartdpss::sim::SimError> {
        let mut ic = Interconnect::decoupled(n)?;
        for s in 0..n {
            ic = ic
                .with_link(s, (s + 1) % n, Energy::from_mwh(2.0))?
                .with_loss(s, (s + 1) % n, 0.05)?
                .with_wheeling(s, (s + 1) % n, Price::from_dollars_per_mwh(2.0))?;
        }
        Ok(ic)
    };

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "pack (variant 0)", "pooled ph", "pooled pl", "ring ph", "ring pl"
    );
    println!("{:-<64}", "");
    for name in ScenarioPack::builtin_names() {
        let pack = ScenarioPack::builtin(name).expect("registry is consistent");
        let engines: Vec<Engine> = (0..sites)
            .map(|s| Engine::new(params, pack.generate_site(&clock, 42, 0, s).unwrap()).unwrap())
            .collect();
        let multi = MultiSiteEngine::new(engines)?;
        let reports: Vec<RunReport> = multi
            .sites()
            .iter()
            .map(|site| {
                let mut ctl =
                    SmartDpss::new(SmartDpssConfig::icdcs13(), params, site.truth().clock).unwrap();
                site.run(&mut ctl).unwrap()
            })
            .collect();

        let settle = |ic: Interconnect, planned: bool| -> MultiSiteReport {
            let coupled = multi.clone().with_interconnect(ic).unwrap();
            if planned {
                FleetPlanner::for_engine(&coupled)
                    .couple(&coupled, reports.clone())
                    .unwrap()
            } else {
                coupled.couple(reports.clone()).unwrap()
            }
        };
        let pooled = Interconnect::pooled(sites, Energy::from_mwh(2.0))?;
        let per_slot = |r: &MultiSiteReport| r.time_average_cost().dollars();
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name,
            per_slot(&settle(pooled.clone(), false)),
            per_slot(&settle(pooled, true)),
            per_slot(&settle(ring(sites)?, false)),
            per_slot(&settle(ring(sites)?, true)),
        );
    }
    println!(
        "\nph = post-hoc greedy settlement, pl = planned (FleetPlanner flow LPs).\n\
         On the pooled lossless knob the greedy fold is optimal, so the modes\n\
         coincide; on the constrained lossy ring the planner routes around\n\
         the topology and settles at least as cheaply."
    );
    Ok(())
}
