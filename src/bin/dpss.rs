//! `dpss` — command-line front end for the SmartDPSS reproduction.
//!
//! ```text
//! dpss run    [--controller smart|offline|impatient|greedy] [--v F]
//!             [--epsilon F] [--seed N] [--days N] [--battery-min F]
//!             [--market tm|rtm] [--error F] [--json]
//! dpss traces [--seed N] [--days N] [--out FILE]
//! dpss sweep-v [--grid F,F,...] [--seed N] [--days N]
//! dpss bounds [--v F] [--epsilon F] [--battery-min F] [--t N]
//! ```
//!
//! Everything is deterministic in `--seed`; defaults reproduce the
//! paper's §VI-A setup.

use std::process::ExitCode;

use smartdpss::{
    Engine, GreedyBattery, Impatient, MarketMode, OfflineOptimal, Price, RunReport, Scenario,
    SimParams, SlotClock, SmartDpss, SmartDpssConfig, TheoremBounds, UniformError,
};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Cli {
    command: Command,
    controller: String,
    v: f64,
    epsilon: f64,
    seed: u64,
    days: usize,
    battery_min: f64,
    market: MarketMode,
    error: f64,
    t: usize,
    json: bool,
    grid: Vec<f64>,
    out: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Run,
    Traces,
    SweepV,
    Bounds,
    Help,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            command: Command::Help,
            controller: "smart".into(),
            v: 1.0,
            epsilon: 0.5,
            seed: 42,
            days: 31,
            battery_min: 15.0,
            market: MarketMode::TwoMarkets,
            error: 0.0,
            t: 24,
            json: false,
            grid: vec![0.05, 0.25, 1.0, 5.0],
            out: None,
        }
    }
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.into_iter();
    cli.command = match it.next().as_deref() {
        Some("run") => Command::Run,
        Some("traces") => Command::Traces,
        Some("sweep-v") => Command::SweepV,
        Some("bounds") => Command::Bounds,
        Some("help" | "--help" | "-h") | None => Command::Help,
        Some(other) => return Err(format!("unknown command: {other}")),
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--controller" => cli.controller = value("--controller")?,
            "--v" => cli.v = parse_f64(&value("--v")?, "--v")?,
            "--epsilon" => cli.epsilon = parse_f64(&value("--epsilon")?, "--epsilon")?,
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--days" => {
                cli.days = value("--days")?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?;
            }
            "--battery-min" => {
                cli.battery_min = parse_f64(&value("--battery-min")?, "--battery-min")?;
            }
            "--market" => {
                cli.market = match value("--market")?.as_str() {
                    "tm" => MarketMode::TwoMarkets,
                    "rtm" => MarketMode::RealTimeOnly,
                    other => return Err(format!("--market must be tm|rtm, got {other}")),
                };
            }
            "--error" => cli.error = parse_f64(&value("--error")?, "--error")?,
            "--t" => {
                cli.t = value("--t")?.parse().map_err(|e| format!("--t: {e}"))?;
            }
            "--json" => cli.json = true,
            "--grid" => {
                cli.grid = value("--grid")?
                    .split(',')
                    .map(|s| parse_f64(s, "--grid"))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => cli.out = Some(value("--out")?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if cli.days == 0 || cli.t == 0 {
        return Err("--days and --t must be at least 1".into());
    }
    Ok(cli)
}

fn parse_f64(s: &str, name: &str) -> Result<f64, String> {
    let x: f64 = s.trim().parse().map_err(|e| format!("{name}: {e}"))?;
    if x.is_finite() {
        Ok(x)
    } else {
        Err(format!("{name} must be finite"))
    }
}

fn usage() -> &'static str {
    "dpss — SmartDPSS (ICDCS 2013) reproduction CLI

USAGE:
  dpss run     [--controller smart|offline|impatient|greedy] [--v F]
               [--epsilon F] [--seed N] [--days N] [--battery-min F]
               [--market tm|rtm] [--error F (obs. error, e.g. 0.5)] [--json]
  dpss traces  [--seed N] [--days N] [--out FILE]   export the input CSV
  dpss sweep-v [--grid F,F,...] [--seed N] [--days N]
  dpss bounds  [--v F] [--epsilon F] [--battery-min F] [--t N]

All defaults reproduce the paper's one-month setup (seed 42)."
}

fn build_world(cli: &Cli) -> Result<(Engine, SimParams, SlotClock), String> {
    let clock = SlotClock::new(cli.days, cli.t, 1.0).map_err(|e| e.to_string())?;
    let truth = Scenario::icdcs13()
        .generate(&clock, cli.seed)
        .map_err(|e| e.to_string())?;
    let params = SimParams::icdcs13_with_battery(cli.battery_min);
    let mut engine = Engine::new(params, truth.clone()).map_err(|e| e.to_string())?;
    if cli.error > 0.0 {
        let observed = UniformError::new(cli.error)
            .map_err(|e| e.to_string())?
            .perturb(&truth, cli.seed ^ 0xE44)
            .map_err(|e| e.to_string())?;
        engine = engine.with_observed(observed).map_err(|e| e.to_string())?;
    }
    Ok((engine, params, clock))
}

fn smart_config(cli: &Cli) -> SmartDpssConfig {
    SmartDpssConfig::icdcs13()
        .with_v(cli.v)
        .with_epsilon(cli.epsilon)
        .with_market(cli.market)
}

fn run_controller(cli: &Cli) -> Result<RunReport, String> {
    let (engine, params, clock) = build_world(cli)?;
    let report = match cli.controller.as_str() {
        "smart" => {
            let mut c =
                SmartDpss::new(smart_config(cli), params, clock).map_err(|e| e.to_string())?;
            engine.run(&mut c)
        }
        "offline" => {
            let mut c =
                OfflineOptimal::new(params, engine.truth().clone()).map_err(|e| e.to_string())?;
            engine.run(&mut c)
        }
        "impatient" => engine.run(&mut match cli.market {
            MarketMode::TwoMarkets => Impatient::two_markets(),
            MarketMode::RealTimeOnly => Impatient::real_time_only(),
        }),
        "greedy" => {
            let mut c = GreedyBattery::around(Price::from_dollars_per_mwh(35.0))
                .map_err(|e| e.to_string())?;
            engine.run(&mut c)
        }
        other => return Err(format!("unknown controller: {other}")),
    };
    report.map_err(|e| e.to_string())
}

fn execute(cli: &Cli) -> Result<String, String> {
    match cli.command {
        Command::Help => Ok(usage().to_owned()),
        Command::Run => {
            let report = run_controller(cli)?;
            if cli.json {
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())
            } else {
                Ok(format!(
                    "{}\npeak grid draw {:.3} MWh/slot, battery [{:.3}, {:.3}] MWh, \
                     final backlog {:.3} MWh",
                    report.summary(),
                    report.peak_grid_draw.mwh(),
                    report.battery_min.mwh(),
                    report.battery_max.mwh(),
                    report.final_backlog.mwh(),
                ))
            }
        }
        Command::Traces => {
            let clock = SlotClock::new(cli.days, cli.t, 1.0).map_err(|e| e.to_string())?;
            let truth = Scenario::icdcs13()
                .generate(&clock, cli.seed)
                .map_err(|e| e.to_string())?;
            let csv = truth.to_csv();
            match &cli.out {
                Some(path) => {
                    std::fs::write(path, &csv).map_err(|e| e.to_string())?;
                    Ok(format!("wrote {} ({} rows)", path, clock.total_slots()))
                }
                None => Ok(csv),
            }
        }
        Command::SweepV => {
            let (engine, params, clock) = build_world(cli)?;
            let mut out = String::from("V,cost_per_slot,avg_delay_slots,max_delay_slots\n");
            for &v in &cli.grid {
                let mut c = SmartDpss::new(smart_config(cli).with_v(v), params, clock)
                    .map_err(|e| e.to_string())?;
                let r = engine.run(&mut c).map_err(|e| e.to_string())?;
                out.push_str(&format!(
                    "{v},{:.4},{:.3},{}\n",
                    r.time_average_cost().dollars(),
                    r.average_delay_slots,
                    r.max_delay_slots
                ));
            }
            Ok(out)
        }
        Command::Bounds => {
            let params = SimParams::icdcs13_with_battery(cli.battery_min);
            let clock = SlotClock::new(cli.days, cli.t, 1.0).map_err(|e| e.to_string())?;
            let config = smart_config(cli);
            config.validate().map_err(|e| e.to_string())?;
            let b = TheoremBounds::compute(&config, &params, &clock);
            Ok(format!(
                "Theorem 2 bounds for V={}, eps={}, T={}, battery {} min:\n\
                 Qmax {:.3} MWh | Ymax {:.3} | Umax {:.3} | lambda_max {} slots\n\
                 Vmax {:.3} (premise {}) | X in [{:.3}, {:.3}] | cost gap H2/V {:.3}",
                cli.v,
                cli.epsilon,
                cli.t,
                cli.battery_min,
                b.q_max,
                b.y_max,
                b.u_max,
                b.lambda_max_slots,
                b.v_max,
                if cli.v <= b.v_max {
                    "holds"
                } else {
                    "violated"
                },
                b.x_lower,
                b.x_upper,
                b.cost_gap,
            ))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(args) {
        Ok(cli) => match execute(&cli) {
            Ok(output) => {
                println!("{output}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_run_flags() {
        let cli = parse_args(args(
            "run --controller offline --v 2.5 --epsilon 0.25 --seed 7 \
             --days 3 --battery-min 30 --market rtm --error 0.5 --json",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Run);
        assert_eq!(cli.controller, "offline");
        assert_eq!(cli.v, 2.5);
        assert_eq!(cli.epsilon, 0.25);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.days, 3);
        assert_eq!(cli.battery_min, 30.0);
        assert_eq!(cli.market, MarketMode::RealTimeOnly);
        assert_eq!(cli.error, 0.5);
        assert!(cli.json);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(args("explode")).is_err());
        assert!(parse_args(args("run --v")).is_err());
        assert!(parse_args(args("run --v nan")).is_err());
        assert!(parse_args(args("run --market sideways")).is_err());
        assert!(parse_args(args("run --days 0")).is_err());
        assert!(parse_args(args("run --bogus 1")).is_err());
    }

    #[test]
    fn parses_grid() {
        let cli = parse_args(args("sweep-v --grid 0.1,1,5")).unwrap();
        assert_eq!(cli.grid, vec![0.1, 1.0, 5.0]);
    }

    #[test]
    fn help_by_default() {
        let cli = parse_args(Vec::new()).unwrap();
        assert_eq!(cli.command, Command::Help);
        assert!(execute(&cli).unwrap().contains("USAGE"));
    }

    #[test]
    fn executes_small_run_for_every_controller() {
        for controller in ["smart", "offline", "impatient", "greedy"] {
            let mut cli = parse_args(args("run --days 2 --seed 3")).unwrap();
            cli.controller = controller.into();
            let out = execute(&cli).unwrap();
            assert!(out.contains("cost/slot"), "{controller}: {out}");
        }
        let mut cli = parse_args(args("run --days 2 --seed 3 --json")).unwrap();
        cli.controller = "smart".into();
        let out = execute(&cli).unwrap();
        assert!(out.contains("\"controller\""));
    }

    #[test]
    fn executes_sweep_and_bounds_and_traces() {
        let cli = parse_args(args("sweep-v --days 2 --grid 0.5,2")).unwrap();
        let out = execute(&cli).unwrap();
        assert_eq!(out.lines().count(), 3);

        let cli = parse_args(args("bounds --v 1 --battery-min 120")).unwrap();
        let out = execute(&cli).unwrap();
        assert!(out.contains("Qmax"));

        let cli = parse_args(args("traces --days 1")).unwrap();
        let out = execute(&cli).unwrap();
        assert_eq!(out.lines().count(), 25); // header + 24 slots
    }

    #[test]
    fn unknown_controller_is_an_execution_error() {
        let mut cli = parse_args(args("run --days 1")).unwrap();
        cli.controller = "quantum".into();
        assert!(execute(&cli).is_err());
    }
}
