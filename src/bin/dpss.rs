//! `dpss` — command-line front end for the SmartDPSS reproduction.
//!
//! ```text
//! dpss run    [--controller smart|offline|impatient|greedy] [--v F]
//!             [--epsilon F] [--seed N] [--days N] [--battery-min F]
//!             [--market tm|rtm] [--error F] [--json]
//! dpss traces [--seed N] [--days N] [--out FILE]
//! dpss sweep-v [--grid F,F,...] [--seed N] [--days N] [--threads N] [--json]
//! dpss sweep  --figure NAME [--seed N] [--threads N] [--json]
//! dpss sweep  --pack NAME [--sites N]
//!             [--dispatch post-hoc|planned|coordinated]
//!             [--routing off|co-optimized]
//!             [--interactive-fraction F] [--max-queue-age N]
//!             [--solver-stats] [--seed N] [--threads N] [--json]
//! dpss bounds [--v F] [--epsilon F] [--battery-min F] [--t N]
//! dpss audit  [--json]
//! dpss serve  [--state-dir DIR] [--resume] [--log FILE]
//! dpss replay FILE [--state-dir DIR] [--json]
//! ```
//!
//! Everything is deterministic in `--seed` (and independent of
//! `--threads`); defaults reproduce the paper's §VI-A setup. All
//! failures are routed through one stderr formatter and exit nonzero
//! (`2` for usage errors, `1` for execution errors).

use std::process::ExitCode;

use smartdpss::bench::{figures, packs, routing};
use smartdpss::{
    Engine, ExperimentRunner, FigureTable, GreedyBattery, Impatient, MarketMode, OfflineOptimal,
    Price, RoutingConfig, RoutingMode, RunReport, Scenario, SimParams, SlotClock, SmartDpss,
    SmartDpssConfig, TheoremBounds, UniformError,
};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
struct Cli {
    command: Command,
    controller: String,
    v: f64,
    epsilon: f64,
    seed: u64,
    days: usize,
    battery_min: f64,
    market: MarketMode,
    error: f64,
    t: usize,
    json: bool,
    grid: Vec<f64>,
    out: Option<String>,
    threads: usize,
    figure: String,
    pack: String,
    sites: usize,
    dispatch: packs::DispatchMode,
    routing: RoutingMode,
    interactive_fraction: Option<f64>,
    max_queue_age: Option<usize>,
    solver_stats: bool,
    state_dir: Option<String>,
    resume: bool,
    log: Option<String>,
    replay_log: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Run,
    Traces,
    SweepV,
    Sweep,
    Bounds,
    Audit,
    Serve,
    Replay,
    Help,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            command: Command::Help,
            controller: "smart".into(),
            v: 1.0,
            epsilon: 0.5,
            seed: 42,
            days: 31,
            battery_min: 15.0,
            market: MarketMode::TwoMarkets,
            error: 0.0,
            t: 24,
            json: false,
            grid: vec![0.05, 0.25, 1.0, 5.0],
            out: None,
            threads: 0,
            figure: String::new(),
            pack: String::new(),
            sites: 1,
            dispatch: packs::DispatchMode::PostHoc,
            routing: RoutingMode::Off,
            interactive_fraction: None,
            max_queue_age: None,
            solver_stats: false,
            state_dir: None,
            resume: false,
            log: None,
            replay_log: None,
        }
    }
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.into_iter();
    cli.command = match it.next().as_deref() {
        Some("run") => Command::Run,
        Some("traces") => Command::Traces,
        Some("sweep-v") => Command::SweepV,
        Some("sweep") => Command::Sweep,
        Some("bounds") => Command::Bounds,
        Some("audit") => Command::Audit,
        Some("serve") => Command::Serve,
        Some("replay") => Command::Replay,
        Some("help" | "--help" | "-h") | None => Command::Help,
        Some(other) => return Err(format!("unknown command: {other}")),
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--controller" => cli.controller = value("--controller")?,
            "--v" => cli.v = parse_f64(&value("--v")?, "--v")?,
            "--epsilon" => cli.epsilon = parse_f64(&value("--epsilon")?, "--epsilon")?,
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--days" => {
                cli.days = value("--days")?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?;
            }
            "--battery-min" => {
                cli.battery_min = parse_f64(&value("--battery-min")?, "--battery-min")?;
            }
            "--market" => {
                cli.market = match value("--market")?.as_str() {
                    "tm" => MarketMode::TwoMarkets,
                    "rtm" => MarketMode::RealTimeOnly,
                    other => return Err(format!("--market must be tm|rtm, got {other}")),
                };
            }
            "--error" => cli.error = parse_f64(&value("--error")?, "--error")?,
            "--t" => {
                cli.t = value("--t")?.parse().map_err(|e| format!("--t: {e}"))?;
            }
            "--json" => cli.json = true,
            "--grid" => {
                cli.grid = value("--grid")?
                    .split(',')
                    .map(|s| parse_f64(s, "--grid"))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => cli.out = Some(value("--out")?),
            "--threads" => {
                cli.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--figure" => cli.figure = value("--figure")?,
            "--pack" => cli.pack = value("--pack")?,
            "--sites" => {
                cli.sites = value("--sites")?
                    .parse()
                    .map_err(|e| format!("--sites: {e}"))?;
            }
            // The mode roster is closed, so a typo is a usage error
            // (exit 2) just like an unknown pack name. `--interconnect`
            // is the legacy spelling of `--dispatch`.
            "--dispatch" | "--interconnect" => {
                cli.dispatch = packs::DispatchMode::parse(&value(&flag)?)?;
            }
            // Same closed-roster contract as --dispatch: a typo exits 2.
            "--routing" => {
                cli.routing = RoutingMode::parse(&value("--routing")?)?;
            }
            "--interactive-fraction" => {
                let f = parse_f64(&value("--interactive-fraction")?, "--interactive-fraction")?;
                if !(0.0..=1.0).contains(&f) {
                    return Err("--interactive-fraction must be within [0, 1]".into());
                }
                cli.interactive_fraction = Some(f);
            }
            "--max-queue-age" => {
                cli.max_queue_age = Some(
                    value("--max-queue-age")?
                        .parse()
                        .map_err(|e| format!("--max-queue-age: {e}"))?,
                );
            }
            "--solver-stats" => cli.solver_stats = true,
            "--state-dir" => cli.state_dir = Some(value("--state-dir")?),
            "--resume" => cli.resume = true,
            "--log" => cli.log = Some(value("--log")?),
            other
                if cli.command == Command::Replay
                    && !other.starts_with('-')
                    && cli.replay_log.is_none() =>
            {
                cli.replay_log = Some(other.to_owned());
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if cli.days == 0 || cli.t == 0 {
        return Err("--days and --t must be at least 1".into());
    }
    if cli.sites == 0 {
        return Err("--sites must be at least 1".into());
    }
    if cli.resume && cli.state_dir.is_none() {
        return Err("--resume requires --state-dir".into());
    }
    if cli.command == Command::Replay && cli.replay_log.is_none() {
        return Err("replay needs a request-log file".into());
    }
    if cli.command == Command::Sweep {
        match (cli.figure.is_empty(), cli.pack.is_empty()) {
            (true, true) => {
                return Err("sweep needs --figure or --pack (see usage for the known names)".into())
            }
            (false, false) => {
                return Err("sweep takes --figure or --pack, not both".into());
            }
            _ => {}
        }
        // Pack names are a closed registry, so a typo is a usage error
        // (exit 2), unlike runtime failures inside a sweep (exit 1).
        if !cli.pack.is_empty() {
            packs::lookup_builtin(&cli.pack)?;
        }
    }
    // The routing knobs configure the workload router, which only runs
    // under --routing co-optimized; a silent no-op would misreport what
    // the table measured, so a stray knob is a usage error.
    if cli.routing != RoutingMode::CoOptimized {
        if cli.interactive_fraction.is_some() {
            return Err("--interactive-fraction requires --routing co-optimized".into());
        }
        if cli.max_queue_age.is_some() {
            return Err("--max-queue-age requires --routing co-optimized".into());
        }
    }
    if cli.solver_stats && (cli.command != Command::Sweep || cli.pack.is_empty()) {
        return Err("--solver-stats requires a pack sweep (sweep --pack NAME)".into());
    }
    Ok(cli)
}

fn parse_f64(s: &str, name: &str) -> Result<f64, String> {
    let x: f64 = s.trim().parse().map_err(|e| format!("{name}: {e}"))?;
    if x.is_finite() {
        Ok(x)
    } else {
        Err(format!("{name} must be finite"))
    }
}

fn usage() -> &'static str {
    "dpss — SmartDPSS (ICDCS 2013) reproduction CLI

USAGE:
  dpss run     [--controller smart|offline|impatient|greedy] [--v F]
               [--epsilon F] [--seed N] [--days N] [--battery-min F]
               [--market tm|rtm] [--error F (obs. error, e.g. 0.5)] [--json]
  dpss traces  [--seed N] [--days N] [--out FILE]   export the input CSV
  dpss sweep-v [--grid F,F,...] [--seed N] [--days N] [--threads N] [--json]
  dpss sweep   --figure NAME [--seed N] [--threads N] [--json]
               NAME: fig5|fig6v|fig6t|fig7|fig8|fig9|fig10|
                     ablations|forecast|baselines
  dpss sweep   --pack NAME [--sites N]
               [--dispatch post-hoc|planned|coordinated]
               [--routing off|co-optimized]
               [--interactive-fraction F] [--max-queue-age N]
               [--solver-stats] [--seed N] [--threads N] [--json]
               NAME: seasonal-calendar|price-spike|renewable-drought|
                     flat-baseline|traffic-wave (multi-site cross-
                     aggregation table; planned mode routes exports with
                     per-frame flow LPs, coordinated mode feeds the plan
                     back into the sites' dispatch as buy-to-export
                     directives; --routing co-optimized implies
                     coordinated dispatch and adds the workload router:
                     deferrable requests absorb residual curtailment,
                     migrate toward it, or wait for cheaper frames.
                     --interactive-fraction F in [0,1] and
                     --max-queue-age N tune the router's admission
                     split and queue-age bound; --solver-stats appends
                     the LP kernel's telemetry for one coordinated
                     month of the pack's first variant)
  dpss bounds  [--v F] [--epsilon F] [--battery-min F] [--t N]
  dpss audit   [--json]   run the workspace source lints (determinism,
               panic-safety, hygiene); --json also writes target/audit.json.
               Exit 0 clean, 1 findings. Same pass as `cargo run -p dpss-audit`.
  dpss serve   [--state-dir DIR] [--resume] [--log FILE]
               stream a control session over stdin/stdout as newline-
               delimited JSON (see `dpss-serve --help` for the protocol;
               the standalone binary also serves Unix sockets)
  dpss replay  FILE [--state-dir DIR] [--json]
               re-drive a recorded request log deterministically;
               --json prints only the final report (same bytes as
               `dpss run --json` for an equivalent session)

Sweeps fan their cells out over --threads workers (0 = all cores) and
are deterministic: any thread count produces identical tables.
All defaults reproduce the paper's one-month setup (seed 42)."
}

fn serve_options(cli: &Cli) -> smartdpss::ServeOptions {
    smartdpss::ServeOptions {
        state_dir: cli.state_dir.as_ref().map(std::path::PathBuf::from),
        resume: cli.resume,
        log: cli.log.as_ref().map(std::path::PathBuf::from),
    }
}

fn build_world(cli: &Cli) -> Result<(Engine, SimParams, SlotClock), String> {
    let clock = SlotClock::new(cli.days, cli.t, 1.0).map_err(|e| e.to_string())?;
    let truth = Scenario::icdcs13()
        .generate(&clock, cli.seed)
        .map_err(|e| e.to_string())?;
    let params = SimParams::icdcs13_with_battery(cli.battery_min);
    let mut engine = Engine::new(params, truth.clone()).map_err(|e| e.to_string())?;
    if cli.error > 0.0 {
        let observed = UniformError::new(cli.error)
            .map_err(|e| e.to_string())?
            .perturb(&truth, cli.seed ^ 0xE44)
            .map_err(|e| e.to_string())?;
        engine = engine.with_observed(observed).map_err(|e| e.to_string())?;
    }
    Ok((engine, params, clock))
}

fn smart_config(cli: &Cli) -> SmartDpssConfig {
    SmartDpssConfig::icdcs13()
        .with_v(cli.v)
        .with_epsilon(cli.epsilon)
        .with_market(cli.market)
}

fn run_controller(cli: &Cli) -> Result<RunReport, String> {
    let (engine, params, clock) = build_world(cli)?;
    let report = match cli.controller.as_str() {
        "smart" => {
            let mut c =
                SmartDpss::new(smart_config(cli), params, clock).map_err(|e| e.to_string())?;
            engine.run(&mut c)
        }
        "offline" => {
            let mut c =
                OfflineOptimal::new(params, engine.truth().clone()).map_err(|e| e.to_string())?;
            engine.run(&mut c)
        }
        "impatient" => engine.run(&mut match cli.market {
            MarketMode::TwoMarkets => Impatient::two_markets(),
            MarketMode::RealTimeOnly => Impatient::real_time_only(),
        }),
        "greedy" => {
            let mut c = GreedyBattery::around(Price::from_dollars_per_mwh(35.0))
                .map_err(|e| e.to_string())?;
            engine.run(&mut c)
        }
        other => return Err(format!("unknown controller: {other}")),
    };
    report.map_err(|e| e.to_string())
}

fn execute(cli: &Cli) -> Result<String, String> {
    match cli.command {
        Command::Help => Ok(usage().to_owned()),
        Command::Run => {
            let report = run_controller(cli)?;
            if cli.json {
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())
            } else {
                Ok(format!(
                    "{}\npeak grid draw {:.3} MWh/slot, battery [{:.3}, {:.3}] MWh, \
                     final backlog {:.3} MWh",
                    report.summary(),
                    report.peak_grid_draw.mwh(),
                    report.battery_min.mwh(),
                    report.battery_max.mwh(),
                    report.final_backlog.mwh(),
                ))
            }
        }
        Command::Traces => {
            let clock = SlotClock::new(cli.days, cli.t, 1.0).map_err(|e| e.to_string())?;
            let truth = Scenario::icdcs13()
                .generate(&clock, cli.seed)
                .map_err(|e| e.to_string())?;
            let csv = truth.to_csv();
            match &cli.out {
                Some(path) => {
                    std::fs::write(path, &csv).map_err(|e| e.to_string())?;
                    Ok(format!("wrote {} ({} rows)", path, clock.total_slots()))
                }
                None => Ok(csv),
            }
        }
        Command::SweepV => {
            let (engine, params, clock) = build_world(cli)?;
            let runner = ExperimentRunner::new(cli.threads);
            let spec = smartdpss::SweepSpec::new("cli-sweep-v", cli.seed)
                .with_axis(smartdpss::Axis::from_f64s("V", &cli.grid));
            let rows: Vec<Result<Vec<String>, String>> = runner.run_cells(&spec, |cell| {
                let v = cli.grid[cell.index];
                let mut c = SmartDpss::new(smart_config(cli).with_v(v), params, clock)
                    .map_err(|e| e.to_string())?;
                let r = engine.run(&mut c).map_err(|e| e.to_string())?;
                Ok(vec![
                    format!("{v}"),
                    format!("{:.4}", r.time_average_cost().dollars()),
                    format!("{:.3}", r.average_delay_slots),
                    format!("{}", r.max_delay_slots),
                ])
            });
            let mut table = FigureTable::new(
                "sweep-v",
                &["V", "cost_per_slot", "avg_delay_slots", "max_delay_slots"],
            );
            for row in rows {
                table.push_owned(row?);
            }
            if cli.json {
                serde_json::to_string_pretty(&table).map_err(|e| e.to_string())
            } else {
                let mut out = String::from("V,cost_per_slot,avg_delay_slots,max_delay_slots\n");
                for row in &table.rows {
                    out.push_str(&row.join(","));
                    out.push('\n');
                }
                Ok(out)
            }
        }
        Command::Sweep => {
            let runner = ExperimentRunner::new(cli.threads);
            let seed = cli.seed;
            if !cli.pack.is_empty() {
                // Validated at parse time; unknown packs never get here.
                let pack = packs::lookup_builtin(&cli.pack)?;
                let interconnect = packs::default_interconnect(cli.sites);
                // Co-optimized routing wraps the coordinated fleet
                // dispatch; off leaves the pack sweep bit-for-bit as if
                // the flag never existed. The CLI knobs override the
                // paper defaults only when spelled out.
                let mut routing_config = RoutingConfig::icdcs13();
                if let Some(f) = cli.interactive_fraction {
                    routing_config = routing_config.with_interactive_fraction(f);
                }
                if let Some(a) = cli.max_queue_age {
                    routing_config = routing_config.with_max_queue_age(a);
                }
                let routed = cli.routing == RoutingMode::CoOptimized;
                let mut tables = vec![if routed {
                    routing::routing_sweep_with(
                        &runner,
                        seed,
                        &pack,
                        cli.sites,
                        &interconnect,
                        routing_config,
                    )
                } else {
                    packs::pack_sweep_with(
                        &runner,
                        seed,
                        &pack,
                        cli.sites,
                        &interconnect,
                        cli.dispatch,
                    )
                }];
                if cli.solver_stats {
                    tables.push(packs::solver_stats_table(
                        seed,
                        &pack,
                        cli.sites,
                        &interconnect,
                        routed.then_some(routing_config),
                    ));
                }
                return if cli.json {
                    // One bare table keeps the pre---solver-stats JSON
                    // shape; the stats probe appends a second document.
                    if let [table] = tables.as_slice() {
                        serde_json::to_string_pretty(table).map_err(|e| e.to_string())
                    } else {
                        serde_json::to_string_pretty(&tables).map_err(|e| e.to_string())
                    }
                } else {
                    Ok(tables
                        .iter()
                        .map(FigureTable::render)
                        .collect::<Vec<_>>()
                        .join("\n"))
                };
            }
            let tables: Vec<FigureTable> = match cli.figure.as_str() {
                "fig5" => vec![figures::fig5_with(&runner, seed).0],
                "fig6v" => vec![figures::fig6_v_with(
                    &runner,
                    seed,
                    &figures::FIG6_V_GRID,
                    true,
                )],
                "fig6t" => vec![figures::fig6_t_with(
                    &runner,
                    seed,
                    &figures::FIG6_T_GRID,
                    48,
                )],
                "fig7" => vec![
                    figures::fig7_epsilon_with(&runner, seed, &figures::FIG7_EPS_GRID),
                    figures::fig7_markets_with(&runner, seed),
                    figures::fig7_battery_with(&runner, seed, &figures::FIG7_BMAX_GRID),
                ],
                "fig8" => {
                    let (pen, var) = figures::fig8_with(
                        &runner,
                        seed,
                        &figures::FIG8_PENETRATION_GRID,
                        &figures::FIG8_VARIATION_GRID,
                    );
                    vec![pen, var]
                }
                "fig9" => vec![figures::fig9_with(
                    &runner,
                    seed,
                    0.5,
                    &figures::FIG6_V_GRID,
                )],
                "fig10" => vec![figures::fig10_with(
                    &runner,
                    seed,
                    &figures::FIG10_BETA_GRID,
                )],
                "ablations" => vec![figures::ablations_with(&runner, seed)],
                "forecast" => vec![figures::forecast_ablation_with(&runner, seed)],
                "baselines" => vec![figures::baselines_with(&runner, seed)],
                other => {
                    return Err(format!(
                        "unknown figure: {other} (expected fig5|fig6v|fig6t|fig7|fig8|\
                         fig9|fig10|ablations|forecast|baselines)"
                    ))
                }
            };
            if cli.json {
                serde_json::to_string_pretty(&tables).map_err(|e| e.to_string())
            } else {
                Ok(tables
                    .iter()
                    .map(FigureTable::render)
                    .collect::<Vec<_>>()
                    .join("\n"))
            }
        }
        Command::Audit => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            let root = dpss_audit::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory")?;
            let report = dpss_audit::audit_workspace(&root).map_err(|e| e.to_string())?;
            if cli.json {
                let target = root.join("target");
                std::fs::create_dir_all(&target).map_err(|e| e.to_string())?;
                std::fs::write(target.join("audit.json"), report.to_json())
                    .map_err(|e| format!("writing target/audit.json: {e}"))?;
            }
            if report.is_clean() {
                Ok(if cli.json {
                    report.to_json()
                } else {
                    report.render()
                })
            } else {
                // Findings are an execution failure (exit 1), rendered
                // through the same stderr funnel as every other error.
                Err(report.render())
            }
        }
        Command::Serve => {
            let options = serve_options(cli);
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut input = stdin.lock();
            let mut output = stdout.lock();
            smartdpss::serve::serve(&mut input, &mut output, &options)
                .map_err(|e| e.to_string())?;
            // The transcript already went to stdout line by line.
            Ok(String::new())
        }
        Command::Replay => {
            // Presence is enforced at parse time.
            let file = cli.replay_log.clone().unwrap_or_default();
            let options = serve_options(cli);
            let mut transcript = Vec::new();
            let outcome = smartdpss::serve::replay_file(
                std::path::Path::new(&file),
                &mut transcript,
                &options,
            )
            .map_err(|e| e.to_string())?;
            if cli.json {
                let report = outcome
                    .final_report
                    .ok_or("replay log did not finish a single-site session")?;
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())
            } else {
                let text = String::from_utf8(transcript).map_err(|e| e.to_string())?;
                Ok(text.trim_end_matches('\n').to_owned())
            }
        }
        Command::Bounds => {
            let params = SimParams::icdcs13_with_battery(cli.battery_min);
            let clock = SlotClock::new(cli.days, cli.t, 1.0).map_err(|e| e.to_string())?;
            let config = smart_config(cli);
            config.validate().map_err(|e| e.to_string())?;
            let b = TheoremBounds::compute(&config, &params, &clock);
            Ok(format!(
                "Theorem 2 bounds for V={}, eps={}, T={}, battery {} min:\n\
                 Qmax {:.3} MWh | Ymax {:.3} | Umax {:.3} | lambda_max {} slots\n\
                 Vmax {:.3} (premise {}) | X in [{:.3}, {:.3}] | cost gap H2/V {:.3}",
                cli.v,
                cli.epsilon,
                cli.t,
                cli.battery_min,
                b.q_max,
                b.y_max,
                b.u_max,
                b.lambda_max_slots,
                b.v_max,
                if cli.v <= b.v_max {
                    "holds"
                } else {
                    "violated"
                },
                b.x_lower,
                b.x_upper,
                b.cost_gap,
            ))
        }
    }
}

/// A CLI failure: the message plus whether it was a usage error (bad
/// flags — exit code 2, usage appended) or an execution error (exit
/// code 1). Every failure path funnels through this one type so stderr
/// formatting and exit codes cannot drift per subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CliFailure {
    message: String,
    usage_error: bool,
}

impl CliFailure {
    fn usage(message: String) -> Self {
        CliFailure {
            message,
            usage_error: true,
        }
    }

    fn execution(message: String) -> Self {
        CliFailure {
            message,
            usage_error: false,
        }
    }

    /// The single stderr rendering of any `dpss` failure.
    fn render(&self) -> String {
        if self.usage_error {
            format!("dpss: error: {}\n\n{}", self.message, usage())
        } else {
            format!("dpss: error: {}", self.message)
        }
    }

    fn exit_code(&self) -> ExitCode {
        ExitCode::from(if self.usage_error { 2 } else { 1 })
    }
}

fn run_cli(args: Vec<String>) -> Result<String, CliFailure> {
    let cli = parse_args(args).map_err(CliFailure::usage)?;
    execute(&cli).map_err(CliFailure::execution)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(args) {
        Ok(output) => {
            // serve streams its transcript itself and returns nothing.
            if !output.is_empty() {
                println!("{output}");
            }
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("{}", failure.render());
            failure.exit_code()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_run_flags() {
        let cli = parse_args(args(
            "run --controller offline --v 2.5 --epsilon 0.25 --seed 7 \
             --days 3 --battery-min 30 --market rtm --error 0.5 --json",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Run);
        assert_eq!(cli.controller, "offline");
        assert_eq!(cli.v, 2.5);
        assert_eq!(cli.epsilon, 0.25);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.days, 3);
        assert_eq!(cli.battery_min, 30.0);
        assert_eq!(cli.market, MarketMode::RealTimeOnly);
        assert_eq!(cli.error, 0.5);
        assert!(cli.json);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(args("explode")).is_err());
        assert!(parse_args(args("run --v")).is_err());
        assert!(parse_args(args("run --v nan")).is_err());
        assert!(parse_args(args("run --market sideways")).is_err());
        assert!(parse_args(args("run --days 0")).is_err());
        assert!(parse_args(args("run --bogus 1")).is_err());
    }

    #[test]
    fn parses_grid() {
        let cli = parse_args(args("sweep-v --grid 0.1,1,5")).unwrap();
        assert_eq!(cli.grid, vec![0.1, 1.0, 5.0]);
    }

    #[test]
    fn help_by_default() {
        let cli = parse_args(Vec::new()).unwrap();
        assert_eq!(cli.command, Command::Help);
        assert!(execute(&cli).unwrap().contains("USAGE"));
    }

    #[test]
    fn executes_small_run_for_every_controller() {
        for controller in ["smart", "offline", "impatient", "greedy"] {
            let mut cli = parse_args(args("run --days 2 --seed 3")).unwrap();
            cli.controller = controller.into();
            let out = execute(&cli).unwrap();
            assert!(out.contains("cost/slot"), "{controller}: {out}");
        }
        let mut cli = parse_args(args("run --days 2 --seed 3 --json")).unwrap();
        cli.controller = "smart".into();
        let out = execute(&cli).unwrap();
        assert!(out.contains("\"controller\""));
    }

    #[test]
    fn executes_sweep_and_bounds_and_traces() {
        let cli = parse_args(args("sweep-v --days 2 --grid 0.5,2")).unwrap();
        let out = execute(&cli).unwrap();
        assert_eq!(out.lines().count(), 3);

        let cli = parse_args(args("bounds --v 1 --battery-min 120")).unwrap();
        let out = execute(&cli).unwrap();
        assert!(out.contains("Qmax"));

        let cli = parse_args(args("traces --days 1")).unwrap();
        let out = execute(&cli).unwrap();
        assert_eq!(out.lines().count(), 25); // header + 24 slots
    }

    #[test]
    fn audit_subcommand_runs_clean_on_this_workspace() {
        let cli = parse_args(args("audit")).unwrap();
        assert_eq!(cli.command, Command::Audit);
        let out = execute(&cli).unwrap();
        assert!(out.contains("clean"), "{out}");

        let cli = parse_args(args("audit --json")).unwrap();
        let out = execute(&cli).unwrap();
        assert!(out.contains("\"clean\": true"), "{out}");
        assert!(out.contains("\"findings\": []"), "{out}");
    }

    #[test]
    fn unknown_controller_is_an_execution_error() {
        let mut cli = parse_args(args("run --days 1")).unwrap();
        cli.controller = "quantum".into();
        assert!(execute(&cli).is_err());
    }

    #[test]
    fn parses_serve_and_replay_flags() {
        let cli = parse_args(args(
            "serve --state-dir /tmp/dpss --resume --log /tmp/req.log",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.state_dir.as_deref(), Some("/tmp/dpss"));
        assert!(cli.resume);
        assert_eq!(cli.log.as_deref(), Some("/tmp/req.log"));

        let cli = parse_args(args("replay session.ndjson --json")).unwrap();
        assert_eq!(cli.command, Command::Replay);
        assert_eq!(cli.replay_log.as_deref(), Some("session.ndjson"));
        assert!(cli.json);

        // Resume needs somewhere to resume from; replay needs its log.
        assert!(parse_args(args("serve --resume")).is_err());
        assert!(parse_args(args("replay")).is_err());
    }

    #[test]
    fn replay_reproduces_the_batch_run_byte_for_byte() {
        let dir = std::env::temp_dir().join("dpss-cli-replay-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("session.ndjson");
        let mut text = String::from("{\"cmd\":\"init\",\"mode\":\"scenario\",\"days\":2}\n");
        text.push_str("{\"cmd\":\"step\"}\n{\"cmd\":\"step\"}\n{\"cmd\":\"finish\"}\n");
        std::fs::write(&log, text).unwrap();

        let mut cli = parse_args(args("replay placeholder.ndjson --json")).unwrap();
        cli.replay_log = Some(log.display().to_string());
        let replayed = execute(&cli).unwrap();
        let batch = execute(&parse_args(args("run --days 2 --json")).unwrap()).unwrap();
        assert_eq!(replayed, batch);
    }

    #[test]
    fn parses_sweep_flags() {
        let cli = parse_args(args("sweep --figure fig6v --threads 4 --json --seed 9")).unwrap();
        assert_eq!(cli.command, Command::Sweep);
        assert_eq!(cli.figure, "fig6v");
        assert_eq!(cli.threads, 4);
        assert_eq!(cli.seed, 9);
        assert!(cli.json);
        // --figure is mandatory for sweep.
        assert!(parse_args(args("sweep")).is_err());
    }

    #[test]
    fn sweep_v_json_and_threads_agree_with_text() {
        let text = run_cli(args("sweep-v --days 2 --grid 0.5,2 --threads 1")).unwrap();
        let threaded = run_cli(args("sweep-v --days 2 --grid 0.5,2 --threads 4")).unwrap();
        assert_eq!(text, threaded, "thread count must not change results");
        assert_eq!(text.lines().count(), 3);
        let json = run_cli(args("sweep-v --days 2 --grid 0.5,2 --json")).unwrap();
        let table: FigureTable = serde_json::from_str(&json).unwrap();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.columns[0], "V");
        // The JSON rows carry the same cells the CSV prints.
        assert!(text.contains(&table.rows[0][1]));
    }

    #[test]
    fn parses_pack_sweep_flags() {
        let cli = parse_args(args("sweep --pack price-spike --sites 3 --json")).unwrap();
        assert_eq!(cli.command, Command::Sweep);
        assert_eq!(cli.pack, "price-spike");
        assert_eq!(cli.sites, 3);
        assert!(cli.json);
        // Exactly one of --figure / --pack.
        assert!(parse_args(args("sweep")).is_err());
        assert!(parse_args(args("sweep --figure fig5 --pack price-spike")).is_err());
        assert!(parse_args(args("sweep --pack price-spike --sites 0")).is_err());
    }

    #[test]
    fn parses_dispatch_mode() {
        let cli = parse_args(args(
            "sweep --pack price-spike --sites 2 --dispatch planned",
        ))
        .unwrap();
        assert_eq!(cli.dispatch, packs::DispatchMode::Planned);
        let cli = parse_args(args("sweep --pack price-spike --dispatch coordinated")).unwrap();
        assert_eq!(cli.dispatch, packs::DispatchMode::Coordinated);
        // The legacy spelling keeps working.
        let cli = parse_args(args("sweep --pack price-spike --interconnect post-hoc")).unwrap();
        assert_eq!(cli.dispatch, packs::DispatchMode::PostHoc);
    }

    #[test]
    fn unknown_dispatch_mode_is_a_usage_error() {
        let err = run_cli(args("sweep --pack price-spike --dispatch bogus")).unwrap_err();
        assert!(err.usage_error, "closed mode roster → usage error, exit 2");
        assert_eq!(err.exit_code(), ExitCode::from(2));
        let shown = err.render();
        assert!(
            shown.starts_with("dpss: error: unknown dispatch mode: bogus"),
            "{shown}"
        );
        assert!(shown.contains("post-hoc|planned|coordinated"), "{shown}");
        // The legacy flag routes through the same parser and formatter.
        let err = run_cli(args("sweep --pack price-spike --interconnect bogus")).unwrap_err();
        assert!(err.usage_error);
        assert!(err
            .render()
            .starts_with("dpss: error: unknown dispatch mode: bogus"));
    }

    #[test]
    fn parses_routing_mode() {
        let cli = parse_args(args(
            "sweep --pack traffic-wave --sites 2 --routing co-optimized",
        ))
        .unwrap();
        assert_eq!(cli.routing, RoutingMode::CoOptimized);
        // `--routing off` is the default spelled out: the parsed command
        // is identical to not passing the flag at all, which is how the
        // CLI keeps the off tables byte-for-bit those of the pre-routing
        // sweep path.
        let spelled = parse_args(args("sweep --pack price-spike --sites 2 --routing off")).unwrap();
        let silent = parse_args(args("sweep --pack price-spike --sites 2")).unwrap();
        assert_eq!(spelled, silent);
    }

    #[test]
    fn unknown_routing_mode_is_a_usage_error() {
        let err = run_cli(args("sweep --pack traffic-wave --routing bogus")).unwrap_err();
        assert!(err.usage_error, "closed mode roster → usage error, exit 2");
        assert_eq!(err.exit_code(), ExitCode::from(2));
        let shown = err.render();
        assert!(
            shown.starts_with("dpss: error: unknown routing mode: bogus"),
            "{shown}"
        );
        assert!(shown.contains("off|co-optimized"), "{shown}");
    }

    #[test]
    fn parses_routing_knobs_and_solver_stats() {
        let cli = parse_args(args(
            "sweep --pack traffic-wave --sites 2 --routing co-optimized \
             --interactive-fraction 0.4 --max-queue-age 3 --solver-stats",
        ))
        .unwrap();
        assert_eq!(cli.interactive_fraction, Some(0.4));
        assert_eq!(cli.max_queue_age, Some(3));
        assert!(cli.solver_stats);
        // Out-of-range admission splits are usage errors, not runtime
        // panics inside the sweep.
        let err = run_cli(args(
            "sweep --pack traffic-wave --routing co-optimized --interactive-fraction 1.5",
        ))
        .unwrap_err();
        assert!(err.usage_error, "range check at parse time, exit 2");
        assert!(err.render().contains("within [0, 1]"), "{}", err.render());
    }

    #[test]
    fn routing_knobs_without_the_router_are_usage_errors() {
        // The knobs tune the workload router; accepted without it they
        // would silently change nothing.
        for bad in [
            "sweep --pack traffic-wave --interactive-fraction 0.4",
            "sweep --pack traffic-wave --routing off --max-queue-age 3",
        ] {
            let err = run_cli(args(bad)).unwrap_err();
            assert!(err.usage_error, "{bad}");
            assert!(
                err.render().contains("requires --routing co-optimized"),
                "{}",
                err.render()
            );
        }
        // --solver-stats probes a pack's fleet month: pack sweeps only.
        let err = run_cli(args("sweep --figure fig5 --solver-stats")).unwrap_err();
        assert!(err.usage_error);
        assert!(
            err.render().contains("requires a pack sweep"),
            "{}",
            err.render()
        );
    }

    #[test]
    fn unknown_pack_is_a_usage_error_with_the_known_names() {
        let err = run_cli(args("sweep --pack nonexistent")).unwrap_err();
        assert!(err.usage_error, "closed registry → usage error, exit 2");
        assert_eq!(err.exit_code(), ExitCode::from(2));
        let shown = err.render();
        assert!(shown.starts_with("dpss: error: unknown scenario pack: nonexistent"));
        assert!(shown.contains("seasonal-calendar"), "{shown}");
    }

    #[test]
    fn sweep_unknown_figure_is_an_execution_error() {
        let err = run_cli(args("sweep --figure fig99")).unwrap_err();
        assert!(!err.usage_error);
        assert!(err.render().contains("unknown figure"));
    }

    #[test]
    fn failure_path_formats_and_exit_codes() {
        // Usage errors: prefixed, usage appended, exit code 2.
        let err = run_cli(args("explode")).unwrap_err();
        assert!(err.usage_error);
        let shown = err.render();
        assert!(shown.starts_with("dpss: error: unknown command: explode"));
        assert!(shown.contains("USAGE"), "usage text appended: {shown}");
        assert_eq!(err.exit_code(), ExitCode::from(2));

        // Execution errors: same prefix, no usage spam, exit code 1.
        let mut cli = parse_args(args("run --days 1")).unwrap();
        cli.controller = "quantum".into();
        let err = CliFailure::execution(execute(&cli).unwrap_err());
        let shown = err.render();
        assert!(shown.starts_with("dpss: error: unknown controller: quantum"));
        assert!(!shown.contains("USAGE"));
        assert_eq!(err.exit_code(), ExitCode::from(1));
    }
}
