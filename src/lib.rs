//! **smartdpss** — a reproduction of *"SmartDPSS: Cost-Minimizing
//! Multi-source Power Supply for Datacenters with Arbitrary Demand"*
//! (Deng, Liu, Jin & Wu, IEEE ICDCS 2013) as a production-quality Rust
//! workspace.
//!
//! This crate is the façade: it re-exports the workspace's seven libraries
//! so applications can depend on a single crate. See the individual crates
//! for full documentation:
//!
//! * [`units`] (`dpss-units`) — physical-unit newtypes ([`Energy`],
//!   [`Power`], [`Price`], [`Money`]) and the two-timescale calendar
//!   ([`SlotClock`]);
//! * [`lp`] (`dpss-lp`) — the two-phase simplex LP substrate;
//! * [`traces`] (`dpss-traces`) — synthetic solar/wind/price/demand trace
//!   generators with error injection, scaling transforms and the
//!   [`ScenarioPack`] registry of named input regimes;
//! * [`sim`] (`dpss-sim`) — the discrete-time DPSS plant: UPS battery,
//!   demand queue with an exact FIFO delay ledger, the [`Controller`]
//!   trait, the simulation [`Engine`] and the [`MultiSiteEngine`]
//!   fleet composition;
//! * [`core`] (`dpss-core`) — the [`SmartDpss`] controller itself plus the
//!   [`OfflineOptimal`] benchmark, the [`Impatient`] baseline and the
//!   Theorem 2 bound calculators;
//! * [`serve`] (`dpss-serve`) — the crash-resumable streaming control
//!   daemon: NDJSON sessions over stdio or a Unix socket, versioned
//!   checksummed snapshots, and deterministic replay;
//! * [`mod@bench`] (`dpss-bench`) — the experiment-runner subsystem: declarative
//!   [`SweepSpec`]s executed across threads by an [`ExperimentRunner`], one
//!   computation function per paper figure.
//!
//! # Quickstart
//!
//! ```
//! use smartdpss::{Engine, SimParams, SmartDpss, SmartDpssConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One month of synthetic traces shaped like the paper's inputs.
//! let traces = smartdpss::traces::paper_month_traces(42)?;
//! let params = SimParams::icdcs13();
//! let engine = Engine::new(params, traces)?;
//!
//! let mut smart = SmartDpss::new(SmartDpssConfig::icdcs13(), params,
//!                                engine.truth().clock)?;
//! let report = engine.run(&mut smart)?;
//! println!("{}", report.summary());
//! assert!(report.unserved_ds.mwh() == 0.0); // datacenter stayed up
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub use dpss_bench as bench;
pub use dpss_core as core;
pub use dpss_lp as lp;
pub use dpss_serve as serve;
pub use dpss_sim as sim;
pub use dpss_traces as traces;
pub use dpss_units as units;

pub use dpss_bench::{Axis, ExperimentRunner, FigureTable, SweepCache, SweepSpec};
pub use dpss_lp::LpWorkspace;

pub use dpss_bench::{DispatchMode, InterconnectMode};
pub use dpss_core::{
    cheapest_window_bound, FleetPlanner, GreedyBattery, Impatient, MarketMode, OfflineConfig,
    OfflineOptimal, P4Variant, P5Objective, RecedingHorizon, RoutingPlanner, SmartDpss,
    SmartDpssConfig, SolverPath, TheoremBounds,
};
pub use dpss_serve::{ServeError, ServeOptions, ServeOutcome, SessionConfig, SessionServer};
pub use dpss_sim::{
    Battery, BatteryParams, Controller, DelayLedger, DemandQueue, Engine, EngineRun,
    FleetDispatcher, FleetWorkload, ForecastPolicy, FrameDecision, FrameDirective,
    FrameObservation, FrameOutlook, Interconnect, LoadTotals, MultiSiteEngine, MultiSiteReport,
    RoutedDispatcher, RoutingConfig, RoutingMode, RunReport, SimParams, SiteOutlook, SlotDecision,
    SlotObservation, SystemView, UnroutedDispatcher,
};
pub use dpss_traces::{Scenario, ScenarioPack, TraceSet, UniformError};
pub use dpss_units::{Energy, Money, Power, Price, SlotClock};
