//! Golden-trace conformance suite: pins the distributional fingerprint of
//! every [`Scenario`] variant and every built-in [`ScenarioPack`] variant
//! at the canonical seed (42) on the paper's one-month calendar.
//!
//! The fingerprint of a series is `mean std min max lag1-autocorrelation`
//! at 9 decimal places — far below any modelling tolerance, so *any*
//! drift in the vendored RNG, the seed-derivation chain or the generator
//! code fails this suite loudly, naming the offending scenario and
//! series. Published artifacts (figure tables, pack sweeps) are
//! downstream of exactly these streams.
//!
//! To regenerate after an *intentional* distribution change:
//!
//! ```text
//! cargo test -p dpss-traces --test golden_stats -- --ignored --nocapture \
//!     print_snapshot
//! ```
//!
//! and replace the body of `SNAPSHOT` with the printed rows.

use dpss_traces::{lag1_autocorrelation, Scenario, ScenarioPack, SeriesStats, TraceSet};
use dpss_units::SlotClock;

/// Canonical master seed of every published artifact.
const SEED: u64 = 42;

/// The five series of a [`TraceSet`] that are pinned, in order.
const SERIES: [&str; 5] = [
    "demand_ds",
    "demand_dt",
    "renewable",
    "price_lt",
    "price_rt",
];

fn fingerprint(values: &[f64]) -> String {
    let s = SeriesStats::from_values(values.iter().copied());
    format!(
        "{:.9} {:.9} {:.9} {:.9} {:.9}",
        s.mean,
        s.std,
        s.min,
        s.max,
        lag1_autocorrelation(values)
    )
}

fn fingerprints(t: &TraceSet) -> [String; 5] {
    let e = |v: &[dpss_units::Energy]| v.iter().map(|x| x.mwh()).collect::<Vec<_>>();
    let p = |v: &[dpss_units::Price]| v.iter().map(|x| x.dollars_per_mwh()).collect::<Vec<_>>();
    [
        fingerprint(&e(&t.demand_ds)),
        fingerprint(&e(&t.demand_dt)),
        fingerprint(&e(&t.renewable)),
        fingerprint(&p(&t.price_lt)),
        fingerprint(&p(&t.price_rt)),
    ]
}

/// Every pinned trace stream: the standalone scenario constructors, every
/// built-in pack variant at its derived seed, and one pack variant's
/// first two *sites* (pinning the site-seed + shared-market path).
fn entries() -> Vec<(String, TraceSet)> {
    let clock = SlotClock::icdcs13_month();
    let mut out = vec![
        (
            "scenario/icdcs13".to_owned(),
            Scenario::icdcs13().generate(&clock, SEED).unwrap(),
        ),
        (
            "scenario/windy-plains".to_owned(),
            Scenario::windy_plains().generate(&clock, SEED).unwrap(),
        ),
    ];
    for &name in ScenarioPack::builtin_names() {
        let pack = ScenarioPack::builtin(name).unwrap();
        for (i, (label, _)) in pack.variants().iter().enumerate() {
            out.push((
                format!("pack/{name}/{label}"),
                pack.generate(&clock, SEED, i).unwrap(),
            ));
        }
    }
    let seasonal = ScenarioPack::seasonal_calendar();
    for site in 0..2 {
        out.push((
            format!("pack/seasonal-calendar/winter/site{site}"),
            seasonal.generate_site(&clock, SEED, 0, site).unwrap(),
        ));
    }
    out
}

// SNAPSHOT-BEGIN
#[rustfmt::skip]
const SNAPSHOT: &[(&str, [&str; 5])] = &[
    (
        "scenario/icdcs13",
        [
            "0.702853605 0.143300409 0.399532422 1.122078198 0.919167793",
            "0.504796258 0.308664760 0.000000000 0.800000000 0.067008715",
            "0.371937946 0.664393344 0.000000000 3.757261864 0.849150087",
            "34.643945655 2.370044722 29.750731100 38.642409646 0.480640365",
            "48.170804580 10.849824289 27.297937300 100.000000000 0.413617432",
        ],
    ),
    (
        "scenario/windy-plains",
        [
            "0.702853605 0.143300409 0.399532422 1.122078198 0.919167793",
            "0.504796258 0.308664760 0.000000000 0.800000000 0.067008715",
            "0.579322660 0.518841716 0.000000000 2.435393195 0.896044642",
            "34.643945655 2.370044722 29.750731100 38.642409646 0.480640365",
            "48.170804580 10.849824289 27.297937300 100.000000000 0.413617432",
        ],
    ),
    (
        "pack/seasonal-calendar/winter",
        [
            "0.704205654 0.148390102 0.415075966 1.108033324 0.915465101",
            "0.493478671 0.312068144 0.000000000 0.800000000 0.088861643",
            "0.347603208 0.634245243 0.000000000 3.820142975 0.843513503",
            "36.251783652 3.494583929 29.620430267 45.254520287 0.613415612",
            "47.896047478 9.716273108 30.912721892 100.000000000 0.420745120",
        ],
    ),
    (
        "pack/seasonal-calendar/spring",
        [
            "0.700363326 0.144606452 0.403963490 1.178470087 0.919083266",
            "0.495968073 0.323591366 0.000000000 0.800000000 0.015804726",
            "0.554976390 0.823156804 0.000000000 3.645249793 0.890606336",
            "32.559069185 2.197673388 28.798169685 36.361403964 0.047502045",
            "47.502699530 9.371548223 28.293827014 100.000000000 0.391448803",
        ],
    ),
    (
        "pack/seasonal-calendar/summer",
        [
            "0.712637343 0.147880012 0.453474926 1.192293271 0.918810243",
            "0.492834281 0.311445473 0.000000000 0.800000000 0.018709604",
            "0.635919068 0.782877876 0.000000000 3.893366527 0.931539008",
            "34.092045157 2.388269241 27.235523295 37.438669356 0.630040975",
            "48.086694547 10.457791903 28.695721586 100.000000000 0.404832273",
        ],
    ),
    (
        "pack/seasonal-calendar/autumn-windy",
        [
            "0.714575842 0.149850895 0.424963166 1.161952730 0.920652142",
            "0.512335940 0.306068738 0.000000000 0.800000000 0.021341129",
            "0.746870050 0.732891553 0.000000000 3.781200137 0.848079977",
            "34.813210859 3.186837563 27.506248179 40.717588987 0.422490215",
            "47.006143135 10.071742762 27.631282650 100.000000000 0.353666798",
        ],
    ),
    (
        "pack/price-spike/calm",
        [
            "0.701525925 0.144101754 0.439208678 1.076903430 0.919132798",
            "0.498687456 0.309968222 0.000000000 0.800000000 0.010793890",
            "0.312534535 0.596399336 0.000000000 3.056231007 0.830993712",
            "37.136571037 2.995372633 31.928956072 43.230190257 0.354420133",
            "46.746148515 7.081468039 25.331048345 66.899825809 0.825828689",
        ],
    ),
    (
        "pack/price-spike/paper",
        [
            "0.708138251 0.143902359 0.430213266 1.142613265 0.916487802",
            "0.493322602 0.316958083 0.000000000 0.800000000 -0.027897749",
            "0.323763620 0.602627466 0.000000000 3.264518471 0.844877305",
            "36.171685125 4.084500912 28.728301415 43.741635646 0.750687257",
            "46.461795612 9.150942043 29.956559485 100.000000000 0.431223026",
        ],
    ),
    (
        "pack/price-spike/spiky",
        [
            "0.700646496 0.143306765 0.415250474 1.086952601 0.915870508",
            "0.506617344 0.319223740 0.000000000 0.800000000 0.051977254",
            "0.321620036 0.608094732 0.000000000 3.473485552 0.846034925",
            "36.191012305 3.404947885 29.307666091 43.081984985 0.587003863",
            "49.783903904 14.738036995 26.171085165 100.000000000 0.247843313",
        ],
    ),
    (
        "pack/price-spike/stressed",
        [
            "0.708949121 0.154360820 0.419626035 1.184354553 0.925372577",
            "0.498795897 0.318133624 0.000000000 0.800000000 0.089858191",
            "0.386164114 0.674705163 0.000000000 3.576550153 0.852914236",
            "33.868273362 5.013572960 23.218395801 42.509211317 0.813473248",
            "56.288588080 22.173747120 17.502499717 100.000000000 0.099667999",
        ],
    ),
    (
        "pack/renewable-drought/paper",
        [
            "0.701139306 0.147472316 0.401783776 1.146689766 0.921687285",
            "0.495305231 0.309618704 0.000000000 0.800000000 0.051784791",
            "0.384266244 0.711364249 0.000000000 3.828992938 0.870363802",
            "32.879306570 3.385407147 25.777533304 40.360065104 0.663504126",
            "46.547362708 9.328955464 30.305226002 100.000000000 0.416916945",
        ],
    ),
    (
        "pack/renewable-drought/dim",
        [
            "0.700495042 0.144419641 0.434975091 1.098099182 0.922893095",
            "0.483151376 0.311789083 0.000000000 0.800000000 0.039226731",
            "0.165584776 0.343668296 0.000000000 2.304898690 0.835184353",
            "36.682467952 4.056572728 28.779266716 45.943520269 0.776558294",
            "48.209716054 10.856889531 28.658726811 100.000000000 0.354969032",
        ],
    ),
    (
        "pack/renewable-drought/drought",
        [
            "0.700514333 0.146678993 0.440603015 1.176116685 0.918920064",
            "0.510228188 0.308614656 0.000000000 0.800000000 0.025577599",
            "0.067168872 0.155918482 0.000000000 1.112846731 0.822659771",
            "34.098529203 2.492303440 26.553837465 38.969513818 0.323461338",
            "47.227654386 9.401318251 29.896553448 100.000000000 0.466684561",
        ],
    ),
    (
        "pack/renewable-drought/near-dark",
        [
            "0.706880952 0.149392141 0.441340449 1.162974472 0.921811937",
            "0.508028507 0.315520646 0.000000000 0.800000000 0.065908534",
            "0.023629259 0.051466081 0.000000000 0.364709595 0.887466877",
            "33.680055058 1.768608360 30.104725748 37.792493383 -0.071893101",
            "47.854353361 9.377204045 28.980698511 100.000000000 0.400898108",
        ],
    ),
    (
        "pack/flat-baseline/paper",
        [
            "0.703740978 0.141848559 0.448874254 1.105187449 0.914475424",
            "0.484232185 0.316320227 0.000000000 0.800000000 0.031694329",
            "0.330547860 0.614047442 0.000000000 3.710900321 0.829794874",
            "34.860229635 3.581854527 28.861912846 41.614502719 0.663018207",
            "47.724620824 10.756289690 23.095693000 100.000000000 0.403425756",
        ],
    ),
    (
        "pack/flat-baseline/flat-demand",
        [
            "0.721580487 0.051329371 0.596116115 0.796496671 0.955747202",
            "0.506149182 0.314746524 0.000000000 0.800000000 0.007314734",
            "0.300768699 0.550951334 0.000000000 3.123056694 0.835814648",
            "35.039076777 3.350548599 28.003303685 41.725493289 0.509516529",
            "48.029172172 10.384453643 28.189289207 100.000000000 0.438379190",
        ],
    ),
    (
        "pack/flat-baseline/flat-prices",
        [
            "0.703940288 0.143082502 0.415072532 1.162014911 0.920440826",
            "0.484627442 0.319797794 0.000000000 0.800000000 0.123732196",
            "0.361899056 0.647713415 0.000000000 3.620642825 0.858175191",
            "35.088362146 0.591271512 33.716005069 36.398414411 0.642433289",
            "47.391965889 0.872578672 44.697396249 49.825554413 0.777938413",
        ],
    ),
    (
        "pack/flat-baseline/flat-both",
        [
            "0.721251394 0.050136807 0.614170942 0.805698293 0.951809291",
            "0.502054665 0.314709503 0.000000000 0.800000000 0.066280619",
            "0.422542160 0.760183685 0.000000000 3.818932844 0.858675250",
            "35.020619949 0.625804273 33.576571184 35.932059714 0.337005865",
            "47.155451548 0.893792808 44.024127987 50.117567680 0.787751824",
        ],
    ),
    (
        "pack/traffic-wave/steady",
        [
            "0.702072543 0.143722119 0.419475728 1.141247919 0.916296729",
            "0.506365628 0.313968969 0.000000000 0.800000000 0.007149700",
            "0.386448868 0.697093122 0.000000000 3.368774647 0.851650094",
            "35.262922218 3.890260923 27.017433690 46.299726414 0.566313359",
            "49.355301174 10.412311635 29.810873661 100.000000000 0.344568031",
        ],
    ),
    (
        "pack/traffic-wave/offset-diurnal",
        [
            "0.712383333 0.142889193 0.416579177 1.255060925 0.915773008",
            "0.486952817 0.318912478 0.000000000 0.800000000 0.040900450",
            "0.345579041 0.627221381 0.000000000 3.329619197 0.854444202",
            "34.644957156 3.088565215 28.696368910 40.209465801 0.346060378",
            "47.264804696 9.914176988 28.280023120 100.000000000 0.410990977",
        ],
    ),
    (
        "pack/traffic-wave/flash-crowd",
        [
            "0.702672070 0.142254340 0.435429735 1.165074944 0.914416824",
            "0.476095681 0.322391305 0.000000000 0.800000000 0.093886776",
            "0.345436534 0.622419754 0.000000000 3.667895179 0.823770633",
            "36.139174065 4.123677182 27.400007013 44.497083807 0.763860748",
            "47.633529238 9.774479509 26.203185414 100.000000000 0.472561109",
        ],
    ),
    (
        "pack/traffic-wave/surge",
        [
            "0.701433369 0.147037536 0.395206026 1.166589054 0.923465743",
            "0.504036473 0.318201797 0.000000000 0.800000000 0.011889120",
            "0.308237391 0.574102867 0.000000000 3.260376192 0.834113213",
            "33.995773390 3.857968122 25.285523238 40.441700542 0.678342496",
            "47.550230090 9.772194491 26.678408481 100.000000000 0.498243503",
        ],
    ),
    (
        "pack/seasonal-calendar/winter/site0",
        [
            "0.704584424 0.152141432 0.429987765 1.168667194 0.920680530",
            "0.487137223 0.320754822 0.000000000 0.800000000 0.036276534",
            "0.329198683 0.573979299 0.000000000 2.919584528 0.838613859",
            "36.251783652 3.494583929 29.620430267 45.254520287 0.613415612",
            "47.896047478 9.716273108 30.912721892 100.000000000 0.420745120",
        ],
    ),
    (
        "pack/seasonal-calendar/winter/site1",
        [
            "0.706202272 0.147255729 0.391503325 1.156670582 0.920555269",
            "0.523454392 0.307998566 0.000000000 0.800000000 -0.007912681",
            "0.330804737 0.639142787 0.000000000 3.703889827 0.817024726",
            "36.251783652 3.494583929 29.620430267 45.254520287 0.613415612",
            "47.896047478 9.716273108 30.912721892 100.000000000 0.420745120",
        ],
    ),
];
// SNAPSHOT-END

#[test]
fn every_scenario_and_pack_variant_matches_its_golden_fingerprint() {
    let entries = entries();
    assert_eq!(
        entries.len(),
        SNAPSHOT.len(),
        "pinned entry roster changed: every scenario and pack variant \
         must have a golden fingerprint (regenerate with print_snapshot)"
    );
    let mut failures = Vec::new();
    for ((key, traces), (want_key, want)) in entries.iter().zip(SNAPSHOT) {
        assert_eq!(
            key, want_key,
            "pinned entry order changed (regenerate with print_snapshot)"
        );
        for (series, (got, want)) in SERIES.iter().zip(fingerprints(traces).iter().zip(*want)) {
            if got != want {
                failures.push(format!(
                    "{key} {series}:\n  pinned   {want}\n  computed {got}"
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden trace fingerprint(s) drifted — the generator or RNG \
         stream changed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The golden snapshot as a machine-readable artifact: CI uploads
/// `target/golden_stats.json` so published-artifact drift can be diffed
/// across commits without re-running the suite.
#[test]
fn write_golden_stats_artifact() {
    let mut json = String::from("{\n");
    let entries = entries();
    for (i, (key, traces)) in entries.iter().enumerate() {
        json.push_str(&format!("  \"{key}\": {{\n"));
        for (j, (series, fp)) in SERIES.iter().zip(fingerprints(traces)).enumerate() {
            let comma = if j + 1 < SERIES.len() { "," } else { "" };
            json.push_str(&format!("    \"{series}\": \"{fp}\"{comma}\n"));
        }
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("  }}{comma}\n"));
    }
    json.push_str("}\n");
    // Best-effort: the suite must pass on read-only filesystems too.
    let dir = std::path::Path::new("../../target");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join("golden_stats.json"), &json);
    }
    assert!(json.contains("pack/seasonal-calendar/winter"));
}

/// The pinned request-arrival streams: every `traffic-wave` variant at
/// its derived seed, plus the first two *sites* of the flash-crowd
/// variant (pinning the per-site regional-offset draw). Kept in a table
/// separate from `SNAPSHOT` because the other entries carry no arrivals.
fn arrival_entries() -> Vec<(String, Vec<f64>)> {
    let clock = SlotClock::icdcs13_month();
    let pack = ScenarioPack::builtin("traffic-wave").unwrap();
    let series = |t: TraceSet| -> Vec<f64> {
        t.arrivals
            .expect("traffic-wave variants carry arrivals")
            .iter()
            .map(|e| e.mwh())
            .collect()
    };
    let mut out = Vec::new();
    for (i, (label, _)) in pack.variants().iter().enumerate() {
        out.push((
            format!("arrivals/traffic-wave/{label}"),
            series(pack.generate(&clock, SEED, i).unwrap()),
        ));
    }
    for site in 0..2 {
        out.push((
            format!("arrivals/traffic-wave/flash-crowd/site{site}"),
            series(pack.generate_site(&clock, SEED, 2, site).unwrap()),
        ));
    }
    out
}

// ARRIVALS-SNAPSHOT-BEGIN
#[rustfmt::skip]
const ARRIVALS_SNAPSHOT: &[(&str, &str)] = &[
    ("arrivals/traffic-wave/steady", "0.296615511 0.075218485 0.186082175 0.468125597 0.945716297"),
    ("arrivals/traffic-wave/offset-diurnal", "0.300143312 0.096330316 0.162568291 0.534640512 0.953121291"),
    ("arrivals/traffic-wave/flash-crowd", "0.336405544 0.206285461 0.186959150 1.500000000 0.637106853"),
    ("arrivals/traffic-wave/surge", "0.461471115 0.180292556 0.206226316 1.500000000 0.874963489"),
    ("arrivals/traffic-wave/flash-crowd/site0", "0.381636821 0.285099103 0.181681956 1.500000000 0.637087382"),
    ("arrivals/traffic-wave/flash-crowd/site1", "0.346590571 0.229992667 0.192366318 1.500000000 0.642924706"),
];
// ARRIVALS-SNAPSHOT-END

#[test]
fn every_arrival_stream_matches_its_golden_fingerprint() {
    let entries = arrival_entries();
    assert_eq!(
        entries.len(),
        ARRIVALS_SNAPSHOT.len(),
        "pinned arrival roster changed (regenerate with print_arrivals_snapshot)"
    );
    let mut failures = Vec::new();
    for ((key, values), (want_key, want)) in entries.iter().zip(ARRIVALS_SNAPSHOT) {
        assert_eq!(
            key, want_key,
            "pinned arrival entry order changed (regenerate with print_arrivals_snapshot)"
        );
        let got = fingerprint(values);
        if got != *want {
            failures.push(format!("{key}:\n  pinned   {want}\n  computed {got}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden arrival fingerprint(s) drifted:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Regeneration helper: prints the `SNAPSHOT` rows in source form.
#[test]
#[ignore = "snapshot generator, run with --ignored --nocapture"]
fn print_snapshot() {
    for (key, traces) in entries() {
        let [a, b, c, d, e] = fingerprints(&traces);
        println!("    (");
        println!("        \"{key}\",");
        println!("        [");
        for fp in [a, b, c, d, e] {
            println!("            \"{fp}\",");
        }
        println!("        ],");
        println!("    ),");
    }
}

/// Regeneration helper for the arrivals table.
#[test]
#[ignore = "snapshot generator, run with --ignored --nocapture"]
fn print_arrivals_snapshot() {
    for (key, values) in arrival_entries() {
        println!("    (\"{key}\", \"{}\"),", fingerprint(&values));
    }
}
