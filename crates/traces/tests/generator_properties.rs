//! Property-based checks of the trace generators: for *any* sane model
//! parameters, every generated series must satisfy the `TraceSet`
//! invariants, respect its caps, and be deterministic in the seed.

use dpss_traces::{DemandModel, PriceModel, Scenario, SolarModel, UniformError, WindModel};
use dpss_units::{Energy, Power, SlotClock};
use proptest::prelude::*;

fn small_clock() -> SlotClock {
    SlotClock::new(4, 24, 1.0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solar_respects_physics(
        capacity in 0.0..10.0f64,
        persistence in 0.0..0.99f64,
        severity in 0.0..2.0f64,
        day_std in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        let m = SolarModel::icdcs13()
            .with_capacity(Power::from_mw(capacity))
            .with_clouds(persistence, severity)
            .with_day_variability(day_std);
        let t = m.generate(&small_clock(), seed).unwrap();
        prop_assert_eq!(t.len(), 96);
        for (i, e) in t.iter().enumerate() {
            prop_assert!(e.is_finite() && e.mwh() >= 0.0, "slot {i}");
            // Day factor is capped at 1.6 in the model.
            prop_assert!(e.mwh() <= capacity * 1.6 + 1e-9, "slot {i}");
        }
        // Night slots (hour 0..6) are always dark.
        for day in 0..4 {
            for h in 0..6 {
                prop_assert_eq!(t[day * 24 + h].mwh(), 0.0);
            }
        }
        prop_assert_eq!(&m.generate(&small_clock(), seed).unwrap(), &t);
    }

    #[test]
    fn wind_respects_its_curve(
        capacity in 0.0..5.0f64,
        mean in 0.0..20.0f64,
        std in 0.0..8.0f64,
        persistence in 0.0..0.99f64,
        seed in 0u64..1000,
    ) {
        let m = WindModel::icdcs13()
            .with_capacity(Power::from_mw(capacity))
            .with_speed_process(mean, std, persistence);
        let t = m.generate(&small_clock(), seed).unwrap();
        for e in &t {
            prop_assert!(e.is_finite() && e.mwh() >= 0.0);
            prop_assert!(e.mwh() <= capacity + 1e-12);
        }
    }

    #[test]
    fn prices_respect_cap_floor_and_means(
        amplitude in 0.0..0.6f64,
        markup in 1.0..2.0f64,
        spike_p in 0.0..0.3f64,
        seed in 0u64..1000,
    ) {
        let m = PriceModel::icdcs13()
            .with_daily_amplitude(amplitude)
            .with_rt_markup(markup)
            .with_spikes(spike_p, 40.0);
        let clock = small_clock();
        let p = m.generate(&clock, seed).unwrap();
        prop_assert_eq!(p.long_term.len(), 4);
        prop_assert_eq!(p.real_time.len(), 96);
        for x in p.long_term.iter().chain(p.real_time.iter()) {
            prop_assert!(x.is_finite());
            prop_assert!(x.dollars_per_mwh() >= 0.0);
            prop_assert!(x.dollars_per_mwh() <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn demand_respects_caps(
        base in 0.0..1.5f64,
        amplitude in 0.0..1.0f64,
        rate in 0.0..10.0f64,
        size in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        let m = DemandModel::icdcs13()
            .with_interactive_base(Power::from_mw(base))
            .with_interactive_amplitude(amplitude)
            .with_batch(rate, Energy::from_mwh(size));
        let t = m.generate(&small_clock(), seed).unwrap();
        for i in 0..96 {
            let ds = t.delay_sensitive[i];
            let dt = t.delay_tolerant[i];
            prop_assert!(ds.is_finite() && ds.mwh() >= 0.0);
            prop_assert!(dt.is_finite() && dt.mwh() >= 0.0);
            prop_assert!(dt.mwh() <= 0.8 + 1e-9, "Ddtmax violated at {i}");
            prop_assert!((ds + dt).mwh() <= 2.0 + 1e-9, "Pgrid clip violated at {i}");
        }
    }

    #[test]
    fn scenario_always_yields_valid_trace_sets(seed in 0u64..500) {
        let t = Scenario::icdcs13().generate(&small_clock(), seed).unwrap();
        t.validate().unwrap();
        // The §II-B2 market property must hold for every seed.
        prop_assert!(t.mean_rt_price() > t.mean_lt_price());
    }

    #[test]
    fn error_injection_stays_in_band_and_valid(
        fraction in 0.0..1.0f64,
        seed in 0u64..500,
    ) {
        let truth = Scenario::icdcs13().generate(&small_clock(), 7).unwrap();
        let observed = UniformError::new(fraction).unwrap().perturb(&truth, seed).unwrap();
        observed.validate().unwrap();
        for (t, o) in truth.renewable.iter().zip(&observed.renewable) {
            prop_assert!(o.mwh() >= t.mwh() * (1.0 - fraction) - 1e-9);
            prop_assert!(o.mwh() <= t.mwh() * (1.0 + fraction) + 1e-9);
        }
    }

    #[test]
    fn csv_round_trip_for_any_seed(seed in 0u64..500) {
        let t = Scenario::icdcs13().generate(&small_clock(), seed).unwrap();
        let back = dpss_traces::TraceSet::from_csv(t.clock, &t.to_csv()).unwrap();
        prop_assert_eq!(back, t);
    }
}
