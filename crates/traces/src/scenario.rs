use dpss_units::{Energy, SlotClock};

use crate::randutil::subseed;
use crate::{DemandModel, PriceModel, SolarModel, TraceError, TraceSet, WindModel, WorkloadModel};

/// One-stop generator for a consistent [`TraceSet`]: demand, renewables and
/// the two market price series.
///
/// The default [`Scenario::icdcs13`] mirrors the paper's evaluation inputs
/// (one month of solar, NYISO-like prices, Google-cluster-like demand; see
/// `DESIGN.md` §4). Wind is available as an extension and is disabled by
/// default to match the paper.
///
/// # Examples
///
/// ```
/// use dpss_traces::{Scenario, WindModel};
/// use dpss_units::SlotClock;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::icdcs13_month();
/// // Paper setup.
/// let base = Scenario::icdcs13().generate(&clock, 42)?;
/// // Extension: add a wind farm on the same circuit.
/// let windy = Scenario::icdcs13()
///     .with_wind(WindModel::icdcs13())
///     .generate(&clock, 42)?;
/// assert!(windy.total_renewable() > base.total_renewable());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    solar: SolarModel,
    wind: Option<WindModel>,
    price: PriceModel,
    demand: DemandModel,
    workload: Option<WorkloadModel>,
}

impl Scenario {
    /// The paper's evaluation setup (§VI-A).
    #[must_use]
    pub fn icdcs13() -> Self {
        Scenario {
            solar: SolarModel::icdcs13(),
            wind: None,
            price: PriceModel::icdcs13(),
            demand: DemandModel::icdcs13(),
            workload: None,
        }
    }

    /// A wind-dominant site (extension): a small solar array plus a 2 MW
    /// wind farm — around-the-clock but gustier renewables. Useful for
    /// studying how the controller copes without the solar diurnal cycle.
    #[must_use]
    pub fn windy_plains() -> Self {
        Scenario {
            solar: SolarModel::icdcs13().with_capacity(dpss_units::Power::from_mw(0.5)),
            wind: Some(crate::WindModel::icdcs13().with_capacity(dpss_units::Power::from_mw(2.0))),
            price: PriceModel::icdcs13(),
            demand: DemandModel::icdcs13(),
            workload: None,
        }
    }

    /// Replaces the solar model.
    #[must_use]
    pub fn with_solar(mut self, solar: SolarModel) -> Self {
        self.solar = solar;
        self
    }

    /// Adds (or replaces) a wind farm on the renewable circuit.
    #[must_use]
    pub fn with_wind(mut self, wind: WindModel) -> Self {
        self.wind = Some(wind);
        self
    }

    /// Removes the wind farm.
    #[must_use]
    pub fn without_wind(mut self) -> Self {
        self.wind = None;
        self
    }

    /// Replaces the price model.
    #[must_use]
    pub fn with_price(mut self, price: PriceModel) -> Self {
        self.price = price;
        self
    }

    /// Replaces the demand model.
    #[must_use]
    pub fn with_demand(mut self, demand: DemandModel) -> Self {
        self.demand = demand;
        self
    }

    /// Adds (or replaces) a request-arrival workload stream. Scenarios
    /// with a workload generate [`TraceSet::arrivals`].
    #[must_use]
    pub fn with_workload(mut self, workload: WorkloadModel) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Removes the workload stream.
    #[must_use]
    pub fn without_workload(mut self) -> Self {
        self.workload = None;
        self
    }

    /// The workload model, if one is attached (read access for harnesses).
    #[must_use]
    pub fn workload(&self) -> Option<&WorkloadModel> {
        self.workload.as_ref()
    }

    /// The demand model (read access for experiment harnesses).
    #[must_use]
    pub fn demand(&self) -> &DemandModel {
        &self.demand
    }

    /// The price model (read access for experiment harnesses).
    #[must_use]
    pub fn price(&self) -> &PriceModel {
        &self.price
    }

    /// Generates all series, deterministically in `(self, clock, seed)`.
    /// Component generators receive decorrelated sub-seeds, so changing the
    /// master seed changes everything while keeping components independent.
    ///
    /// # Errors
    ///
    /// Propagates any model misconfiguration and trace validation errors.
    pub fn generate(&self, clock: &SlotClock, seed: u64) -> Result<TraceSet, TraceError> {
        self.generate_with_market_seed(clock, seed, seed)
    }

    /// [`Scenario::generate`] with the market price series seeded
    /// independently of the site-local series.
    ///
    /// Multi-datacenter sweeps run every site on its own demand/renewable
    /// realization but in *one* shared electricity market: passing the
    /// same `market_seed` (and price model) to every site while varying
    /// `seed` produces exactly that. `generate(clock, s)` is equivalent to
    /// `generate_with_market_seed(clock, s, s)`, so single-site artifacts
    /// are untouched by this split.
    ///
    /// # Errors
    ///
    /// Propagates any model misconfiguration and trace validation errors.
    pub fn generate_with_market_seed(
        &self,
        clock: &SlotClock,
        seed: u64,
        market_seed: u64,
    ) -> Result<TraceSet, TraceError> {
        let demand = self.demand.generate(clock, subseed(seed, 1))?;
        let mut renewable = self.solar.generate(clock, subseed(seed, 2))?;
        if let Some(wind) = &self.wind {
            let wind_trace = wind.generate(clock, subseed(seed, 3))?;
            for (r, w) in renewable.iter_mut().zip(wind_trace) {
                *r += w;
            }
        }
        let prices = self.price.generate(clock, subseed(market_seed, 4))?;
        let ts = TraceSet::new(
            *clock,
            demand.delay_sensitive,
            demand.delay_tolerant,
            renewable,
            prices.long_term,
            prices.real_time,
        )?;
        // The workload stream rides its own sub-seed link (5), appended
        // after the existing chain: attaching or detaching a workload
        // never shifts the demand/renewable/price realizations.
        match &self.workload {
            Some(w) => ts.with_arrivals(w.generate(clock, subseed(seed, 5))?),
            None => Ok(ts),
        }
    }
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario::icdcs13()
    }
}

/// Convenience: the exact one-month evaluation input of the paper with the
/// repository's canonical seed.
///
/// # Errors
///
/// Propagates generation errors (none for the built-in configuration).
///
/// # Examples
///
/// ```
/// let traces = dpss_traces::paper_month_traces(42)?;
/// assert_eq!(traces.clock.total_slots(), 744);
/// # Ok::<(), dpss_traces::TraceError>(())
/// ```
pub fn paper_month_traces(seed: u64) -> Result<TraceSet, TraceError> {
    Scenario::icdcs13().generate(&SlotClock::icdcs13_month(), seed)
}

/// Returns the paper's `Ddtmax` bound implied by the default demand model —
/// needed by the theorem-bound calculators.
#[must_use]
pub fn paper_ddt_max() -> Energy {
    DemandModel::icdcs13().ddt_max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_produces_valid_traces() {
        let clock = SlotClock::icdcs13_month();
        let t = Scenario::icdcs13().generate(&clock, 42).unwrap();
        t.validate().unwrap();
        assert!(t.total_demand() > Energy::ZERO);
        assert!(t.total_renewable() > Energy::ZERO);
        // Penetration should be meaningful but below 100% by default.
        let pen = t.renewable_penetration();
        assert!((0.05..0.9).contains(&pen), "penetration {pen}");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let s = Scenario::icdcs13();
        assert_eq!(
            s.generate(&clock, 1).unwrap(),
            s.generate(&clock, 1).unwrap()
        );
        assert_ne!(
            s.generate(&clock, 1).unwrap(),
            s.generate(&clock, 2).unwrap()
        );
    }

    #[test]
    fn wind_adds_to_renewables_only() {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let base = Scenario::icdcs13().generate(&clock, 7).unwrap();
        let windy = Scenario::icdcs13()
            .with_wind(WindModel::icdcs13())
            .generate(&clock, 7)
            .unwrap();
        assert!(windy.total_renewable() > base.total_renewable());
        assert_eq!(windy.demand_ds, base.demand_ds);
        assert_eq!(windy.price_rt, base.price_rt);
        let back = Scenario::icdcs13()
            .with_wind(WindModel::icdcs13())
            .without_wind()
            .generate(&clock, 7)
            .unwrap();
        assert_eq!(back, base);
    }

    #[test]
    fn workload_adds_arrivals_without_perturbing_existing_series() {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let base = Scenario::icdcs13().generate(&clock, 7).unwrap();
        assert_eq!(base.arrivals, None);
        let routed = Scenario::icdcs13()
            .with_workload(crate::WorkloadModel::icdcs13())
            .generate(&clock, 7)
            .unwrap();
        let arrivals = routed.arrivals.clone().expect("workload attached");
        assert_eq!(arrivals.len(), clock.total_slots());
        // Attaching a workload must not shift any pre-existing stream.
        assert_eq!(routed.demand_ds, base.demand_ds);
        assert_eq!(routed.demand_dt, base.demand_dt);
        assert_eq!(routed.renewable, base.renewable);
        assert_eq!(routed.price_lt, base.price_lt);
        assert_eq!(routed.price_rt, base.price_rt);
        // And detaching restores full equality.
        let back = Scenario::icdcs13()
            .with_workload(crate::WorkloadModel::icdcs13())
            .without_workload()
            .generate(&clock, 7)
            .unwrap();
        assert_eq!(back, base);
    }

    #[test]
    fn paper_month_traces_helper() {
        let t = paper_month_traces(42).unwrap();
        assert_eq!(t.clock.frames(), 31);
        assert_eq!(paper_ddt_max(), Energy::from_mwh(0.8));
    }

    #[test]
    fn windy_plains_runs_around_the_clock() {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let t = Scenario::windy_plains().generate(&clock, 5).unwrap();
        t.validate().unwrap();
        // Wind produces at night where solar cannot: some energy in the
        // midnight-to-5am window.
        let night: f64 = (0..3)
            .flat_map(|d| (0..5).map(move |h| d * 24 + h))
            .map(|i| t.renewable[i].mwh())
            .sum();
        assert!(night > 0.0, "wind site must produce at night");
    }

    #[test]
    fn default_is_paper_scenario() {
        let clock = SlotClock::new(2, 24, 1.0).unwrap();
        assert_eq!(
            Scenario::default().generate(&clock, 3).unwrap(),
            Scenario::icdcs13().generate(&clock, 3).unwrap()
        );
    }
}
