//! The repository-wide seed-derivation primitives.
//!
//! Every deterministic registry in the workspace — `dpss-bench`'s
//! per-cell sweep seeds and [`crate::ScenarioPack`]'s per-variant/site
//! seeds — derives from exactly these two functions, chained as
//! `splitmix64(master ^ fnv1a(name))` then one `splitmix64` link per
//! coordinate. Sharing the definitions (rather than copies) is what
//! makes the documented "same derivation scheme" claim structural.

/// The splitmix64 finalizer — a cheap, high-quality 64-bit mix with full
/// avalanche, so chained links stay decorrelated.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a registry name, used to salt seed chains so two
/// registries with different names never share a stream.
#[must_use]
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_known_vector() {
        // First output of the reference splitmix64 stream seeded with 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Offset basis for the empty string, reference value for "a".
        assert_eq!(fnv1a(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a("a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a("fig"), fnv1a("gif"));
    }
}
