use dpss_units::{Energy, Power, SlotClock};
use rand::{rngs::StdRng, SeedableRng};

use crate::randutil::{exponential, poisson, subseed, Ar1};
use crate::TraceError;

/// The two demand-class series consumed by a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandTraces {
    /// Delay-sensitive demand `d_ds(τ)` per fine slot (Websearch/Webmail-
    /// like interactive load).
    pub delay_sensitive: Vec<Energy>,
    /// Delay-tolerant demand `d_dt(τ)` per fine slot (MapReduce-like batch
    /// load), bounded by `Ddtmax` per slot.
    pub delay_tolerant: Vec<Energy>,
}

/// Synthetic datacenter power-demand model.
///
/// Substitutes for the paper's Google-cluster trace: a diurnal interactive
/// component (delay-sensitive; Websearch and Webmail in the paper) plus a
/// bursty compound-Poisson batch component (delay-tolerant; MapReduce),
/// with a night-time batch bias. Following §VI-A, the combined series is
/// scaled so that peaks never exceed the grid interconnect `Pgrid`, and the
/// per-slot delay-tolerant arrival is capped at `Ddtmax` (Eq. before (2)).
///
/// # Examples
///
/// ```
/// use dpss_traces::DemandModel;
/// use dpss_units::SlotClock;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::icdcs13_month();
/// let demand = DemandModel::icdcs13().generate(&clock, 5)?;
/// assert_eq!(demand.delay_sensitive.len(), 744);
/// // Both classes are present in a realistic mix.
/// let ds: f64 = demand.delay_sensitive.iter().map(|e| e.mwh()).sum();
/// let dt: f64 = demand.delay_tolerant.iter().map(|e| e.mwh()).sum();
/// assert!(ds > 0.0 && dt > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DemandModel {
    interactive_base: Power,
    interactive_amplitude: f64,
    interactive_noise_std: f64,
    weekend_factor: f64,
    batch_rate_per_hour: f64,
    batch_size_mean: Energy,
    batch_night_boost: f64,
    ddt_max: Energy,
    grid_cap: Power,
}

impl DemandModel {
    /// Paper-like defaults for a `Pgrid = 2 MW` datacenter: ~0.75 MW mean
    /// interactive load with a 35% afternoon swing, and a MapReduce-heavy
    /// batch component (~45% of total energy, matching the Google-cluster
    /// mix the paper samples) with night-biased arrivals and
    /// `Ddtmax = 0.8 MWh` per hourly slot.
    #[must_use]
    pub fn icdcs13() -> Self {
        DemandModel {
            interactive_base: Power::from_mw(0.75),
            interactive_amplitude: 0.35,
            interactive_noise_std: 0.08,
            weekend_factor: 0.85,
            batch_rate_per_hour: 1.8,
            batch_size_mean: Energy::from_mwh(0.35),
            batch_night_boost: 0.8,
            ddt_max: Energy::from_mwh(0.8),
            grid_cap: Power::from_mw(2.0),
        }
    }

    /// Sets the mean interactive (delay-sensitive) load.
    #[must_use]
    pub fn with_interactive_base(mut self, base: Power) -> Self {
        self.interactive_base = base;
        self
    }

    /// Sets the diurnal swing of the interactive load as a fraction of base.
    #[must_use]
    pub fn with_interactive_amplitude(mut self, amplitude: f64) -> Self {
        self.interactive_amplitude = amplitude;
        self
    }

    /// Sets the AR(1) noise level (fraction of base) of the interactive load.
    #[must_use]
    pub fn with_interactive_noise(mut self, noise_std: f64) -> Self {
        self.interactive_noise_std = noise_std;
        self
    }

    /// Sets batch arrivals: mean arrivals per hour and mean energy per batch.
    #[must_use]
    pub fn with_batch(mut self, rate_per_hour: f64, size_mean: Energy) -> Self {
        self.batch_rate_per_hour = rate_per_hour;
        self.batch_size_mean = size_mean;
        self
    }

    /// Sets the per-slot cap `Ddtmax` on delay-tolerant arrivals.
    #[must_use]
    pub fn with_ddt_max(mut self, ddt_max: Energy) -> Self {
        self.ddt_max = ddt_max;
        self
    }

    /// Sets the grid interconnect `Pgrid` used for peak clipping.
    #[must_use]
    pub fn with_grid_cap(mut self, grid_cap: Power) -> Self {
        self.grid_cap = grid_cap;
        self
    }

    /// Per-slot cap `Ddtmax` on delay-tolerant arrivals.
    #[must_use]
    pub fn ddt_max(&self) -> Energy {
        self.ddt_max
    }

    /// Grid interconnect cap used for peak clipping.
    #[must_use]
    pub fn grid_cap(&self) -> Power {
        self.grid_cap
    }

    fn validate(&self) -> Result<(), TraceError> {
        if !(self.interactive_base.is_finite() && self.interactive_base.mw() >= 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "interactive_base",
                requirement: "must be finite and non-negative",
            });
        }
        for (v, what) in [
            (self.interactive_amplitude, "interactive_amplitude"),
            (self.interactive_noise_std, "interactive_noise_std"),
            (self.batch_rate_per_hour, "batch_rate_per_hour"),
            (self.batch_night_boost, "batch_night_boost"),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(TraceError::InvalidParameter {
                    what,
                    requirement: "must be finite and non-negative",
                });
            }
        }
        if self.interactive_amplitude > 1.0 {
            return Err(TraceError::InvalidParameter {
                what: "interactive_amplitude",
                requirement: "must be at most 1 (load cannot go negative)",
            });
        }
        if !(0.0..=1.0).contains(&self.weekend_factor) {
            return Err(TraceError::InvalidParameter {
                what: "weekend_factor",
                requirement: "must be in [0, 1]",
            });
        }
        if !(self.batch_size_mean.is_finite() && self.batch_size_mean.mwh() >= 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "batch_size_mean",
                requirement: "must be finite and non-negative",
            });
        }
        if !(self.ddt_max.is_finite() && self.ddt_max.mwh() >= 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "ddt_max",
                requirement: "must be finite and non-negative",
            });
        }
        if !(self.grid_cap.is_finite() && self.grid_cap.mw() > 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "grid_cap",
                requirement: "must be finite and positive",
            });
        }
        Ok(())
    }

    /// Generates both demand classes for the whole calendar.
    ///
    /// Deterministic in `(self, clock, seed)`.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidParameter`] if the model is misconfigured.
    pub fn generate(&self, clock: &SlotClock, seed: u64) -> Result<DemandTraces, TraceError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(subseed(seed, 0xDE3A_0004));
        let mut noise = Ar1::new(0.7, 1.0);
        let slot_h = clock.slot_hours();
        let slot_cap = self.grid_cap.over_hours(slot_h);

        let mut ds = Vec::with_capacity(clock.total_slots());
        let mut dt = Vec::with_capacity(clock.total_slots());
        for id in clock.slots() {
            let hour_abs = id.index as f64 * slot_h;
            let hour = hour_abs % 24.0;
            let day = (hour_abs / 24.0) as usize;
            let weekend = matches!(day % 7, 5 | 6);
            let day_factor = if weekend { self.weekend_factor } else { 1.0 };

            // Delay-sensitive: diurnal single peak mid-afternoon plus noise.
            let shape = 1.0 + self.interactive_amplitude * interactive_shape(hour);
            let n = 1.0 + self.interactive_noise_std * noise.next(&mut rng);
            let mw = self.interactive_base.mw() * shape * day_factor * n.max(0.0);
            let e_ds = Power::from_mw(mw.max(0.0)).over_hours(slot_h);

            // Delay-tolerant: compound Poisson with a night boost.
            let night = 1.0 + self.batch_night_boost * night_shape(hour);
            let lambda = self.batch_rate_per_hour * slot_h * night;
            let arrivals = poisson(&mut rng, lambda);
            let mut batch = 0.0;
            for _ in 0..arrivals {
                batch += exponential(&mut rng, self.batch_size_mean.mwh());
            }
            let e_dt = Energy::from_mwh(batch).min(self.ddt_max);

            // Peak clipping at Pgrid (§VI-A: "removing demand peaks above
            // Pgrid"), proportionally across the two classes.
            let total = e_ds + e_dt;
            let (e_ds, e_dt) = if total > slot_cap && total > Energy::ZERO {
                let f = slot_cap / total;
                (e_ds * f, e_dt * f)
            } else {
                (e_ds, e_dt)
            };
            ds.push(e_ds);
            dt.push(e_dt);
        }
        Ok(DemandTraces {
            delay_sensitive: ds,
            delay_tolerant: dt,
        })
    }
}

/// Interactive diurnal factor in roughly `[-0.6, 1.0]`: afternoon peak
/// around 14:00, deep night trough.
fn interactive_shape(hour: f64) -> f64 {
    (-(hour - 14.0).powi(2) / 22.0).exp() * 1.4 - 0.55
}

/// Night factor in `[0, 1]` peaking around 02:00 (batch jobs favour nights).
fn night_shape(hour: f64) -> f64 {
    let d = (hour - 2.0).abs().min(24.0 - (hour - 2.0).abs());
    (-d * d / 18.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn month() -> SlotClock {
        SlotClock::icdcs13_month()
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DemandModel::icdcs13();
        assert_eq!(
            m.generate(&month(), 1).unwrap(),
            m.generate(&month(), 1).unwrap()
        );
        assert_ne!(
            m.generate(&month(), 1).unwrap(),
            m.generate(&month(), 2).unwrap()
        );
    }

    #[test]
    fn peaks_clipped_at_pgrid() {
        let m = DemandModel::icdcs13();
        let t = m.generate(&month(), 3).unwrap();
        for i in 0..744 {
            let total = t.delay_sensitive[i] + t.delay_tolerant[i];
            assert!(total.mwh() <= 2.0 + 1e-9, "slot {i}: {total}");
        }
    }

    #[test]
    fn ddt_capped_per_slot() {
        let m = DemandModel::icdcs13().with_batch(50.0, Energy::from_mwh(1.0));
        let t = m.generate(&month(), 4).unwrap();
        for e in &t.delay_tolerant {
            assert!(e.mwh() <= 0.8 + 1e-9);
        }
    }

    #[test]
    fn interactive_diurnal_pattern_visible() {
        let m = DemandModel::icdcs13().with_interactive_noise(0.0);
        let t = m.generate(&month(), 5).unwrap();
        // Average 14:00 load exceeds average 04:00 load across weekdays.
        let mut peak = 0.0;
        let mut trough = 0.0;
        let mut days = 0.0;
        for day in 0..31 {
            if matches!(day % 7, 5 | 6) {
                continue;
            }
            peak += t.delay_sensitive[day * 24 + 14].mwh();
            trough += t.delay_sensitive[day * 24 + 4].mwh();
            days += 1.0;
        }
        assert!(
            peak / days > 1.3 * (trough / days),
            "peak {peak} trough {trough}"
        );
    }

    #[test]
    fn weekends_are_lighter() {
        let m = DemandModel::icdcs13().with_interactive_noise(0.0);
        let t = m.generate(&month(), 6).unwrap();
        // Compare the same hour on day 0 (weekday) and day 5 (weekend).
        let wd = t.delay_sensitive[14].mwh();
        let we = t.delay_sensitive[5 * 24 + 14].mwh();
        assert!(we < wd, "weekend {we} >= weekday {wd}");
    }

    #[test]
    fn batch_is_bursty() {
        let m = DemandModel::icdcs13();
        let t = m.generate(&month(), 7).unwrap();
        let stats = crate::SeriesStats::from_values(t.delay_tolerant.iter().map(|e| e.mwh()));
        assert!(
            stats.coefficient_of_variation() > 0.4,
            "cv too small: {stats}"
        );
        // Some slots have zero batch arrivals.
        assert!(t.delay_tolerant.iter().any(|e| e.mwh() == 0.0));
    }

    #[test]
    fn rejects_bad_parameters() {
        let c = month();
        assert!(DemandModel::icdcs13()
            .with_interactive_amplitude(1.5)
            .generate(&c, 0)
            .is_err());
        assert!(DemandModel::icdcs13()
            .with_grid_cap(Power::ZERO)
            .generate(&c, 0)
            .is_err());
        assert!(DemandModel::icdcs13()
            .with_batch(-1.0, Energy::from_mwh(0.1))
            .generate(&c, 0)
            .is_err());
        assert!(DemandModel::icdcs13()
            .with_ddt_max(Energy::from_mwh(-0.1))
            .generate(&c, 0)
            .is_err());
        assert!(DemandModel::icdcs13()
            .with_interactive_base(Power::from_mw(f64::NAN))
            .generate(&c, 0)
            .is_err());
    }

    #[test]
    fn accessors() {
        let m = DemandModel::icdcs13();
        assert_eq!(m.ddt_max(), Energy::from_mwh(0.8));
        assert_eq!(m.grid_cap(), Power::from_mw(2.0));
    }

    #[test]
    fn night_shape_wraps_midnight() {
        assert!(night_shape(2.0) > 0.99);
        assert!(night_shape(23.0) > night_shape(12.0));
        assert!(night_shape(14.0) < 0.01);
    }
}
