use dpss_units::{Price, SlotClock};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::randutil::{subseed, Ar1};
use crate::TraceError;

/// The pair of market price series consumed by a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTraces {
    /// Long-term-ahead market price `p_lt(t)`, one entry per coarse frame.
    pub long_term: Vec<Price>,
    /// Real-time market price `p_rt(τ)`, one entry per fine slot.
    pub real_time: Vec<Price>,
}

/// Synthetic two-timescale electricity price model.
///
/// Substitutes for the paper's NYISO traces (central U.S., January 2012).
/// The real-time series has a diurnal double-peak shape (morning and
/// evening), AR(1) noise and occasional spikes; the long-term series is an
/// AR(1) around the base level. Construction guarantees the structural
/// property the algorithm exploits (§II-B2): the real-time price is more
/// expensive *on average* than the long-term price (`E[p_rt] > E[p_lt]`),
/// and both are capped at `Pmax`.
///
/// # Examples
///
/// ```
/// use dpss_traces::PriceModel;
/// use dpss_units::SlotClock;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::icdcs13_month();
/// let prices = PriceModel::icdcs13().generate(&clock, 11)?;
/// assert_eq!(prices.long_term.len(), 31);
/// assert_eq!(prices.real_time.len(), 744);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PriceModel {
    base: Price,
    daily_amplitude: f64,
    lt_noise_std: f64,
    rt_noise_std: f64,
    rt_markup: f64,
    spike_probability: f64,
    spike_scale: f64,
    cap: Price,
    floor: Price,
}

impl PriceModel {
    /// Paper-like defaults: ~$35/MWh base, real-time ~35% above long-term
    /// on average (and rarely below it, as in the NYISO data the paper
    /// uses), `Pmax = $100/MWh` cap.
    #[must_use]
    pub fn icdcs13() -> Self {
        PriceModel {
            base: Price::from_dollars_per_mwh(35.0),
            daily_amplitude: 0.3,
            lt_noise_std: 0.10,
            rt_noise_std: 0.12,
            rt_markup: 1.35,
            spike_probability: 0.04,
            spike_scale: 40.0,
            cap: Price::from_dollars_per_mwh(100.0),
            floor: Price::ZERO,
        }
    }

    /// Sets the base price level.
    #[must_use]
    pub fn with_base(mut self, base: Price) -> Self {
        self.base = base;
        self
    }

    /// Sets the mean multiplicative markup of real-time over long-term
    /// (`> 1` per §II-B2).
    #[must_use]
    pub fn with_rt_markup(mut self, markup: f64) -> Self {
        self.rt_markup = markup;
        self
    }

    /// Sets the price cap `Pmax` (both markets are capped, §II-A1).
    #[must_use]
    pub fn with_cap(mut self, cap: Price) -> Self {
        self.cap = cap;
        self
    }

    /// Sets the diurnal swing as a fraction of base.
    #[must_use]
    pub fn with_daily_amplitude(mut self, amplitude: f64) -> Self {
        self.daily_amplitude = amplitude;
        self
    }

    /// Sets AR(1) noise levels (fraction of base) for the two markets.
    #[must_use]
    pub fn with_noise(mut self, lt_std: f64, rt_std: f64) -> Self {
        self.lt_noise_std = lt_std;
        self.rt_noise_std = rt_std;
        self
    }

    /// Sets real-time spike behaviour: per-slot probability and mean spike
    /// size in $/MWh.
    #[must_use]
    pub fn with_spikes(mut self, probability: f64, scale: f64) -> Self {
        self.spike_probability = probability;
        self.spike_scale = scale;
        self
    }

    /// The price cap `Pmax`.
    #[must_use]
    pub fn cap(&self) -> Price {
        self.cap
    }

    fn validate(&self) -> Result<(), TraceError> {
        if !(self.base.is_finite() && self.base.dollars_per_mwh() >= 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "base price",
                requirement: "must be finite and non-negative",
            });
        }
        if self.rt_markup < 1.0 || !self.rt_markup.is_finite() {
            return Err(TraceError::InvalidParameter {
                what: "rt_markup",
                requirement: "must be >= 1 (E[p_rt] > E[p_lt], paper §II-B2)",
            });
        }
        if !(0.0..=1.0).contains(&self.spike_probability) {
            return Err(TraceError::InvalidParameter {
                what: "spike_probability",
                requirement: "must be in [0, 1]",
            });
        }
        if self.cap < self.floor || !self.cap.is_finite() {
            return Err(TraceError::InvalidParameter {
                what: "cap",
                requirement: "must be finite and at least the floor",
            });
        }
        for (v, what) in [
            (self.daily_amplitude, "daily_amplitude"),
            (self.lt_noise_std, "lt_noise_std"),
            (self.rt_noise_std, "rt_noise_std"),
            (self.spike_scale, "spike_scale"),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(TraceError::InvalidParameter {
                    what,
                    requirement: "must be finite and non-negative",
                });
            }
        }
        Ok(())
    }

    /// Generates both market series for the whole calendar.
    ///
    /// Deterministic in `(self, clock, seed)`.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidParameter`] if the model is misconfigured.
    pub fn generate(&self, clock: &SlotClock, seed: u64) -> Result<PriceTraces, TraceError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(subseed(seed, 0x981C_0003));
        let base = self.base.dollars_per_mwh();

        // Long-term-ahead market: AR(1) around base, one value per frame.
        let mut lt_ar = Ar1::new(0.6, 1.0);
        let long_term: Vec<Price> = (0..clock.frames())
            .map(|_| {
                let p = base * (1.0 + self.lt_noise_std * lt_ar.next(&mut rng));
                Price::from_dollars_per_mwh(p).clamp(self.floor, self.cap)
            })
            .collect();

        // Real-time market: diurnal shape × noise × markup + spikes.
        let mut rt_ar = Ar1::new(0.8, 1.0);
        let real_time: Vec<Price> = clock
            .slots()
            .map(|id| {
                let hour = (id.index as f64 * clock.slot_hours()) % 24.0;
                let shape = 1.0 + self.daily_amplitude * diurnal_shape(hour);
                let noise = 1.0 + self.rt_noise_std * rt_ar.next(&mut rng);
                let mut p = base * self.rt_markup * shape * noise.max(0.1);
                if rng.gen::<f64>() < self.spike_probability {
                    p += crate::randutil::exponential(&mut rng, self.spike_scale);
                }
                Price::from_dollars_per_mwh(p).clamp(self.floor, self.cap)
            })
            .collect();

        Ok(PriceTraces {
            long_term,
            real_time,
        })
    }
}

/// Double-peak diurnal factor in roughly `[-0.5, 1.0]`: morning peak around
/// 09:00, a stronger evening peak around 19:00, night-time dip.
fn diurnal_shape(hour: f64) -> f64 {
    let morning = 0.7 * (-(hour - 9.0).powi(2) / 8.0).exp();
    let evening = (-(hour - 19.0).powi(2) / 10.0).exp();
    morning + evening - 0.45
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let m = PriceModel::icdcs13();
        let clock = SlotClock::icdcs13_month();
        assert_eq!(
            m.generate(&clock, 1).unwrap(),
            m.generate(&clock, 1).unwrap()
        );
        assert_ne!(
            m.generate(&clock, 1).unwrap(),
            m.generate(&clock, 2).unwrap()
        );
    }

    #[test]
    fn rt_mean_exceeds_lt_mean() {
        // The structural market property of §II-B2 must hold for a range of
        // seeds, not just one lucky draw.
        let m = PriceModel::icdcs13();
        let clock = SlotClock::icdcs13_month();
        for seed in 0..10 {
            let p = m.generate(&clock, seed).unwrap();
            let lt_mean: f64 = p.long_term.iter().map(|x| x.dollars_per_mwh()).sum::<f64>()
                / p.long_term.len() as f64;
            let rt_mean: f64 = p.real_time.iter().map(|x| x.dollars_per_mwh()).sum::<f64>()
                / p.real_time.len() as f64;
            assert!(
                rt_mean > lt_mean,
                "seed {seed}: rt {rt_mean} <= lt {lt_mean}"
            );
        }
    }

    #[test]
    fn prices_respect_cap_and_floor() {
        let m = PriceModel::icdcs13().with_spikes(0.5, 500.0);
        let clock = SlotClock::icdcs13_month();
        let p = m.generate(&clock, 3).unwrap();
        for x in p.real_time.iter().chain(p.long_term.iter()) {
            assert!(x.dollars_per_mwh() >= 0.0);
            assert!(x.dollars_per_mwh() <= 100.0 + 1e-12);
        }
    }

    #[test]
    fn diurnal_shape_has_two_peaks_and_night_dip() {
        assert!(diurnal_shape(9.0) > diurnal_shape(3.0));
        assert!(diurnal_shape(19.0) > diurnal_shape(14.0));
        assert!(diurnal_shape(3.0) < 0.0, "night dips below the mean");
        assert!(diurnal_shape(19.0) > 0.4);
    }

    #[test]
    fn real_time_series_varies_over_the_day() {
        let m = PriceModel::icdcs13();
        let clock = SlotClock::icdcs13_month();
        let p = m.generate(&clock, 4).unwrap();
        let stats =
            crate::SeriesStats::from_values(p.real_time.iter().map(|x| x.dollars_per_mwh()));
        assert!(stats.coefficient_of_variation() > 0.08, "cv {}", stats.std);
    }

    #[test]
    fn rejects_bad_parameters() {
        let clock = SlotClock::icdcs13_month();
        assert!(PriceModel::icdcs13()
            .with_rt_markup(0.8)
            .generate(&clock, 0)
            .is_err());
        assert!(PriceModel::icdcs13()
            .with_spikes(1.5, 10.0)
            .generate(&clock, 0)
            .is_err());
        assert!(PriceModel::icdcs13()
            .with_cap(Price::from_dollars_per_mwh(-5.0))
            .generate(&clock, 0)
            .is_err());
        assert!(PriceModel::icdcs13()
            .with_noise(-0.1, 0.1)
            .generate(&clock, 0)
            .is_err());
        assert!(PriceModel::icdcs13()
            .with_base(Price::from_dollars_per_mwh(f64::INFINITY))
            .generate(&clock, 0)
            .is_err());
    }

    #[test]
    fn cap_accessor_reports_pmax() {
        assert_eq!(
            PriceModel::icdcs13().cap(),
            Price::from_dollars_per_mwh(100.0)
        );
    }
}
