use dpss_units::{Energy, Price};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::randutil::subseed;
use crate::{TraceError, TraceSet};

/// Uniform multiplicative observation-error model for the Fig. 9 robustness
/// experiment.
///
/// The paper injects "uniformly distributed ±50% errors" into the demand,
/// solar and price data the controller *observes*, while the physical plant
/// continues to run on the true traces (§VI-C). [`UniformError::perturb`]
/// produces the observed copy: every value is multiplied by an independent
/// `Uniform[1 − f, 1 + f]` factor and re-clamped to validity.
///
/// # Examples
///
/// ```
/// use dpss_traces::{paper_month_traces, UniformError};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let truth = paper_month_traces(42)?;
/// let observed = UniformError::new(0.5)?.perturb(&truth, 7)?;
/// assert_ne!(observed, truth);
/// assert_eq!(observed.clock, truth.clock);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformError {
    fraction: f64,
}

impl UniformError {
    /// Creates an error model with relative half-width `fraction` (e.g.
    /// `0.5` for the paper's ±50%).
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidParameter`] unless `fraction ∈ [0, 1]`.
    pub fn new(fraction: f64) -> Result<Self, TraceError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(TraceError::InvalidParameter {
                what: "error fraction",
                requirement: "must be in [0, 1]",
            });
        }
        Ok(UniformError { fraction })
    }

    /// The relative half-width.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Returns the *observed* copy of `truth`: demand, renewable and price
    /// series independently perturbed. Deterministic in `(self, truth,
    /// seed)`.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceSet`] validation (cannot fail for valid input, as
    /// perturbed values are clamped non-negative).
    pub fn perturb(&self, truth: &TraceSet, seed: u64) -> Result<TraceSet, TraceError> {
        let mut rng = StdRng::seed_from_u64(subseed(seed, 0xE88E_0005));
        let f = self.fraction;
        let mut factor = move |rng: &mut StdRng| 1.0 + f * (2.0 * rng.gen::<f64>() - 1.0);

        let perturb_energy =
            |xs: &[Energy], rng: &mut StdRng, factor: &mut dyn FnMut(&mut StdRng) -> f64| {
                xs.iter()
                    .map(|e| Energy::from_mwh((e.mwh() * factor(rng)).max(0.0)))
                    .collect::<Vec<_>>()
            };
        let demand_ds = perturb_energy(&truth.demand_ds, &mut rng, &mut factor);
        let demand_dt = perturb_energy(&truth.demand_dt, &mut rng, &mut factor);
        let renewable = perturb_energy(&truth.renewable, &mut rng, &mut factor);
        let price_lt = truth
            .price_lt
            .iter()
            .map(|p| Price::from_dollars_per_mwh((p.dollars_per_mwh() * factor(&mut rng)).max(0.0)))
            .collect();
        let price_rt = truth
            .price_rt
            .iter()
            .map(|p| Price::from_dollars_per_mwh((p.dollars_per_mwh() * factor(&mut rng)).max(0.0)))
            .collect();
        TraceSet::new(
            truth.clock,
            demand_ds,
            demand_dt,
            renewable,
            price_lt,
            price_rt,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_month_traces;

    #[test]
    fn rejects_out_of_range_fraction() {
        assert!(UniformError::new(-0.1).is_err());
        assert!(UniformError::new(1.1).is_err());
        assert!(UniformError::new(0.0).is_ok());
        assert!(UniformError::new(1.0).is_ok());
        assert_eq!(UniformError::new(0.5).unwrap().fraction(), 0.5);
    }

    #[test]
    fn zero_fraction_is_identity() {
        let truth = paper_month_traces(1).unwrap();
        let observed = UniformError::new(0.0).unwrap().perturb(&truth, 2).unwrap();
        assert_eq!(observed, truth);
    }

    #[test]
    fn errors_stay_within_band() {
        let truth = paper_month_traces(3).unwrap();
        let observed = UniformError::new(0.5).unwrap().perturb(&truth, 4).unwrap();
        for (t, o) in truth.demand_ds.iter().zip(&observed.demand_ds) {
            assert!(o.mwh() >= t.mwh() * 0.5 - 1e-12);
            assert!(o.mwh() <= t.mwh() * 1.5 + 1e-12);
        }
        for (t, o) in truth.price_rt.iter().zip(&observed.price_rt) {
            assert!(o.dollars_per_mwh() >= t.dollars_per_mwh() * 0.5 - 1e-12);
            assert!(o.dollars_per_mwh() <= t.dollars_per_mwh() * 1.5 + 1e-12);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let truth = paper_month_traces(5).unwrap();
        let e = UniformError::new(0.3).unwrap();
        assert_eq!(e.perturb(&truth, 6).unwrap(), e.perturb(&truth, 6).unwrap());
        assert_ne!(e.perturb(&truth, 6).unwrap(), e.perturb(&truth, 7).unwrap());
    }

    #[test]
    fn observed_copy_is_unbiased_in_aggregate() {
        // Multiplicative Uniform[0.5, 1.5] noise keeps totals within a few
        // percent over 744 slots.
        let truth = paper_month_traces(8).unwrap();
        let observed = UniformError::new(0.5).unwrap().perturb(&truth, 9).unwrap();
        let ratio = observed.total_demand() / truth.total_demand();
        assert!((ratio - 1.0).abs() < 0.06, "aggregate drift {ratio}");
    }
}
