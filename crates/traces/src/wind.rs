use dpss_units::{Energy, Power, SlotClock};
use rand::{rngs::StdRng, SeedableRng};

use crate::randutil::{subseed, Ar1};
use crate::TraceError;

/// Synthetic wind-farm production model (extension beyond the paper's
/// solar-only evaluation; §I motivates both solar and wind).
///
/// Wind speed follows a mean-reverting AR(1) process around a site mean and
/// is mapped through the standard turbine power curve: zero below cut-in,
/// cubic ramp between cut-in and rated speed, nameplate output up to
/// cut-out, and an emergency stop (zero) beyond cut-out.
///
/// # Examples
///
/// ```
/// use dpss_traces::WindModel;
/// use dpss_units::SlotClock;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::new(2, 24, 1.0)?;
/// let trace = WindModel::icdcs13().generate(&clock, 3)?;
/// assert_eq!(trace.len(), 48);
/// assert!(trace.iter().all(|e| e.mwh() >= 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindModel {
    capacity: Power,
    mean_speed: f64,
    speed_std: f64,
    persistence: f64,
    cut_in: f64,
    rated: f64,
    cut_out: f64,
}

impl WindModel {
    /// Defaults matching a mid-size onshore turbine: 1 MW nameplate,
    /// 7 m/s site mean, cut-in 3 m/s, rated 12 m/s, cut-out 25 m/s.
    #[must_use]
    pub fn icdcs13() -> Self {
        WindModel {
            capacity: Power::from_mw(1.0),
            mean_speed: 7.0,
            speed_std: 2.6,
            persistence: 0.92,
            cut_in: 3.0,
            rated: 12.0,
            cut_out: 25.0,
        }
    }

    /// Sets the nameplate capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: Power) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the wind-speed process: site mean and standard deviation (m/s)
    /// and AR(1) persistence in `[0, 1)`.
    #[must_use]
    pub fn with_speed_process(mut self, mean: f64, std: f64, persistence: f64) -> Self {
        self.mean_speed = mean;
        self.speed_std = std;
        self.persistence = persistence;
        self
    }

    /// Sets the turbine power-curve speeds (m/s): cut-in, rated, cut-out.
    #[must_use]
    pub fn with_power_curve(mut self, cut_in: f64, rated: f64, cut_out: f64) -> Self {
        self.cut_in = cut_in;
        self.rated = rated;
        self.cut_out = cut_out;
        self
    }

    /// Nameplate capacity.
    #[must_use]
    pub fn capacity(&self) -> Power {
        self.capacity
    }

    fn validate(&self) -> Result<(), TraceError> {
        if !(self.capacity.is_finite() && self.capacity.mw() >= 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "capacity",
                requirement: "must be finite and non-negative",
            });
        }
        let finite_nonneg = |x: f64| x.is_finite() && x >= 0.0;
        if !finite_nonneg(self.mean_speed) || !finite_nonneg(self.speed_std) {
            return Err(TraceError::InvalidParameter {
                what: "speed process",
                requirement: "mean and std must be finite and non-negative",
            });
        }
        if !(0.0..1.0).contains(&self.persistence) {
            return Err(TraceError::InvalidParameter {
                what: "persistence",
                requirement: "must be in [0, 1)",
            });
        }
        if !(0.0 <= self.cut_in && self.cut_in < self.rated && self.rated < self.cut_out) {
            return Err(TraceError::InvalidParameter {
                what: "power curve",
                requirement: "must satisfy 0 <= cut_in < rated < cut_out",
            });
        }
        Ok(())
    }

    /// Generates per-fine-slot production for the whole calendar.
    ///
    /// Deterministic in `(self, clock, seed)`.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidParameter`] if the model is misconfigured.
    pub fn generate(&self, clock: &SlotClock, seed: u64) -> Result<Vec<Energy>, TraceError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(subseed(seed, 0x817D_0002));
        let mut ar = Ar1::new(self.persistence, 1.0);
        let mut out = Vec::with_capacity(clock.total_slots());
        for _ in clock.slots() {
            let speed = (self.mean_speed + self.speed_std * ar.next(&mut rng)).max(0.0);
            let frac = self.power_fraction(speed);
            let mw = self.capacity.mw() * frac;
            out.push(Power::from_mw(mw).over_hours(clock.slot_hours()));
        }
        Ok(out)
    }

    /// Power output as a fraction of nameplate at wind `speed` (m/s).
    fn power_fraction(&self, speed: f64) -> f64 {
        if speed < self.cut_in || speed >= self.cut_out {
            0.0
        } else if speed >= self.rated {
            1.0
        } else {
            let num = speed.powi(3) - self.cut_in.powi(3);
            let den = self.rated.powi(3) - self.cut_in.powi(3);
            (num / den).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_curve_shape() {
        let m = WindModel::icdcs13();
        assert_eq!(m.power_fraction(0.0), 0.0);
        assert_eq!(m.power_fraction(2.9), 0.0);
        assert!(m.power_fraction(7.0) > 0.0 && m.power_fraction(7.0) < 1.0);
        assert_eq!(m.power_fraction(12.0), 1.0);
        assert_eq!(m.power_fraction(20.0), 1.0);
        assert_eq!(m.power_fraction(25.0), 0.0, "cut-out stops the turbine");
        // Monotone below rated speed.
        assert!(m.power_fraction(8.0) > m.power_fraction(5.0));
    }

    #[test]
    fn deterministic_and_bounded() {
        let m = WindModel::icdcs13();
        let clock = SlotClock::icdcs13_month();
        let a = m.generate(&clock, 1).unwrap();
        let b = m.generate(&clock, 1).unwrap();
        assert_eq!(a, b);
        for e in &a {
            assert!(e.mwh() >= 0.0 && e.mwh() <= 1.0 + 1e-12);
        }
        // The site produces a plausible capacity factor (10%..70%).
        let cf: f64 = a.iter().map(|e| e.mwh()).sum::<f64>() / a.len() as f64;
        assert!((0.1..0.7).contains(&cf), "capacity factor {cf}");
    }

    #[test]
    fn rejects_bad_parameters() {
        let clock = SlotClock::icdcs13_month();
        assert!(WindModel::icdcs13()
            .with_power_curve(5.0, 4.0, 25.0)
            .generate(&clock, 0)
            .is_err());
        assert!(WindModel::icdcs13()
            .with_speed_process(7.0, 2.0, 1.5)
            .generate(&clock, 0)
            .is_err());
        assert!(WindModel::icdcs13()
            .with_speed_process(-1.0, 2.0, 0.5)
            .generate(&clock, 0)
            .is_err());
        assert!(WindModel::icdcs13()
            .with_capacity(Power::from_mw(f64::NAN))
            .generate(&clock, 0)
            .is_err());
    }

    #[test]
    fn zero_capacity_produces_nothing() {
        let m = WindModel::icdcs13().with_capacity(Power::ZERO);
        let t = m.generate(&SlotClock::new(1, 24, 1.0).unwrap(), 2).unwrap();
        assert!(t.iter().all(|e| e.mwh() == 0.0));
    }
}
