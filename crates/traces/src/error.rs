use std::error::Error;
use std::fmt;

use dpss_units::UnitsError;

/// Error produced by trace generation, validation or (de)serialization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// A series has the wrong length for its calendar.
    LengthMismatch {
        /// Which series is inconsistent.
        series: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Actual number of entries.
        actual: usize,
    },
    /// A model parameter is out of its documented range.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// Human-readable constraint, e.g. `"must be in [0, 1]"`.
        requirement: &'static str,
    },
    /// A generated or parsed value is NaN/infinite/negative where it must
    /// not be.
    InvalidValue {
        /// Which series contains the bad value.
        series: &'static str,
        /// Fine-slot index of the bad value.
        slot: usize,
    },
    /// A CSV line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A scenario-pack variant index is out of range.
    UnknownVariant {
        /// The pack's registry name.
        pack: String,
        /// The requested variant index.
        index: usize,
        /// Number of variants the pack actually has.
        len: usize,
    },
    /// An invalid calendar was supplied.
    Units(UnitsError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::LengthMismatch {
                series,
                expected,
                actual,
            } => write!(
                f,
                "series {series} has {actual} entries, calendar expects {expected}"
            ),
            TraceError::InvalidParameter { what, requirement } => {
                write!(f, "parameter {what} {requirement}")
            }
            TraceError::InvalidValue { series, slot } => {
                write!(f, "series {series} has an invalid value at slot {slot}")
            }
            TraceError::Parse { line, reason } => {
                write!(f, "csv parse error at line {line}: {reason}")
            }
            TraceError::UnknownVariant { pack, index, len } => {
                write!(f, "pack {pack} has no variant {index} (only {len})")
            }
            TraceError::Units(e) => write!(f, "invalid calendar: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Units(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnitsError> for TraceError {
    fn from(e: UnitsError) -> Self {
        TraceError::Units(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = TraceError::LengthMismatch {
            series: "renewable",
            expected: 744,
            actual: 10,
        };
        let s = e.to_string();
        assert!(s.contains("renewable") && s.contains("744") && s.contains("10"));

        let e = TraceError::InvalidParameter {
            what: "cloud_persistence",
            requirement: "must be in [0, 1)",
        };
        assert!(e.to_string().contains("cloud_persistence"));

        let e = TraceError::Parse {
            line: 3,
            reason: "expected 7 fields".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn units_error_is_wrapped_with_source() {
        let e: TraceError = UnitsError::ZeroCount { what: "frames" }.into();
        assert!(e.to_string().contains("frames"));
        assert!(Error::source(&e).is_some());
    }
}
