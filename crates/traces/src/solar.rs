use dpss_units::{Energy, Power, SlotClock};
use rand::{rngs::StdRng, SeedableRng};

use crate::randutil::{gaussian, subseed, Ar1};
use crate::TraceError;

/// Synthetic solar-farm production model.
///
/// Substitutes for the paper's MIDC meteorological traces (central U.S.,
/// January 2012): a deterministic diurnal irradiance bell between sunrise
/// and sunset, attenuated by an AR(1) cloud-cover process (persistent
/// weather within a day) and a per-day brightness factor (clear vs overcast
/// days). The result has the properties SmartDPSS exploits and suffers
/// from: zero production at night, a noon peak, and hour-ahead
/// unpredictability on the order of the 22.2% forecast error the paper
/// cites (§IV-A).
///
/// # Examples
///
/// ```
/// use dpss_traces::SolarModel;
/// use dpss_units::{Power, SlotClock};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::new(3, 24, 1.0)?;
/// let trace = SolarModel::icdcs13().generate(&clock, 1)?;
/// // Night slots produce nothing; midday slots produce something.
/// assert_eq!(trace[0].mwh(), 0.0);
/// assert!(trace[12].mwh() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolarModel {
    capacity: Power,
    sunrise_hour: f64,
    sunset_hour: f64,
    bell_sharpness: f64,
    cloud_persistence: f64,
    cloud_severity: f64,
    day_scale_std: f64,
}

impl SolarModel {
    /// Paper-like defaults: 2.5 MW nameplate farm, January daylight
    /// (sunrise 07:30, sunset 17:15), persistent clouds.
    #[must_use]
    pub fn icdcs13() -> Self {
        SolarModel {
            capacity: Power::from_mw(2.5),
            sunrise_hour: 7.5,
            sunset_hour: 17.25,
            bell_sharpness: 1.2,
            cloud_persistence: 0.85,
            cloud_severity: 0.55,
            day_scale_std: 0.35,
        }
    }

    /// Summer variant of [`SolarModel::icdcs13`]: June daylight (05:30 to
    /// 20:45), lighter clouds. Useful for seasonal studies beyond the
    /// paper's January month.
    #[must_use]
    pub fn summer() -> Self {
        SolarModel {
            sunrise_hour: 5.5,
            sunset_hour: 20.75,
            cloud_severity: 0.35,
            ..SolarModel::icdcs13()
        }
    }

    /// Sets the nameplate capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: Power) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets sunrise/sunset hours (local time, `0.0..24.0`).
    #[must_use]
    pub fn with_daylight(mut self, sunrise_hour: f64, sunset_hour: f64) -> Self {
        self.sunrise_hour = sunrise_hour;
        self.sunset_hour = sunset_hour;
        self
    }

    /// Sets the AR(1) cloud process: `persistence ∈ [0, 1)` controls how
    /// slowly weather changes, `severity ≥ 0` how deep attenuation gets.
    #[must_use]
    pub fn with_clouds(mut self, persistence: f64, severity: f64) -> Self {
        self.cloud_persistence = persistence;
        self.cloud_severity = severity;
        self
    }

    /// Sets the log-scale standard deviation of the per-day brightness.
    #[must_use]
    pub fn with_day_variability(mut self, day_scale_std: f64) -> Self {
        self.day_scale_std = day_scale_std;
        self
    }

    /// Nameplate capacity.
    #[must_use]
    pub fn capacity(&self) -> Power {
        self.capacity
    }

    fn validate(&self) -> Result<(), TraceError> {
        if !(self.capacity.is_finite() && self.capacity.mw() >= 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "capacity",
                requirement: "must be finite and non-negative",
            });
        }
        if !(0.0..24.0).contains(&self.sunrise_hour)
            || !(0.0..=24.0).contains(&self.sunset_hour)
            || self.sunrise_hour >= self.sunset_hour
        {
            return Err(TraceError::InvalidParameter {
                what: "daylight hours",
                requirement: "must satisfy 0 <= sunrise < sunset <= 24",
            });
        }
        if !(0.0..1.0).contains(&self.cloud_persistence) {
            return Err(TraceError::InvalidParameter {
                what: "cloud_persistence",
                requirement: "must be in [0, 1)",
            });
        }
        if !(self.cloud_severity.is_finite() && self.cloud_severity >= 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "cloud_severity",
                requirement: "must be finite and non-negative",
            });
        }
        if !(self.day_scale_std.is_finite() && self.day_scale_std >= 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "day_scale_std",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(())
    }

    /// Generates per-fine-slot production for the whole calendar.
    ///
    /// Deterministic in `(self, clock, seed)`.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidParameter`] if the model is misconfigured.
    pub fn generate(&self, clock: &SlotClock, seed: u64) -> Result<Vec<Energy>, TraceError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(subseed(seed, 0x501A_0001));
        let mut clouds = Ar1::new(self.cloud_persistence, 1.0);
        let mut out = Vec::with_capacity(clock.total_slots());
        let mut day_scale = 1.0;
        let mut current_day = usize::MAX;
        for id in clock.slots() {
            let hour_abs = id.index as f64 * clock.slot_hours();
            let day = (hour_abs / 24.0) as usize;
            if day != current_day {
                current_day = day;
                // Lognormal day factor with unit mean.
                let z = gaussian(&mut rng);
                let s = self.day_scale_std;
                day_scale = (s * z - 0.5 * s * s).exp().min(1.6);
            }
            let hour = hour_abs % 24.0;
            let irradiance = self.irradiance_fraction(hour);
            let cloud = 1.0 - self.cloud_severity * clouds.next(&mut rng).abs();
            let cloud = cloud.clamp(0.05, 1.0);
            let mw = self.capacity.mw() * irradiance * cloud * day_scale;
            out.push(Power::from_mw(mw.max(0.0)).over_hours(clock.slot_hours()));
        }
        Ok(out)
    }

    /// Clear-sky irradiance as a fraction of nameplate at local `hour`.
    fn irradiance_fraction(&self, hour: f64) -> f64 {
        if hour < self.sunrise_hour || hour > self.sunset_hour {
            return 0.0;
        }
        let span = self.sunset_hour - self.sunrise_hour;
        let phase = (hour - self.sunrise_hour) / span;
        (std::f64::consts::PI * phase)
            .sin()
            .powf(self.bell_sharpness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn month_clock() -> SlotClock {
        SlotClock::icdcs13_month()
    }

    #[test]
    fn deterministic_given_seed() {
        let m = SolarModel::icdcs13();
        let a = m.generate(&month_clock(), 9).unwrap();
        let b = m.generate(&month_clock(), 9).unwrap();
        assert_eq!(a, b);
        let c = m.generate(&month_clock(), 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn night_is_dark_noon_is_bright() {
        let m = SolarModel::icdcs13();
        let t = m.generate(&month_clock(), 3).unwrap();
        for day in 0..31 {
            let base = day * 24;
            // Midnight through 6am and 6pm through 11pm are dark in January.
            for h in (0..7).chain(18..24) {
                assert_eq!(t[base + h].mwh(), 0.0, "day {day} hour {h}");
            }
        }
        // Noon across the month is productive on average.
        let noon_mean: f64 = (0..31).map(|d| t[d * 24 + 12].mwh()).sum::<f64>() / 31.0;
        assert!(noon_mean > 0.2, "noon mean {noon_mean}");
    }

    #[test]
    fn production_bounded_by_scaled_capacity() {
        let m = SolarModel::icdcs13();
        let t = m.generate(&month_clock(), 4).unwrap();
        // Day factor is capped at 1.6 and cloud/irradiance at 1.
        let cap = 2.5 * 1.6 + 1e-12;
        for e in &t {
            assert!(e.mwh() >= 0.0 && e.mwh() <= cap);
        }
    }

    #[test]
    fn intermittency_is_substantial() {
        // The coefficient of variation over daylight hours must be large
        // enough to exercise the uncertainty handling (>15%).
        let m = SolarModel::icdcs13();
        let t = m.generate(&month_clock(), 5).unwrap();
        let daylight: Vec<f64> = t.iter().map(|e| e.mwh()).filter(|&x| x > 0.0).collect();
        let stats = crate::SeriesStats::from_values(daylight.iter().copied());
        assert!(
            stats.coefficient_of_variation() > 0.15,
            "cv {}",
            stats.coefficient_of_variation()
        );
    }

    #[test]
    fn zero_capacity_produces_nothing() {
        let m = SolarModel::icdcs13().with_capacity(Power::ZERO);
        let t = m.generate(&month_clock(), 6).unwrap();
        assert!(t.iter().all(|e| e.mwh() == 0.0));
    }

    #[test]
    fn rejects_bad_parameters() {
        let clock = month_clock();
        assert!(SolarModel::icdcs13()
            .with_daylight(18.0, 6.0)
            .generate(&clock, 0)
            .is_err());
        assert!(SolarModel::icdcs13()
            .with_clouds(1.0, 0.5)
            .generate(&clock, 0)
            .is_err());
        assert!(SolarModel::icdcs13()
            .with_clouds(0.5, -1.0)
            .generate(&clock, 0)
            .is_err());
        assert!(SolarModel::icdcs13()
            .with_capacity(Power::from_mw(-1.0))
            .generate(&clock, 0)
            .is_err());
        assert!(SolarModel::icdcs13()
            .with_day_variability(f64::NAN)
            .generate(&clock, 0)
            .is_err());
    }

    #[test]
    fn summer_outproduces_winter() {
        let total = |m: &SolarModel| -> f64 {
            m.generate(&month_clock(), 11)
                .unwrap()
                .iter()
                .map(|e| e.mwh())
                .sum()
        };
        let winter = total(&SolarModel::icdcs13());
        let summer = total(&SolarModel::summer());
        assert!(summer > 1.4 * winter, "summer {summer} vs winter {winter}");
    }

    #[test]
    fn respects_custom_daylight_window() {
        let m = SolarModel::icdcs13().with_daylight(5.0, 21.0);
        let t = m.generate(&SlotClock::new(2, 24, 1.0).unwrap(), 8).unwrap();
        // Hour 6 now falls inside daylight.
        assert!(t[6].mwh() + t[30].mwh() > 0.0);
    }

    #[test]
    fn quarter_hour_slots_integrate_consistently() {
        // With 15-minute slots, per-slot energy is roughly a quarter of the
        // hourly energy at the same hour of day (same deterministic bell).
        let hourly = SolarModel::icdcs13()
            .with_clouds(0.0, 0.0)
            .with_day_variability(0.0);
        let t1 = hourly
            .generate(&SlotClock::new(1, 24, 1.0).unwrap(), 0)
            .unwrap();
        let t4 = hourly
            .generate(&SlotClock::new(1, 96, 0.25).unwrap(), 0)
            .unwrap();
        let daily_1: f64 = t1.iter().map(|e| e.mwh()).sum();
        let daily_4: f64 = t4.iter().map(|e| e.mwh()).sum();
        assert!(
            (daily_1 - daily_4).abs() / daily_1 < 0.05,
            "{daily_1} vs {daily_4}"
        );
    }
}
