//! Internal deterministic randomness helpers.
//!
//! `rand` 0.8 ships only uniform sampling without the `rand_distr` add-on;
//! the handful of distributions the generators need (gaussian, Poisson,
//! exponential) are small enough to implement here, keeping the dependency
//! footprint to the allowed list.

use rand::Rng;

/// Derives an independent sub-seed from a master seed and a component tag
/// (splitmix64 finalizer — full avalanche, so per-component streams are
/// decorrelated).
pub(crate) fn subseed(master: u64, tag: u64) -> u64 {
    splitmix64(master ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

use crate::seed::splitmix64;

/// Standard gaussian via Box–Muller (one value per call; simple and fast
/// enough for trace generation).
pub(crate) fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Poisson sample via Knuth's product method; adequate for the small rates
/// (λ ≲ 20) used by batch-arrival generation.
pub(crate) fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = 1.0;
    let mut count = 0u64;
    loop {
        product *= rng.gen::<f64>();
        if product <= limit {
            return count;
        }
        count += 1;
        if count > 10_000 {
            // Numerical guard for absurd λ; callers validate upstream.
            return count;
        }
    }
}

/// Exponential sample with the given mean (inverse-CDF method).
pub(crate) fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean >= 0.0, "mean must be non-negative");
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen::<f64>();
    -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
}

/// First-order autoregressive gaussian process holding its own state:
/// `x ← ρ·x + √(1−ρ²)·σ·ε`, stationary with variance σ².
#[derive(Debug, Clone)]
pub(crate) struct Ar1 {
    rho: f64,
    sigma: f64,
    state: f64,
}

impl Ar1 {
    pub(crate) fn new(rho: f64, sigma: f64) -> Self {
        debug_assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        Ar1 {
            rho,
            sigma,
            state: 0.0,
        }
    }

    pub(crate) fn next<R: Rng>(&mut self, rng: &mut R) -> f64 {
        let innovation = (1.0 - self.rho * self.rho).sqrt() * self.sigma * gaussian(rng);
        self.state = self.rho * self.state + innovation;
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn subseed_changes_with_tag_and_master() {
        assert_ne!(subseed(1, 0), subseed(1, 1));
        assert_ne!(subseed(1, 0), subseed(2, 0));
        assert_eq!(subseed(7, 3), subseed(7, 3), "deterministic");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(5);
        for &lambda in &[0.3, 2.0, 8.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.1 + lambda * 0.05,
                "lambda {lambda}, mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 40_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 2.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.5).abs() < 0.08, "mean {mean}");
        assert_eq!(exponential(&mut rng, 0.0), 0.0);
        assert!(exponential(&mut rng, 1.0) >= 0.0);
    }

    #[test]
    fn ar1_is_stationary_and_autocorrelated() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut ar = Ar1::new(0.8, 1.0);
        let n = 60_000;
        let xs: Vec<f64> = (0..n).map(|_| ar.next(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let lag1: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n as f64 - 1.0);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
        let rho_hat = lag1 / var;
        assert!((rho_hat - 0.8).abs() < 0.05, "rho {rho_hat}");
    }
}
