//! Synthetic trace substrate for the SmartDPSS reproduction.
//!
//! The paper's evaluation (§VI-A) is driven by one month of real-world
//! traces: MIDC solar meteorological data, NYISO electricity prices and a
//! Google cluster workload. None of those exact datasets can ship with this
//! repository, so this crate builds the *closest synthetic equivalents* that
//! exercise the same code paths (see `DESIGN.md` §4 for the substitution
//! rationale):
//!
//! * [`SolarModel`] — diurnal irradiance bell × AR(1) cloud attenuation ×
//!   day-to-day variability (January daylight hours by default);
//! * [`WindModel`] — AR(1) wind speed through a cut-in/rated/cut-out
//!   turbine power curve (the paper motivates wind; evaluation extension);
//! * [`PriceModel`] — two-timescale market prices with diurnal double-peak
//!   shape, AR(1) noise, occasional real-time spikes and a price cap
//!   `Pmax`; the real-time series is more expensive on average than the
//!   long-term series, as required by §II-B2;
//! * [`DemandModel`] — delay-sensitive interactive load (diurnal) plus
//!   delay-tolerant batch arrivals (compound Poisson), peaks clipped at the
//!   grid interconnect `Pgrid` exactly as the paper scales its traces;
//! * [`WorkloadModel`] — per-region request arrivals (diurnal bell with a
//!   seeded regional phase offset, AR(1) noise, Poisson flash crowds and
//!   a linear traffic surge) for the workload-routing extension;
//! * [`Scenario`] — one-stop generation of a consistent [`TraceSet`];
//! * [`ScenarioPack`] — named bundles of scenario variants (seasonal
//!   calendars, price-spike regimes, renewable droughts) with a
//!   deterministic per-variant and per-site seed schedule for
//!   multi-datacenter sweeps;
//! * [`scaling`] — the Fig. 8 penetration/variation sweeps and the Fig. 10
//!   system-expansion transform;
//! * [`UniformError`] — the Fig. 9 uniform ±x% observation-error injection.
//!
//! All generators are deterministic given a seed: the same `(model, clock,
//! seed)` triple always yields the same trace, which keeps every experiment
//! in the repository exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use dpss_traces::Scenario;
//! use dpss_units::SlotClock;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clock = SlotClock::icdcs13_month();
//! let traces = Scenario::icdcs13().generate(&clock, 42)?;
//! assert_eq!(traces.demand_ds.len(), clock.total_slots());
//! // Real-time energy is pricier than long-term on average (§II-B2).
//! assert!(traces.mean_rt_price() > traces.mean_lt_price());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod demand;
mod error;
mod error_injection;
mod pack;
mod price;
mod randutil;
pub mod scaling;
mod scenario;
pub mod seed;
mod solar;
mod stats;
mod trace;
mod wind;
mod workload;

pub use demand::{DemandModel, DemandTraces};
pub use error::TraceError;
pub use error_injection::UniformError;
pub use pack::ScenarioPack;
pub use price::{PriceModel, PriceTraces};
pub use scenario::{paper_ddt_max, paper_month_traces, Scenario};
pub use solar::SolarModel;
pub use stats::{lag1_autocorrelation, SeriesStats};
pub use trace::TraceSet;
pub use wind::WindModel;
pub use workload::WorkloadModel;
