//! Named bundles of [`Scenario`] variants — the input regimes the
//! multi-datacenter sweeps iterate over.
//!
//! A [`ScenarioPack`] is an ordered roster of labelled scenarios plus a
//! deterministic seed schedule: every variant derives its own seed from
//! the pack name and its index via the same splitmix64+FNV chain
//! `dpss-bench` uses for sweep cells, so extending a pack with new
//! variants never perturbs the traces of the existing ones, and two packs
//! with different names never share a stream even at the same master
//! seed.
//!
//! Five packs ship built in (see [`ScenarioPack::builtin`]):
//!
//! | pack | regime stressed |
//! |------|-----------------|
//! | `seasonal-calendar` | daylight length and cloud cover across the year |
//! | `price-spike` | real-time market spike frequency and size |
//! | `renewable-drought` | shrinking and darkening on-site generation |
//! | `flat-baseline` | structure removed — flat demand and/or flat prices |
//! | `traffic-wave` | request-arrival regimes — regional diurnal offsets, flash crowds, traffic surges |

use dpss_units::{Power, SlotClock};

use crate::seed::{fnv1a, splitmix64};
use crate::{
    DemandModel, PriceModel, Scenario, SolarModel, TraceError, TraceSet, WindModel, WorkloadModel,
};

/// An ordered, named roster of labelled [`Scenario`] variants with a
/// deterministic per-variant (and per-site) seed schedule.
///
/// # Examples
///
/// ```
/// use dpss_traces::ScenarioPack;
/// use dpss_units::SlotClock;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pack = ScenarioPack::builtin("price-spike").unwrap();
/// let clock = SlotClock::new(3, 24, 1.0).unwrap();
/// // Variant 0 at master seed 42, site 1 of a multi-site sweep:
/// let traces = pack.generate_site(&clock, 42, 0, 1)?;
/// traces.validate()?;
/// // Site 0 shares the market but sees its own demand realization.
/// let other = pack.generate_site(&clock, 42, 0, 0)?;
/// assert_eq!(traces.price_rt, other.price_rt);
/// assert_ne!(traces.demand_ds, other.demand_ds);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioPack {
    name: String,
    variants: Vec<(String, Scenario)>,
}

impl ScenarioPack {
    /// Creates an empty pack with the given registry name (the name salts
    /// every variant seed, so it is part of the pack's identity).
    #[must_use]
    pub fn new(name: &str) -> Self {
        ScenarioPack {
            name: name.to_owned(),
            variants: Vec::new(),
        }
    }

    /// Appends a labelled variant (builder style).
    #[must_use]
    pub fn with_variant(mut self, label: &str, scenario: Scenario) -> Self {
        self.variants.push((label.to_owned(), scenario));
        self
    }

    /// The pack's registry name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of variants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether the pack has no variants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// The variant labels, in pack order.
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        self.variants.iter().map(|(l, _)| l.as_str()).collect()
    }

    /// The labelled variants, in pack order.
    #[must_use]
    pub fn variants(&self) -> &[(String, Scenario)] {
        &self.variants
    }

    /// Variant `index` as `(label, scenario)`, or `None` past the end of
    /// the roster.
    #[must_use]
    pub fn variant(&self, index: usize) -> Option<(&str, &Scenario)> {
        self.variants
            .get(index)
            .map(|(label, scenario)| (label.as_str(), scenario))
    }

    /// Deterministic seed of variant `index` at `master`: a splitmix64
    /// chain over the master seed, the FNV-1a hash of the pack name and
    /// the variant index — the same derivation `dpss-bench` sweep cells
    /// use. Depends only on `(name, master, index)`, never on the other
    /// variants, so appending variants cannot shift existing seeds.
    #[must_use]
    pub fn variant_seed(&self, master: u64, index: usize) -> u64 {
        let z = splitmix64(master ^ fnv1a(&self.name));
        splitmix64(z ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Deterministic seed for site `site` of variant `index` — one more
    /// link on the [`variant_seed`](Self::variant_seed) chain, exactly as
    /// if `site` were a trailing sweep-axis coordinate. Site seeds drive
    /// the site-local series only; markets stay on the variant seed.
    #[must_use]
    pub fn site_seed(&self, master: u64, index: usize, site: usize) -> u64 {
        let z = self.variant_seed(master, index);
        splitmix64(z ^ (site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Generates variant `index`'s traces at its derived seed (the
    /// single-datacenter view of the pack).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownVariant`] if `index >= self.len()`,
    /// and propagates generator misconfiguration and validation errors.
    pub fn generate(
        &self,
        clock: &SlotClock,
        master: u64,
        index: usize,
    ) -> Result<TraceSet, TraceError> {
        let seed = self.variant_seed(master, index);
        let (_, scenario) = self.variants.get(index).ok_or(TraceError::UnknownVariant {
            pack: self.name.clone(),
            index,
            len: self.variants.len(),
        })?;
        scenario.generate(clock, seed)
    }

    /// Generates variant `index`'s traces for one site of a
    /// multi-datacenter sweep: demand and renewables run on the per-site
    /// seed, while the market price series runs on the *variant* seed —
    /// every site of a variant trades in the same market.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownVariant`] if `index >= self.len()`,
    /// and propagates generator misconfiguration and validation errors.
    pub fn generate_site(
        &self,
        clock: &SlotClock,
        master: u64,
        index: usize,
        site: usize,
    ) -> Result<TraceSet, TraceError> {
        let site_seed = self.site_seed(master, index, site);
        let market_seed = self.variant_seed(master, index);
        let (_, scenario) = self.variants.get(index).ok_or(TraceError::UnknownVariant {
            pack: self.name.clone(),
            index,
            len: self.variants.len(),
        })?;
        scenario.generate_with_market_seed(clock, site_seed, market_seed)
    }

    /// The names of the built-in packs, in registry order.
    #[must_use]
    pub fn builtin_names() -> &'static [&'static str] {
        &[
            "seasonal-calendar",
            "price-spike",
            "renewable-drought",
            "flat-baseline",
            "traffic-wave",
        ]
    }

    /// Looks a built-in pack up by name; `None` for unknown names.
    #[must_use]
    pub fn builtin(name: &str) -> Option<Self> {
        match name {
            "seasonal-calendar" => Some(Self::seasonal_calendar()),
            "price-spike" => Some(Self::price_spike()),
            "renewable-drought" => Some(Self::renewable_drought()),
            "flat-baseline" => Some(Self::flat_baseline()),
            "traffic-wave" => Some(Self::traffic_wave()),
            _ => None,
        }
    }

    /// `seasonal-calendar`: the paper's January month plus the other
    /// seasons — daylight window and cloud cover move through the year,
    /// and autumn adds a wind farm whose output ignores the sun entirely.
    /// Measured cost ordering (seed 42): winter most expensive, cost
    /// falling as daylight grows, autumn-windy cheapest — the wind farm's
    /// around-the-clock output beats even June daylight.
    #[must_use]
    pub fn seasonal_calendar() -> Self {
        ScenarioPack::new("seasonal-calendar")
            .with_variant("winter", Scenario::icdcs13())
            .with_variant(
                "spring",
                Scenario::icdcs13().with_solar(
                    SolarModel::icdcs13()
                        .with_daylight(6.5, 18.75)
                        .with_clouds(0.85, 0.45),
                ),
            )
            .with_variant(
                "summer",
                Scenario::icdcs13().with_solar(SolarModel::summer()),
            )
            .with_variant(
                "autumn-windy",
                Scenario::icdcs13()
                    .with_solar(SolarModel::icdcs13().with_daylight(7.0, 18.0))
                    .with_wind(WindModel::icdcs13().with_capacity(Power::from_mw(1.0))),
            )
    }

    /// `price-spike`: real-time spike frequency/size swept from a calm
    /// market to one in persistent stress (all capped at `Pmax`). This is
    /// the regime where the two-timescale purchase split earns its keep:
    /// calm is cheapest and spikier regimes cost more, but the hedge
    /// flattens the worst case — under `stressed`, SmartDPSS all but
    /// abandons the real-time market, so cost lands near `paper` rather
    /// than growing with the spike rate.
    #[must_use]
    pub fn price_spike() -> Self {
        ScenarioPack::new("price-spike")
            .with_variant(
                "calm",
                Scenario::icdcs13().with_price(PriceModel::icdcs13().with_spikes(0.0, 0.0)),
            )
            .with_variant("paper", Scenario::icdcs13())
            .with_variant(
                "spiky",
                Scenario::icdcs13().with_price(PriceModel::icdcs13().with_spikes(0.12, 60.0)),
            )
            .with_variant(
                "stressed",
                Scenario::icdcs13().with_price(
                    PriceModel::icdcs13()
                        .with_spikes(0.25, 90.0)
                        .with_noise(0.10, 0.20),
                ),
            )
    }

    /// `renewable-drought`: on-site generation shrinking and darkening,
    /// down to a near-dark month. Stresses how gracefully cost degrades as
    /// the renewable subsidy disappears; expected cost ordering: paper
    /// cheapest, near-dark most expensive.
    #[must_use]
    pub fn renewable_drought() -> Self {
        ScenarioPack::new("renewable-drought")
            .with_variant("paper", Scenario::icdcs13())
            .with_variant(
                "dim",
                Scenario::icdcs13().with_solar(
                    SolarModel::icdcs13()
                        .with_capacity(Power::from_mw(1.5))
                        .with_clouds(0.9, 0.7),
                ),
            )
            .with_variant(
                "drought",
                Scenario::icdcs13().with_solar(
                    SolarModel::icdcs13()
                        .with_capacity(Power::from_mw(0.8))
                        .with_clouds(0.92, 0.8)
                        .with_day_variability(0.5),
                ),
            )
            .with_variant(
                "near-dark",
                Scenario::icdcs13().with_solar(
                    SolarModel::icdcs13()
                        .with_capacity(Power::from_mw(0.25))
                        .with_clouds(0.95, 0.85),
                ),
            )
    }

    /// `flat-baseline`: temporal structure removed one dimension at a
    /// time — flat interactive demand, spikeless flat prices, then both.
    /// A sanity regime: with no price structure to arbitrage, SmartDPSS's
    /// advantage over Impatient should shrink toward zero.
    #[must_use]
    pub fn flat_baseline() -> Self {
        let flat_demand = DemandModel::icdcs13()
            .with_interactive_amplitude(0.0)
            .with_interactive_noise(0.02);
        let flat_price = PriceModel::icdcs13()
            .with_daily_amplitude(0.0)
            .with_noise(0.02, 0.02)
            .with_spikes(0.0, 0.0);
        ScenarioPack::new("flat-baseline")
            .with_variant("paper", Scenario::icdcs13())
            .with_variant(
                "flat-demand",
                Scenario::icdcs13().with_demand(flat_demand.clone()),
            )
            .with_variant(
                "flat-prices",
                Scenario::icdcs13().with_price(flat_price.clone()),
            )
            .with_variant(
                "flat-both",
                Scenario::icdcs13()
                    .with_demand(flat_demand)
                    .with_price(flat_price),
            )
    }

    /// `traffic-wave`: the paper's energy-side inputs with a request
    /// stream layered on top, swept through arrival regimes — a steady
    /// diurnal baseline, region-offset diurnals (sites peak at different
    /// wall-clock hours, so one region's trough can host another's peak),
    /// flash crowds (short multiplicative bursts) and a month-long
    /// traffic surge. The regimes where workload routing earns its keep:
    /// deferrable work migrates toward sites with forecast curtailment
    /// instead of shipping energy through lossy links.
    #[must_use]
    pub fn traffic_wave() -> Self {
        ScenarioPack::new("traffic-wave")
            .with_variant(
                "steady",
                Scenario::icdcs13().with_workload(WorkloadModel::icdcs13()),
            )
            .with_variant(
                "offset-diurnal",
                Scenario::icdcs13().with_workload(
                    WorkloadModel::icdcs13()
                        .with_diurnal_amplitude(0.6)
                        .with_offset_spread(24.0),
                ),
            )
            .with_variant(
                "flash-crowd",
                Scenario::icdcs13().with_workload(
                    WorkloadModel::icdcs13()
                        .with_offset_spread(12.0)
                        .with_flash_crowds(0.6, 5.0, 3),
                ),
            )
            .with_variant(
                "surge",
                Scenario::icdcs13().with_workload(
                    WorkloadModel::icdcs13()
                        .with_surge_ramp(1.0)
                        .with_flash_crowds(0.2, 3.0, 3),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpss_units::Energy;

    #[test]
    fn builtin_registry_is_consistent() {
        for &name in ScenarioPack::builtin_names() {
            let pack = ScenarioPack::builtin(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(pack.name(), name);
            assert!(!pack.is_empty(), "{name} has no variants");
            assert_eq!(pack.labels().len(), pack.len());
        }
        assert!(ScenarioPack::builtin("nonexistent").is_none());
    }

    #[test]
    fn every_builtin_variant_generates_valid_traces() {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        for &name in ScenarioPack::builtin_names() {
            let pack = ScenarioPack::builtin(name).unwrap();
            for i in 0..pack.len() {
                let t = pack
                    .generate(&clock, 42, i)
                    .unwrap_or_else(|e| panic!("{name}[{i}]: {e}"));
                t.validate().unwrap();
                assert!(t.total_demand() > Energy::ZERO, "{name}[{i}] has no demand");
            }
        }
    }

    #[test]
    fn out_of_range_variant_is_a_typed_error() {
        let clock = SlotClock::new(2, 24, 1.0).unwrap();
        let pack = ScenarioPack::price_spike();
        assert!(pack.variant(pack.len()).is_none());
        assert!(matches!(
            pack.generate(&clock, 42, pack.len()),
            Err(TraceError::UnknownVariant { index, len, .. }) if index == len
        ));
        assert!(matches!(
            pack.generate_site(&clock, 42, 99, 0),
            Err(TraceError::UnknownVariant { index: 99, .. })
        ));
    }

    #[test]
    fn variant_seeds_are_stable_under_extension() {
        // Appending variants — including the traffic regimes that carry a
        // workload stream — must never shift the seeds of the variants
        // already in the roster, for every builtin pack.
        for &name in ScenarioPack::builtin_names() {
            let base = ScenarioPack::builtin(name).unwrap();
            let grown = ScenarioPack::builtin(name)
                .unwrap()
                .with_variant("extra", Scenario::icdcs13())
                .with_variant(
                    "extra-traffic",
                    Scenario::icdcs13().with_workload(WorkloadModel::icdcs13()),
                );
            for i in 0..base.len() {
                assert_eq!(
                    base.variant_seed(42, i),
                    grown.variant_seed(42, i),
                    "{name}"
                );
                assert_eq!(
                    base.site_seed(42, i, 3),
                    grown.site_seed(42, i, 3),
                    "{name}"
                );
            }
        }
    }

    #[test]
    fn traffic_wave_variants_carry_arrivals_and_leave_energy_side_alone() {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let pack = ScenarioPack::traffic_wave();
        assert_eq!(
            pack.labels(),
            ["steady", "offset-diurnal", "flash-crowd", "surge"]
        );
        for i in 0..pack.len() {
            let t = pack.generate_site(&clock, 42, i, 1).unwrap();
            let arrivals = t.arrivals.as_ref().expect("traffic variant has arrivals");
            assert!(arrivals.iter().any(|a| a.mwh() > 0.0), "variant {i}");
        }
        // Packs without a workload stay arrival-free.
        let plain = ScenarioPack::price_spike()
            .generate_site(&clock, 42, 0, 1)
            .unwrap();
        assert_eq!(plain.arrivals, None);
    }

    #[test]
    fn seeds_are_salted_by_pack_name_master_and_index() {
        let a = ScenarioPack::new("a").with_variant("x", Scenario::icdcs13());
        let b = ScenarioPack::new("b").with_variant("x", Scenario::icdcs13());
        assert_ne!(a.variant_seed(42, 0), b.variant_seed(42, 0));
        assert_ne!(a.variant_seed(42, 0), a.variant_seed(43, 0));
        assert_ne!(a.variant_seed(42, 0), a.variant_seed(42, 1));
        assert_ne!(a.site_seed(42, 0, 0), a.site_seed(42, 0, 1));
    }

    #[test]
    fn sites_share_markets_but_not_local_series() {
        let clock = SlotClock::new(2, 24, 1.0).unwrap();
        let pack = ScenarioPack::seasonal_calendar();
        let s0 = pack.generate_site(&clock, 7, 1, 0).unwrap();
        let s1 = pack.generate_site(&clock, 7, 1, 1).unwrap();
        assert_eq!(s0.price_rt, s1.price_rt, "shared real-time market");
        assert_eq!(s0.price_lt, s1.price_lt, "shared long-term market");
        assert_ne!(s0.demand_ds, s1.demand_ds, "independent demand");
        assert_ne!(s0.renewable, s1.renewable, "independent renewables");
        // Markets match the single-site generation of the same variant.
        let single = pack.generate(&clock, 7, 1).unwrap();
        assert_eq!(s0.price_rt, single.price_rt);
    }

    #[test]
    fn generate_is_deterministic() {
        let clock = SlotClock::new(2, 24, 1.0).unwrap();
        let pack = ScenarioPack::renewable_drought();
        assert_eq!(
            pack.generate(&clock, 5, 2).unwrap(),
            pack.generate(&clock, 5, 2).unwrap()
        );
        assert_eq!(
            pack.generate_site(&clock, 5, 2, 4).unwrap(),
            pack.generate_site(&clock, 5, 2, 4).unwrap()
        );
    }

    #[test]
    fn drought_pack_actually_darkens() {
        let clock = SlotClock::new(5, 24, 1.0).unwrap();
        let pack = ScenarioPack::renewable_drought();
        let paper = pack.generate(&clock, 42, 0).unwrap().total_renewable();
        let dark = pack.generate(&clock, 42, 3).unwrap().total_renewable();
        assert!(
            dark < paper * 0.5,
            "near-dark ({dark}) must be well below paper ({paper})"
        );
    }
}
