use dpss_units::{Energy, Power, SlotClock};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::randutil::{poisson, subseed, Ar1};
use crate::TraceError;

/// Synthetic per-region request-arrival model — the *workload* side of the
/// geo-distributed routing extension.
///
/// Millions of users are aggregated into one deterministic request-rate
/// series, expressed as the IT energy required to serve the arriving work
/// (MWh per fine slot, the same unit the demand series use). The model is
/// a diurnal sine-of-day bell with a seeded regional phase offset (regions
/// in different time zones peak at different hours), AR(1) noise,
/// optional Poisson *flash crowds* (short multiplicative bursts) and an
/// optional linear *traffic surge* ramp across the horizon.
///
/// # Examples
///
/// ```
/// use dpss_traces::WorkloadModel;
/// use dpss_units::SlotClock;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::icdcs13_month();
/// let arrivals = WorkloadModel::icdcs13().generate(&clock, 42)?;
/// assert_eq!(arrivals.len(), 744);
/// assert!(arrivals.iter().all(|a| a.mwh() >= 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadModel {
    base: Power,
    diurnal_amplitude: f64,
    offset_spread_hours: f64,
    noise_std: f64,
    flash_rate_per_day: f64,
    flash_magnitude: f64,
    flash_duration_slots: usize,
    surge_ramp: f64,
    slot_cap: Energy,
}

impl WorkloadModel {
    /// Defaults sized against the paper's 2 MW site: ~0.3 MW of mean
    /// request-service load with a 45% diurnal swing, no flash crowds,
    /// no surge, no regional offset.
    #[must_use]
    pub fn icdcs13() -> Self {
        WorkloadModel {
            base: Power::from_mw(0.3),
            diurnal_amplitude: 0.45,
            offset_spread_hours: 0.0,
            noise_std: 0.06,
            flash_rate_per_day: 0.0,
            flash_magnitude: 4.0,
            flash_duration_slots: 3,
            surge_ramp: 0.0,
            slot_cap: Energy::from_mwh(1.5),
        }
    }

    /// Sets the mean request-service load.
    #[must_use]
    pub fn with_base(mut self, base: Power) -> Self {
        self.base = base;
        self
    }

    /// Sets the diurnal swing as a fraction of base (at most 1).
    #[must_use]
    pub fn with_diurnal_amplitude(mut self, amplitude: f64) -> Self {
        self.diurnal_amplitude = amplitude;
        self
    }

    /// Sets the regional phase-offset spread in hours: each generated
    /// stream draws one offset uniformly from `[0, spread)` and shifts
    /// its diurnal peak by it, so per-site seeds yield regions peaking
    /// at different wall-clock hours.
    #[must_use]
    pub fn with_offset_spread(mut self, hours: f64) -> Self {
        self.offset_spread_hours = hours;
        self
    }

    /// Sets the AR(1) noise level as a fraction of base.
    #[must_use]
    pub fn with_noise(mut self, noise_std: f64) -> Self {
        self.noise_std = noise_std;
        self
    }

    /// Sets the flash-crowd regime: Poisson event rate per day, peak
    /// magnitude as a multiple of base, and the burst's linear decay
    /// length in slots.
    #[must_use]
    pub fn with_flash_crowds(mut self, rate_per_day: f64, magnitude: f64, duration: usize) -> Self {
        self.flash_rate_per_day = rate_per_day;
        self.flash_magnitude = magnitude;
        self.flash_duration_slots = duration;
        self
    }

    /// Sets the traffic-surge ramp: arrivals grow linearly from 1× at the
    /// start of the horizon to `1 + ramp` at its end.
    #[must_use]
    pub fn with_surge_ramp(mut self, ramp: f64) -> Self {
        self.surge_ramp = ramp;
        self
    }

    /// Sets the per-slot arrival cap (admission-side clipping, the
    /// workload analogue of the demand model's `Pgrid` clip).
    #[must_use]
    pub fn with_slot_cap(mut self, cap: Energy) -> Self {
        self.slot_cap = cap;
        self
    }

    fn validate(&self) -> Result<(), TraceError> {
        if !(self.base.is_finite() && self.base.mw() >= 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "workload base",
                requirement: "must be finite and non-negative",
            });
        }
        for (v, what) in [
            (self.diurnal_amplitude, "workload diurnal_amplitude"),
            (self.offset_spread_hours, "workload offset_spread_hours"),
            (self.noise_std, "workload noise_std"),
            (self.flash_rate_per_day, "workload flash_rate_per_day"),
            (self.flash_magnitude, "workload flash_magnitude"),
            (self.surge_ramp, "workload surge_ramp"),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(TraceError::InvalidParameter {
                    what,
                    requirement: "must be finite and non-negative",
                });
            }
        }
        if self.diurnal_amplitude > 1.0 {
            return Err(TraceError::InvalidParameter {
                what: "workload diurnal_amplitude",
                requirement: "must be at most 1 (arrivals cannot go negative)",
            });
        }
        if self.offset_spread_hours > 24.0 {
            return Err(TraceError::InvalidParameter {
                what: "workload offset_spread_hours",
                requirement: "must be at most 24 (one diurnal period)",
            });
        }
        if self.flash_rate_per_day > 0.0 && self.flash_duration_slots == 0 {
            return Err(TraceError::InvalidParameter {
                what: "workload flash_duration_slots",
                requirement: "must be at least 1 when flash crowds are enabled",
            });
        }
        if !(self.slot_cap.is_finite() && self.slot_cap.mwh() > 0.0) {
            return Err(TraceError::InvalidParameter {
                what: "workload slot_cap",
                requirement: "must be finite and positive",
            });
        }
        Ok(())
    }

    /// Generates the per-slot arrival series for the whole calendar.
    /// Deterministic in `(self, clock, seed)`.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidParameter`] if the model is misconfigured.
    pub fn generate(&self, clock: &SlotClock, seed: u64) -> Result<Vec<Energy>, TraceError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(subseed(seed, 0x10AD_0005));
        let slot_h = clock.slot_hours();
        let total = clock.total_slots();

        // The regional time-zone offset is one draw per stream, so two
        // sites (two seeds) of the same model peak at different hours.
        let offset = rng.gen::<f64>() * self.offset_spread_hours;

        // Flash-crowd bursts: Poisson events per day, each starting at a
        // uniform slot of its day and decaying linearly over the burst
        // duration, expressed as an additive multiple-of-base series.
        let mut flash = vec![0.0f64; total];
        if self.flash_rate_per_day > 0.0 {
            let slots_per_day = (24.0 / slot_h).max(1.0) as usize;
            let days = total.div_ceil(slots_per_day);
            for day in 0..days {
                let events = poisson(&mut rng, self.flash_rate_per_day);
                for _ in 0..events {
                    let start =
                        day * slots_per_day + (rng.gen::<f64>() * slots_per_day as f64) as usize;
                    for k in 0..self.flash_duration_slots {
                        let Some(cell) = flash.get_mut(start + k) else {
                            break;
                        };
                        let decay = 1.0 - k as f64 / self.flash_duration_slots as f64;
                        *cell += self.flash_magnitude * decay;
                    }
                }
            }
        }

        let mut noise = Ar1::new(0.7, 1.0);
        let mut out = Vec::with_capacity(total);
        for id in clock.slots() {
            let hour = (id.index as f64 * slot_h - offset).rem_euclid(24.0);
            let shape = 1.0 + self.diurnal_amplitude * diurnal_shape(hour);
            let n = 1.0 + self.noise_std * noise.next(&mut rng);
            let surge = if total > 1 {
                1.0 + self.surge_ramp * id.index as f64 / (total - 1) as f64
            } else {
                1.0
            };
            let flash_add = flash.get(id.index).copied().unwrap_or(0.0);
            let mw = self.base.mw() * (shape * n.max(0.0) * surge + flash_add);
            let e = Power::from_mw(mw.max(0.0)).over_hours(slot_h);
            out.push(e.min(self.slot_cap));
        }
        Ok(out)
    }
}

/// Diurnal request factor in roughly `[-0.75, 1.0]`: evening peak around
/// 20:00 (consumer traffic), pre-dawn trough.
fn diurnal_shape(hour: f64) -> f64 {
    let d = (hour - 20.0).abs().min(24.0 - (hour - 20.0).abs());
    (-d * d / 30.0).exp() * 1.5 - 0.62
}

#[cfg(test)]
mod tests {
    use super::*;

    fn month() -> SlotClock {
        SlotClock::icdcs13_month()
    }

    #[test]
    fn deterministic_given_seed() {
        let m = WorkloadModel::icdcs13().with_flash_crowds(0.5, 5.0, 3);
        assert_eq!(
            m.generate(&month(), 1).unwrap(),
            m.generate(&month(), 1).unwrap()
        );
        assert_ne!(
            m.generate(&month(), 1).unwrap(),
            m.generate(&month(), 2).unwrap()
        );
    }

    #[test]
    fn arrivals_are_bounded_and_non_negative() {
        let m = WorkloadModel::icdcs13().with_flash_crowds(3.0, 10.0, 5);
        let xs = m.generate(&month(), 3).unwrap();
        assert_eq!(xs.len(), 744);
        for (i, x) in xs.iter().enumerate() {
            assert!(x.mwh() >= 0.0, "slot {i}: {x}");
            assert!(x.mwh() <= 1.5 + 1e-12, "slot {i}: {x}");
        }
    }

    #[test]
    fn diurnal_pattern_peaks_in_the_evening() {
        let m = WorkloadModel::icdcs13().with_noise(0.0);
        let xs = m.generate(&month(), 5).unwrap();
        let mut peak = 0.0;
        let mut trough = 0.0;
        for day in 0..31 {
            peak += xs[day * 24 + 20].mwh();
            trough += xs[day * 24 + 4].mwh();
        }
        assert!(peak > 1.5 * trough, "peak {peak} trough {trough}");
    }

    #[test]
    fn offset_spread_shifts_the_peak_per_seed() {
        let m = WorkloadModel::icdcs13()
            .with_noise(0.0)
            .with_offset_spread(24.0);
        // With a full-day spread, different seeds place the peak at
        // different hours: the argmax hour over a mean day must differ
        // for at least one seed pair.
        let peak_hour = |seed: u64| -> usize {
            let xs = m.generate(&month(), seed).unwrap();
            let mut by_hour = [0.0f64; 24];
            for (i, x) in xs.iter().enumerate() {
                by_hour[i % 24] += x.mwh();
            }
            (0..24)
                .max_by(|&a, &b| by_hour[a].total_cmp(&by_hour[b]))
                .unwrap()
        };
        let hours: Vec<usize> = (0..6).map(peak_hour).collect();
        assert!(
            hours.iter().any(|&h| h != hours[0]),
            "all seeds peaked at hour {hours:?}"
        );
    }

    #[test]
    fn flash_crowds_add_mass() {
        let calm = WorkloadModel::icdcs13().generate(&month(), 7).unwrap();
        let crowded = WorkloadModel::icdcs13()
            .with_flash_crowds(1.0, 5.0, 3)
            .generate(&month(), 7)
            .unwrap();
        let sum = |xs: &[Energy]| xs.iter().map(|e| e.mwh()).sum::<f64>();
        assert!(sum(&crowded) > sum(&calm) * 1.05, "flash crowds must show");
    }

    #[test]
    fn surge_ramps_up_over_the_horizon() {
        let m = WorkloadModel::icdcs13()
            .with_noise(0.0)
            .with_surge_ramp(1.0);
        let xs = m.generate(&month(), 9).unwrap();
        let first_week: f64 = xs[..168].iter().map(|e| e.mwh()).sum();
        let last_week: f64 = xs[744 - 168..].iter().map(|e| e.mwh()).sum();
        assert!(
            last_week > 1.5 * first_week,
            "surge must ramp: {first_week} -> {last_week}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let c = month();
        assert!(WorkloadModel::icdcs13()
            .with_diurnal_amplitude(1.5)
            .generate(&c, 0)
            .is_err());
        assert!(WorkloadModel::icdcs13()
            .with_offset_spread(25.0)
            .generate(&c, 0)
            .is_err());
        assert!(WorkloadModel::icdcs13()
            .with_flash_crowds(1.0, 2.0, 0)
            .generate(&c, 0)
            .is_err());
        assert!(WorkloadModel::icdcs13()
            .with_slot_cap(Energy::ZERO)
            .generate(&c, 0)
            .is_err());
        assert!(WorkloadModel::icdcs13()
            .with_base(Power::from_mw(f64::NAN))
            .generate(&c, 0)
            .is_err());
        assert!(WorkloadModel::icdcs13()
            .with_surge_ramp(-0.5)
            .generate(&c, 0)
            .is_err());
    }
}
