// Every series is length-validated against the calendar in `TraceSet::new`
// and kept private thereafter; slot and frame indices below come from the
// same `SlotClock` (its iterator, `frame_of`, or an explicit range check),
// so they are in bounds by the struct invariant.
// audit:allow-file(slice-index): series lengths are clock-validated at construction; slot/frame ids come from the same clock
#![allow(clippy::indexing_slicing)]

use dpss_units::{Energy, Price, SlotClock};
use serde::{Deserialize, Serialize};

use crate::{SeriesStats, TraceError};

/// A complete, calendar-aligned set of input traces for one simulation run.
///
/// Per-fine-slot series cover every `τ ∈ [0, K·T)`; the long-term price has
/// one entry per coarse frame (the long-term-ahead market clears once per
/// frame, §II-A1).
///
/// Invariants (enforced by [`TraceSet::new`] and preserved by all transforms
/// in this crate): all energy values are finite and non-negative, all prices
/// are finite and non-negative, and series lengths match the calendar.
///
/// # Examples
///
/// ```
/// use dpss_traces::Scenario;
/// use dpss_units::SlotClock;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::new(2, 24, 1.0)?;
/// let traces = Scenario::icdcs13().generate(&clock, 7)?;
/// let total = traces.total_demand();
/// assert!(total > dpss_units::Energy::ZERO);
/// assert!(traces.renewable_penetration() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    /// Two-timescale calendar the series are aligned to.
    pub clock: SlotClock,
    /// Delay-sensitive demand `d_ds(τ)` per fine slot.
    pub demand_ds: Vec<Energy>,
    /// Delay-tolerant demand `d_dt(τ)` per fine slot.
    pub demand_dt: Vec<Energy>,
    /// Renewable production `r(τ)` per fine slot.
    pub renewable: Vec<Energy>,
    /// Long-term-ahead market price `p_lt(t)`, one entry per coarse frame.
    pub price_lt: Vec<Price>,
    /// Real-time market price `p_rt(τ)` per fine slot.
    pub price_rt: Vec<Price>,
    /// Request arrivals `w(τ)` per fine slot (IT energy required to serve
    /// the arriving work), when the scenario models a workload stream.
    /// `None` for pure supply-side runs; absent from the CSV round-trip
    /// (which predates the request layer), so [`TraceSet::from_csv`]
    /// always yields `None`.
    #[serde(default)]
    pub arrivals: Option<Vec<Energy>>,
}

impl TraceSet {
    /// Validates series lengths and values against `clock` and assembles a
    /// trace set.
    ///
    /// # Errors
    ///
    /// [`TraceError::LengthMismatch`] if any series disagrees with the
    /// calendar, [`TraceError::InvalidValue`] if a value is NaN, infinite
    /// or negative.
    pub fn new(
        clock: SlotClock,
        demand_ds: Vec<Energy>,
        demand_dt: Vec<Energy>,
        renewable: Vec<Energy>,
        price_lt: Vec<Price>,
        price_rt: Vec<Price>,
    ) -> Result<Self, TraceError> {
        let ts = TraceSet {
            clock,
            demand_ds,
            demand_dt,
            renewable,
            price_lt,
            price_rt,
            arrivals: None,
        };
        ts.validate()?;
        Ok(ts)
    }

    /// Attaches a per-slot request-arrival series (builder style).
    ///
    /// # Errors
    ///
    /// Propagates [`TraceSet::validate`] errors if the series has the
    /// wrong length or non-finite/negative values.
    pub fn with_arrivals(mut self, arrivals: Vec<Energy>) -> Result<Self, TraceError> {
        self.arrivals = Some(arrivals);
        self.validate()?;
        Ok(self)
    }

    /// Re-checks all invariants (used by transforms in [`crate::scaling`]).
    pub fn validate(&self) -> Result<(), TraceError> {
        let slots = self.clock.total_slots();
        let frames = self.clock.frames();
        let check_len = |series: &'static str, len: usize, expected: usize| {
            if len == expected {
                Ok(())
            } else {
                Err(TraceError::LengthMismatch {
                    series,
                    expected,
                    actual: len,
                })
            }
        };
        check_len("demand_ds", self.demand_ds.len(), slots)?;
        check_len("demand_dt", self.demand_dt.len(), slots)?;
        check_len("renewable", self.renewable.len(), slots)?;
        check_len("price_lt", self.price_lt.len(), frames)?;
        check_len("price_rt", self.price_rt.len(), slots)?;

        let check_energy = |series: &'static str, xs: &[Energy]| {
            for (i, x) in xs.iter().enumerate() {
                if !x.is_finite() || x.mwh() < 0.0 {
                    return Err(TraceError::InvalidValue { series, slot: i });
                }
            }
            Ok(())
        };
        if let Some(arrivals) = &self.arrivals {
            check_len("arrivals", arrivals.len(), slots)?;
        }
        check_energy("demand_ds", &self.demand_ds)?;
        check_energy("demand_dt", &self.demand_dt)?;
        check_energy("renewable", &self.renewable)?;
        if let Some(arrivals) = &self.arrivals {
            check_energy("arrivals", arrivals)?;
        }
        let check_price = |series: &'static str, xs: &[Price]| {
            for (i, x) in xs.iter().enumerate() {
                if !x.is_finite() || x.dollars_per_mwh() < 0.0 {
                    return Err(TraceError::InvalidValue { series, slot: i });
                }
            }
            Ok(())
        };
        check_price("price_lt", &self.price_lt)?;
        check_price("price_rt", &self.price_rt)?;
        Ok(())
    }

    /// Total demand `d(τ) = d_ds(τ) + d_dt(τ)` at fine slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn demand_total(&self, slot: usize) -> Energy {
        self.demand_ds[slot] + self.demand_dt[slot]
    }

    /// Long-term price for the frame containing `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn price_lt_at_slot(&self, slot: usize) -> Price {
        self.price_lt[self.clock.frame_of(slot)]
    }

    /// Sum of all demand over the horizon.
    #[must_use]
    pub fn total_demand(&self) -> Energy {
        self.demand_ds.iter().sum::<Energy>() + self.demand_dt.iter().sum::<Energy>()
    }

    /// Sum of all renewable production over the horizon.
    #[must_use]
    pub fn total_renewable(&self) -> Energy {
        self.renewable.iter().sum()
    }

    /// Renewable penetration: total renewable production divided by total
    /// demand (the x-axis of Fig. 8). Zero when there is no demand.
    #[must_use]
    pub fn renewable_penetration(&self) -> f64 {
        let d = self.total_demand();
        if d <= Energy::ZERO {
            0.0
        } else {
            self.total_renewable() / d
        }
    }

    /// Mean long-term price over frames.
    #[must_use]
    pub fn mean_lt_price(&self) -> Price {
        if self.price_lt.is_empty() {
            return Price::ZERO;
        }
        let sum: f64 = self.price_lt.iter().map(|p| p.dollars_per_mwh()).sum();
        Price::from_dollars_per_mwh(sum / self.price_lt.len() as f64)
    }

    /// Mean real-time price over fine slots.
    #[must_use]
    pub fn mean_rt_price(&self) -> Price {
        if self.price_rt.is_empty() {
            return Price::ZERO;
        }
        let sum: f64 = self.price_rt.iter().map(|p| p.dollars_per_mwh()).sum();
        Price::from_dollars_per_mwh(sum / self.price_rt.len() as f64)
    }

    /// Statistics of the *total* demand series (Fig. 8's variation metric).
    #[must_use]
    pub fn demand_stats(&self) -> SeriesStats {
        SeriesStats::from_values((0..self.clock.total_slots()).map(|s| self.demand_total(s).mwh()))
    }

    /// Statistics of the renewable series.
    #[must_use]
    pub fn renewable_stats(&self) -> SeriesStats {
        SeriesStats::from_values(self.renewable.iter().map(|e| e.mwh()))
    }

    /// Statistics of the real-time price series.
    #[must_use]
    pub fn rt_price_stats(&self) -> SeriesStats {
        SeriesStats::from_values(self.price_rt.iter().map(|p| p.dollars_per_mwh()))
    }

    /// Sum of all request arrivals over the horizon (zero when the
    /// scenario carries no workload stream).
    #[must_use]
    pub fn total_arrivals(&self) -> Energy {
        self.arrivals
            .as_deref()
            .map(|xs| xs.iter().sum())
            .unwrap_or(Energy::ZERO)
    }

    /// Statistics of the request-arrival series; `None` when the scenario
    /// carries no workload stream.
    #[must_use]
    pub fn arrival_stats(&self) -> Option<SeriesStats> {
        self.arrivals
            .as_deref()
            .map(|xs| SeriesStats::from_values(xs.iter().map(|e| e.mwh())))
    }

    /// Serializes all series to a CSV document (header + one row per fine
    /// slot; the frame-level long-term price is repeated on each row of its
    /// frame).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * self.clock.total_slots());
        out.push_str(
            "slot,frame,offset,demand_ds_mwh,demand_dt_mwh,renewable_mwh,price_lt,price_rt\n",
        );
        for id in self.clock.slots() {
            // `{}` on f64 is Rust's shortest round-trippable representation,
            // so `from_csv(to_csv(t)) == t` exactly.
            let row = format!(
                "{},{},{},{},{},{},{},{}\n",
                id.index,
                id.frame,
                id.offset,
                self.demand_ds[id.index].mwh(),
                self.demand_dt[id.index].mwh(),
                self.renewable[id.index].mwh(),
                self.price_lt[id.frame].dollars_per_mwh(),
                self.price_rt[id.index].dollars_per_mwh(),
            );
            out.push_str(&row);
        }
        out
    }

    /// Parses a CSV document produced by [`TraceSet::to_csv`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] on malformed rows, plus all [`TraceSet::new`]
    /// validation errors.
    pub fn from_csv(clock: SlotClock, csv: &str) -> Result<Self, TraceError> {
        let slots = clock.total_slots();
        let mut demand_ds = vec![Energy::ZERO; slots];
        let mut demand_dt = vec![Energy::ZERO; slots];
        let mut renewable = vec![Energy::ZERO; slots];
        let mut price_lt = vec![Price::ZERO; clock.frames()];
        let mut price_rt = vec![Price::ZERO; slots];
        let mut seen = vec![false; slots];

        for (lineno, line) in csv.lines().enumerate() {
            if lineno == 0 || line.trim().is_empty() {
                continue; // header / trailing newline
            }
            let fields: Vec<&str> = line.split(',').collect();
            let &[slot_s, _frame, _offset, ds_s, dt_s, rn_s, plt_s, prt_s] = fields.as_slice()
            else {
                return Err(TraceError::Parse {
                    line: lineno + 1,
                    reason: format!("expected 8 fields, found {}", fields.len()),
                });
            };
            let parse = |s: &str, what: &str| -> Result<f64, TraceError> {
                s.trim().parse::<f64>().map_err(|e| TraceError::Parse {
                    line: lineno + 1,
                    reason: format!("bad {what}: {e}"),
                })
            };
            let slot = parse(slot_s, "slot")? as usize;
            if slot >= slots {
                return Err(TraceError::Parse {
                    line: lineno + 1,
                    reason: format!("slot {slot} out of range for calendar"),
                });
            }
            demand_ds[slot] = Energy::from_mwh(parse(ds_s, "demand_ds")?);
            demand_dt[slot] = Energy::from_mwh(parse(dt_s, "demand_dt")?);
            renewable[slot] = Energy::from_mwh(parse(rn_s, "renewable")?);
            price_lt[clock.frame_of(slot)] = Price::from_dollars_per_mwh(parse(plt_s, "price_lt")?);
            price_rt[slot] = Price::from_dollars_per_mwh(parse(prt_s, "price_rt")?);
            seen[slot] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(TraceError::Parse {
                line: 0,
                reason: format!("slot {missing} missing from csv"),
            });
        }
        TraceSet::new(clock, demand_ds, demand_dt, renewable, price_lt, price_rt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TraceSet {
        let clock = SlotClock::new(2, 2, 1.0).unwrap();
        TraceSet::new(
            clock,
            vec![Energy::from_mwh(1.0); 4],
            vec![Energy::from_mwh(0.5); 4],
            vec![Energy::from_mwh(0.25); 4],
            vec![
                Price::from_dollars_per_mwh(30.0),
                Price::from_dollars_per_mwh(40.0),
            ],
            vec![Price::from_dollars_per_mwh(50.0); 4],
        )
        .unwrap()
    }

    #[test]
    fn validates_lengths() {
        let clock = SlotClock::new(2, 2, 1.0).unwrap();
        let r = TraceSet::new(
            clock,
            vec![Energy::ZERO; 3], // wrong
            vec![Energy::ZERO; 4],
            vec![Energy::ZERO; 4],
            vec![Price::ZERO; 2],
            vec![Price::ZERO; 4],
        );
        assert!(matches!(
            r,
            Err(TraceError::LengthMismatch {
                series: "demand_ds",
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn validates_values() {
        let clock = SlotClock::new(1, 2, 1.0).unwrap();
        let r = TraceSet::new(
            clock,
            vec![Energy::from_mwh(-1.0), Energy::ZERO],
            vec![Energy::ZERO; 2],
            vec![Energy::ZERO; 2],
            vec![Price::ZERO; 1],
            vec![Price::ZERO; 2],
        );
        assert!(matches!(
            r,
            Err(TraceError::InvalidValue {
                series: "demand_ds",
                slot: 0
            })
        ));
        let r = TraceSet::new(
            clock,
            vec![Energy::ZERO; 2],
            vec![Energy::ZERO; 2],
            vec![Energy::ZERO; 2],
            vec![Price::from_dollars_per_mwh(f64::NAN)],
            vec![Price::ZERO; 2],
        );
        assert!(matches!(
            r,
            Err(TraceError::InvalidValue {
                series: "price_lt",
                ..
            })
        ));
    }

    #[test]
    fn aggregates() {
        let t = tiny();
        assert_eq!(t.total_demand(), Energy::from_mwh(6.0));
        assert_eq!(t.total_renewable(), Energy::from_mwh(1.0));
        assert!((t.renewable_penetration() - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(t.demand_total(0), Energy::from_mwh(1.5));
        assert_eq!(t.mean_lt_price(), Price::from_dollars_per_mwh(35.0));
        assert_eq!(t.mean_rt_price(), Price::from_dollars_per_mwh(50.0));
        assert_eq!(t.price_lt_at_slot(3), Price::from_dollars_per_mwh(40.0));
    }

    #[test]
    fn stats_of_constant_series() {
        let t = tiny();
        let d = t.demand_stats();
        assert!((d.mean - 1.5).abs() < 1e-12);
        assert_eq!(d.std, 0.0);
        assert_eq!(t.renewable_stats().mean, 0.25);
        assert_eq!(t.rt_price_stats().mean, 50.0);
    }

    #[test]
    fn csv_round_trip() {
        let t = tiny();
        let csv = t.to_csv();
        assert!(csv.starts_with("slot,frame,offset"));
        let back = TraceSet::from_csv(t.clock, &csv).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        let t = tiny();
        let truncated = "slot,frame\n0,0\n";
        assert!(matches!(
            TraceSet::from_csv(t.clock, truncated),
            Err(TraceError::Parse { .. })
        ));
        let bad_number = "h\n0,0,0,x,0,0,0,0\n";
        assert!(matches!(
            TraceSet::from_csv(t.clock, bad_number),
            Err(TraceError::Parse { .. })
        ));
        let out_of_range = "h\n99,0,0,0,0,0,0,0\n";
        assert!(matches!(
            TraceSet::from_csv(t.clock, out_of_range),
            Err(TraceError::Parse { .. })
        ));
    }

    #[test]
    fn csv_detects_missing_slots() {
        let t = tiny();
        let mut csv = String::from(
            "slot,frame,offset,demand_ds_mwh,demand_dt_mwh,renewable_mwh,price_lt,price_rt\n",
        );
        csv.push_str("0,0,0,1,1,1,1,1\n"); // only slot 0 of 4
        assert!(matches!(
            TraceSet::from_csv(t.clock, &csv),
            Err(TraceError::Parse { .. })
        ));
    }

    #[test]
    fn arrivals_are_validated_and_aggregated() {
        let t = tiny();
        assert_eq!(t.arrivals, None);
        assert_eq!(t.total_arrivals(), Energy::ZERO);
        assert!(t.arrival_stats().is_none());

        let with = tiny()
            .with_arrivals(vec![Energy::from_mwh(0.5); 4])
            .unwrap();
        assert_eq!(with.total_arrivals(), Energy::from_mwh(2.0));
        assert_eq!(with.arrival_stats().unwrap().mean, 0.5);

        assert!(matches!(
            tiny().with_arrivals(vec![Energy::ZERO; 3]),
            Err(TraceError::LengthMismatch {
                series: "arrivals",
                ..
            })
        ));
        assert!(matches!(
            tiny().with_arrivals(vec![Energy::from_mwh(-1.0); 4]),
            Err(TraceError::InvalidValue {
                series: "arrivals",
                slot: 0
            })
        ));
    }

    #[test]
    fn csv_round_trip_drops_arrivals() {
        let t = tiny()
            .with_arrivals(vec![Energy::from_mwh(0.5); 4])
            .unwrap();
        let back = TraceSet::from_csv(t.clock, &t.to_csv()).unwrap();
        assert_eq!(back.arrivals, None);
        assert_eq!(back.demand_ds, t.demand_ds);
    }

    #[test]
    fn zero_demand_has_zero_penetration() {
        let clock = SlotClock::new(1, 1, 1.0).unwrap();
        let t = TraceSet::new(
            clock,
            vec![Energy::ZERO],
            vec![Energy::ZERO],
            vec![Energy::from_mwh(5.0)],
            vec![Price::ZERO],
            vec![Price::ZERO],
        )
        .unwrap();
        assert_eq!(t.renewable_penetration(), 0.0);
    }
}
