use std::fmt;

use serde::{Deserialize, Serialize};

/// Summary statistics of a scalar series (used for trace reporting and the
/// Fig. 8 demand-variation metric).
///
/// # Examples
///
/// ```
/// use dpss_traces::SeriesStats;
///
/// let s = SeriesStats::from_values([1.0, 3.0].iter().copied());
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// assert_eq!(s.std, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (the paper's Fig. 8 uses the uniform
    /// empirical distribution over slots, i.e. the population formula).
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Number of samples.
    pub count: usize,
}

impl SeriesStats {
    /// Computes statistics over an iterator of values.
    ///
    /// Returns an all-zero record for an empty iterator.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut count = 0usize;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            count += 1;
            sum += v;
            sum_sq += v * v;
            min = min.min(v);
            max = max.max(v);
        }
        if count == 0 {
            return SeriesStats {
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                count: 0,
            };
        }
        let n = count as f64;
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        SeriesStats {
            mean,
            std: var.sqrt(),
            min,
            max,
            count,
        }
    }

    /// Coefficient of variation (`std / mean`); zero for a zero mean.
    #[must_use]
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// Lag-1 autocorrelation of a series (population moments): the temporal-
/// structure fingerprint the golden-trace conformance suite pins alongside
/// [`SeriesStats`]. Returns `0.0` for series shorter than two samples or
/// with zero variance.
#[must_use]
pub fn lag1_autocorrelation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    if var <= 0.0 {
        return 0.0;
    }
    let cov = values
        .iter()
        .zip(values.iter().skip(1))
        .map(|(a, b)| (a - mean) * (b - mean))
        .sum::<f64>()
        / (n - 1.0);
    cov / var
}

impl fmt::Display for SeriesStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.4}, std {:.4}, range [{:.4}, {:.4}], n={}",
            self.mean, self.std, self.min, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_is_all_zero() {
        let s = SeriesStats::from_values(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn single_value() {
        let s = SeriesStats::from_values([5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn known_population_std() {
        // Values 2, 4, 4, 4, 5, 5, 7, 9: classic example with σ = 2.
        let s = SeriesStats::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coefficient_of_variation_handles_zero_mean() {
        let s = SeriesStats::from_values([0.0, 0.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        let s = SeriesStats::from_values([1.0, 3.0]);
        assert!((s.coefficient_of_variation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = SeriesStats::from_values([1.0, 2.0]);
        let t = s.to_string();
        assert!(t.contains("mean") && t.contains("std") && t.contains("n=2"));
    }

    #[test]
    fn lag1_autocorrelation_known_cases() {
        // Alternating series: perfectly anti-correlated.
        let alt: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!((lag1_autocorrelation(&alt) + 1.0).abs() < 0.05);
        // A slow ramp is strongly positively correlated.
        let ramp: Vec<f64> = (0..100).map(f64::from).collect();
        assert!(lag1_autocorrelation(&ramp) > 0.9);
        // Degenerate inputs.
        assert_eq!(lag1_autocorrelation(&[]), 0.0);
        assert_eq!(lag1_autocorrelation(&[1.0]), 0.0);
        assert_eq!(lag1_autocorrelation(&[2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn numerical_noise_never_yields_negative_variance() {
        // Identical large values can make sum_sq/n − mean² slightly
        // negative; the clamp keeps std at exactly 0.
        let s = SeriesStats::from_values(std::iter::repeat_n(1e9, 1000));
        assert_eq!(s.std, 0.0);
    }
}
