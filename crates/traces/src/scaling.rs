//! Trace transforms behind the Fig. 8 and Fig. 10 experiments.
//!
//! * [`expand`] — the Fig. 10 system-expansion model: demand and renewables
//!   scale by `β ≥ 1` while the UPS stays fixed (`d(β,t) = β·d(t)`,
//!   `r(β,t) = β·r(t)`, §V-C);
//! * [`with_renewable_penetration`] — rescales the renewable series so its
//!   total equals a target fraction of total demand (the Fig. 8 x-axis);
//! * [`with_demand_variation`] — stretches demand deviations around the
//!   mean by a factor, holding the mean fixed (the Fig. 8 variation sweep).

use dpss_units::Energy;

use crate::{TraceError, TraceSet};

/// Fig. 10 system expansion: returns a copy with demand and renewables
/// multiplied by `beta` (prices and calendar unchanged, UPS unchanged by
/// construction since the battery belongs to the simulator, not the trace).
///
/// # Errors
///
/// [`TraceError::InvalidParameter`] unless `beta ≥ 1` and finite, matching
/// the paper's expansion model (`β ≥ 1`).
///
/// # Examples
///
/// ```
/// let t = dpss_traces::paper_month_traces(42)?;
/// let big = dpss_traces::scaling::expand(&t, 5.0)?;
/// let ratio = big.total_demand() / t.total_demand();
/// assert!((ratio - 5.0).abs() < 1e-9);
/// # Ok::<(), dpss_traces::TraceError>(())
/// ```
pub fn expand(traces: &TraceSet, beta: f64) -> Result<TraceSet, TraceError> {
    if !(beta.is_finite() && beta >= 1.0) {
        return Err(TraceError::InvalidParameter {
            what: "beta",
            requirement: "must be finite and at least 1",
        });
    }
    let scale = |xs: &[Energy]| xs.iter().map(|&e| e * beta).collect::<Vec<_>>();
    TraceSet::new(
        traces.clock,
        scale(&traces.demand_ds),
        scale(&traces.demand_dt),
        scale(&traces.renewable),
        traces.price_lt.clone(),
        traces.price_rt.clone(),
    )
}

/// Fig. 8 renewable-penetration sweep: rescales the renewable series so the
/// horizon total equals `penetration × total demand` while preserving its
/// temporal shape. `penetration = 0` zeroes the series.
///
/// # Errors
///
/// [`TraceError::InvalidParameter`] unless `penetration ∈ [0, ∞)` and
/// finite, or if the base trace has no renewable energy to rescale while
/// `penetration > 0`.
///
/// # Examples
///
/// ```
/// let t = dpss_traces::paper_month_traces(42)?;
/// let half = dpss_traces::scaling::with_renewable_penetration(&t, 0.5)?;
/// assert!((half.renewable_penetration() - 0.5).abs() < 1e-9);
/// # Ok::<(), dpss_traces::TraceError>(())
/// ```
pub fn with_renewable_penetration(
    traces: &TraceSet,
    penetration: f64,
) -> Result<TraceSet, TraceError> {
    if !(penetration.is_finite() && penetration >= 0.0) {
        return Err(TraceError::InvalidParameter {
            what: "penetration",
            requirement: "must be finite and non-negative",
        });
    }
    let total_r = traces.total_renewable();
    let target = traces.total_demand() * penetration;
    let renewable = if penetration == 0.0 {
        vec![Energy::ZERO; traces.renewable.len()]
    } else {
        if total_r <= Energy::ZERO {
            return Err(TraceError::InvalidParameter {
                what: "penetration",
                requirement: "requires a non-zero base renewable series",
            });
        }
        let f = target / total_r;
        traces.renewable.iter().map(|&e| e * f).collect()
    };
    TraceSet::new(
        traces.clock,
        traces.demand_ds.clone(),
        traces.demand_dt.clone(),
        renewable,
        traces.price_lt.clone(),
        traces.price_rt.clone(),
    )
}

/// Fig. 8 demand-variation sweep: stretches each demand class around its
/// own mean by `factor` (`0` flattens demand to the mean, `1` is identity,
/// `> 1` exaggerates variation), clamping at zero. The paper quantifies
/// variation with the standard deviation of the demand series under the
/// uniform empirical distribution; stretching deviations scales that
/// standard deviation by `factor` (up to the zero-clamp).
///
/// # Errors
///
/// [`TraceError::InvalidParameter`] unless `factor` is finite and
/// non-negative.
///
/// # Examples
///
/// ```
/// let t = dpss_traces::paper_month_traces(42)?;
/// let flat = dpss_traces::scaling::with_demand_variation(&t, 0.0)?;
/// assert!(flat.demand_stats().std < 1e-6);
/// # Ok::<(), dpss_traces::TraceError>(())
/// ```
pub fn with_demand_variation(traces: &TraceSet, factor: f64) -> Result<TraceSet, TraceError> {
    if !(factor.is_finite() && factor >= 0.0) {
        return Err(TraceError::InvalidParameter {
            what: "variation factor",
            requirement: "must be finite and non-negative",
        });
    }
    let stretch = |xs: &[Energy]| {
        let mean = if xs.is_empty() {
            0.0
        } else {
            // audit:allow(unit-cast): usize length to f64 divisor, not a unit conversion
            xs.iter().map(|e| e.mwh()).sum::<f64>() / xs.len() as f64
        };
        xs.iter()
            .map(|e| Energy::from_mwh((mean + factor * (e.mwh() - mean)).max(0.0)))
            .collect::<Vec<_>>()
    };
    TraceSet::new(
        traces.clock,
        stretch(&traces.demand_ds),
        stretch(&traces.demand_dt),
        traces.renewable.clone(),
        traces.price_lt.clone(),
        traces.price_rt.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_month_traces;

    #[test]
    fn expand_scales_demand_and_renewables_only() {
        let t = paper_month_traces(1).unwrap();
        let big = expand(&t, 2.0).unwrap();
        assert!((big.total_demand() / t.total_demand() - 2.0).abs() < 1e-9);
        assert!((big.total_renewable() / t.total_renewable() - 2.0).abs() < 1e-9);
        assert_eq!(big.price_rt, t.price_rt);
        assert_eq!(big.price_lt, t.price_lt);
        // Penetration is invariant under uniform expansion.
        assert!((big.renewable_penetration() - t.renewable_penetration()).abs() < 1e-12);
    }

    #[test]
    fn expand_rejects_shrinking() {
        let t = paper_month_traces(2).unwrap();
        assert!(expand(&t, 0.5).is_err());
        assert!(expand(&t, f64::NAN).is_err());
        assert!(expand(&t, 1.0).is_ok());
    }

    #[test]
    fn penetration_hits_target() {
        let t = paper_month_traces(3).unwrap();
        for target in [0.0, 0.1, 0.5, 1.0] {
            let s = with_renewable_penetration(&t, target).unwrap();
            assert!(
                (s.renewable_penetration() - target).abs() < 1e-9,
                "target {target}"
            );
            assert_eq!(s.demand_ds, t.demand_ds, "demand untouched");
        }
    }

    #[test]
    fn penetration_preserves_temporal_shape() {
        let t = paper_month_traces(4).unwrap();
        let s = with_renewable_penetration(&t, 0.6).unwrap();
        // Zero slots stay zero; ratios between non-zero slots are constant.
        let mut ratio: Option<f64> = None;
        for (a, b) in t.renewable.iter().zip(&s.renewable) {
            if a.mwh() == 0.0 {
                assert_eq!(b.mwh(), 0.0);
            } else {
                let r = b.mwh() / a.mwh();
                if let Some(r0) = ratio {
                    assert!((r - r0).abs() < 1e-9);
                } else {
                    ratio = Some(r);
                }
            }
        }
    }

    #[test]
    fn penetration_rejects_invalid() {
        let t = paper_month_traces(5).unwrap();
        assert!(with_renewable_penetration(&t, -0.1).is_err());
        assert!(with_renewable_penetration(&t, f64::INFINITY).is_err());
        // Zero base renewables cannot be scaled up.
        let zeroed = with_renewable_penetration(&t, 0.0).unwrap();
        assert!(with_renewable_penetration(&zeroed, 0.5).is_err());
        assert!(with_renewable_penetration(&zeroed, 0.0).is_ok());
    }

    #[test]
    fn variation_scales_standard_deviation() {
        let t = paper_month_traces(6).unwrap();
        let base_std = t.demand_stats().std;
        let flat = with_demand_variation(&t, 0.0).unwrap();
        assert!(flat.demand_stats().std < 1e-6);
        let half = with_demand_variation(&t, 0.5).unwrap();
        // Mean preserved (no clamping for factor <= 1 on non-negative data
        // with mean below all-positive values — allow small drift).
        assert!(
            (half.demand_stats().mean - t.demand_stats().mean).abs() / t.demand_stats().mean < 0.02
        );
        assert!((half.demand_stats().std - 0.5 * base_std).abs() / base_std < 0.05);
        let double = with_demand_variation(&t, 2.0).unwrap();
        assert!(double.demand_stats().std > 1.5 * base_std);
    }

    #[test]
    fn variation_never_goes_negative() {
        let t = paper_month_traces(7).unwrap();
        let wild = with_demand_variation(&t, 5.0).unwrap();
        for i in 0..wild.clock.total_slots() {
            assert!(wild.demand_total(i).mwh() >= 0.0);
        }
        assert!(with_demand_variation(&t, -1.0).is_err());
    }
}
