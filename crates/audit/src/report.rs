//! Findings, the audit report, and its two renderings (human text and
//! hand-rolled JSON — this crate is intentionally dependency-free, so it
//! cannot use the workspace's vendored serde).

use std::collections::BTreeMap;

/// One confirmed finding: a lint that fired on a line and was not
/// suppressed by a pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable kebab-case lint name.
    pub lint: &'static str,
    /// The offending source line, trimmed and truncated.
    pub snippet: String,
    /// What went wrong and what to do instead.
    pub message: String,
}

/// The result of auditing a file set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// All findings, sorted by `(file, line, lint)`.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Pragmas honored (suppressed at least one finding is not required
    /// — this counts every well-formed, reason-carrying pragma seen).
    pub pragmas_seen: usize,
}

impl AuditReport {
    /// True when no lint fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings per lint name, sorted by name.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.lint).or_insert(0) += 1;
        }
        counts
    }

    /// The human rendering: one block per finding plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{} {}: `{}`\n    {}\n",
                f.file, f.line, f.lint, f.snippet, f.message
            ));
        }
        if self.is_clean() {
            out.push_str(&format!(
                "dpss-audit: clean ({} files, {} pragmas honored)",
                self.files_scanned, self.pragmas_seen
            ));
        } else {
            let by_lint = self
                .counts()
                .into_iter()
                .map(|(k, v)| format!("{k} x{v}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "dpss-audit: {} finding(s) in {} file(s) scanned ({})",
                self.findings.len(),
                self.files_scanned,
                by_lint
            ));
        }
        out
    }

    /// The machine rendering written to `target/audit.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"clean\": ");
        out.push_str(if self.is_clean() { "true" } else { "false" });
        out.push_str(&format!(
            ",\n  \"files_scanned\": {},\n  \"pragmas_seen\": {},\n  \"counts\": {{",
            self.files_scanned, self.pragmas_seen
        ));
        let counts = self.counts();
        for (i, (lint, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(lint), n));
        }
        if !counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"snippet\": {}, \
                 \"message\": {}}}",
                json_string(&f.file),
                f.line,
                json_string(f.lint),
                json_string(&f.snippet),
                json_string(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Trims and truncates a source line for display.
pub fn snippet_of(raw_line: &str) -> String {
    let trimmed = raw_line.trim();
    if trimmed.chars().count() > 96 {
        let cut: String = trimmed.chars().take(93).collect();
        format!("{cut}...")
    } else {
        trimmed.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditReport {
        AuditReport {
            findings: vec![Finding {
                file: "crates/lp/src/model.rs".into(),
                line: 7,
                lint: "panic-unwrap",
                snippet: "let x = m.get(\"k\").unwrap();".into(),
                message: "boom".into(),
            }],
            files_scanned: 3,
            pragmas_seen: 2,
        }
    }

    #[test]
    fn renders_human_summary() {
        let r = sample();
        let text = r.render();
        assert!(text.contains("crates/lp/src/model.rs:7 panic-unwrap"));
        assert!(text.contains("1 finding(s) in 3 file(s)"));
        assert!(text.contains("panic-unwrap x1"));
        assert!(AuditReport {
            findings: vec![],
            files_scanned: 3,
            pragmas_seen: 0
        }
        .render()
        .contains("clean (3 files"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = sample().to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\\\"k\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"panic-unwrap\": 1"));
        // Sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn snippets_truncate() {
        let long = "x".repeat(200);
        assert_eq!(snippet_of(&long).chars().count(), 96);
        assert_eq!(snippet_of("  let a = 1;  "), "let a = 1;");
    }
}
