//! The lint roster: repo-specific determinism, panic-safety and hygiene
//! rules, each a cheap token scan over a [`Scrubbed`] file.
//!
//! Every lint is deliberately *conservative*: a lexer cannot resolve
//! types, so e.g. `hash-container` flags any `HashMap`/`HashSet` mention
//! in result-producing crates rather than trying to prove a particular
//! iteration is order-sensitive. False positives are resolved in review
//! with an `// audit:allow(<lint>): <reason>` pragma — the reason is the
//! artifact, a written invariant the next reader can check.

// Same scanner discipline as `lexer`: indices come from enumerate(),
// `windows(n)` views, or positions returned by `find` on the very string
// being sliced.
// audit:allow-file(slice-index): scan indices come from enumerate/windows/find over the same buffer

use crate::lexer::Scrubbed;

/// Which lint families apply to a file (decided from its workspace path
/// by [`crate::classify`], or set explicitly by fixture tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Determinism lints: result-producing crates (`lp`, `traces`,
    /// `sim`, `core`, `bench`), bins included.
    pub determinism: bool,
    /// Panic-safety lints: library code (all crates, bins excluded).
    pub panic_safety: bool,
    /// Unit hygiene (`unit-cast`): everywhere.
    pub unit_hygiene: bool,
    /// Crate-root hygiene (`crate-attrs`): `src/lib.rs` files only.
    pub crate_root: bool,
}

impl FileClass {
    /// All content lints on — the fixture-corpus configuration.
    pub fn all() -> Self {
        FileClass {
            determinism: true,
            panic_safety: true,
            unit_hygiene: true,
            crate_root: false,
        }
    }
}

/// One lint finding, keyed by the stable lint name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// 1-based line number.
    pub line: usize,
    /// Stable kebab-case lint name.
    pub lint: &'static str,
    /// What went wrong and what to do instead.
    pub message: String,
}

/// Stable names of every lint the auditor knows, in report order.
pub const LINT_NAMES: &[&str] = &[
    "hash-container",
    "wall-clock",
    "unseeded-rng",
    "unordered-float-sum",
    "panic-unwrap",
    "panic-explicit",
    "slice-index",
    "crate-attrs",
    "unit-cast",
    "pragma-missing-reason",
    "pragma-unknown-lint",
];

/// True when `name` is a known content lint a pragma may suppress.
/// The two pragma meta-lints police the pragmas themselves and are
/// deliberately not suppressible.
pub fn is_allowable(name: &str) -> bool {
    LINT_NAMES.contains(&name) && name != "pragma-missing-reason" && name != "pragma-unknown-lint"
}

/// Runs every content lint selected by `class` over a scrubbed file.
/// Lines inside `#[cfg(test)]` items are skipped. Pragma handling (and
/// the crate-attrs check, which needs the raw source) live in the
/// driver.
pub fn scan(scrubbed: &Scrubbed, class: FileClass) -> Vec<RawFinding> {
    let mut findings = Vec::new();
    for (idx, line) in scrubbed.lines.iter().enumerate() {
        if scrubbed.is_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        if class.determinism {
            determinism_line(line, lineno, &mut findings);
        }
        if class.panic_safety {
            panic_safety_line(line, lineno, &mut findings);
        }
        if class.unit_hygiene {
            unit_cast_line(line, lineno, &mut findings);
        }
    }
    if class.determinism {
        unordered_float_sum(scrubbed, &mut findings);
    }
    findings.sort_by_key(|f| (f.line, f.lint));
    findings
}

fn determinism_line(line: &str, lineno: usize, out: &mut Vec<RawFinding>) {
    for hash in ["HashMap", "HashSet"] {
        if has_word(line, hash) {
            out.push(RawFinding {
                line: lineno,
                lint: "hash-container",
                message: format!(
                    "{hash} iteration order is nondeterministic; use BTreeMap/BTreeSet \
                     (or pragma a proven order-insensitive use)"
                ),
            });
        }
    }
    let clock = has_path(line, &["std", "time"])
        || has_word(line, "SystemTime")
        || has_word(line, "Instant")
        || has_word(line, "UNIX_EPOCH");
    if clock {
        out.push(RawFinding {
            line: lineno,
            lint: "wall-clock",
            message: "wall-clock reads make runs irreproducible; thread time through \
                      SlotClock or pass timings in from the caller"
                .into(),
        });
    }
    for rng in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
        if has_word(line, rng) {
            out.push(RawFinding {
                line: lineno,
                lint: "unseeded-rng",
                message: format!(
                    "`{rng}` draws OS entropy; every RNG must be constructed from an \
                     explicit seed (see dpss_traces::seed)"
                ),
            });
        }
    }
    if has_path(line, &["rand", "random"]) {
        out.push(RawFinding {
            line: lineno,
            lint: "unseeded-rng",
            message: "`rand::random` uses the thread-local entropy RNG; construct a \
                      seeded generator instead"
                .into(),
        });
    }
}

fn panic_safety_line(line: &str, lineno: usize, out: &mut Vec<RawFinding>) {
    for method in ["unwrap", "expect"] {
        if has_method_call(line, method) {
            out.push(RawFinding {
                line: lineno,
                lint: "panic-unwrap",
                message: format!(
                    "`.{method}()` panics on the error path; return a typed error or \
                     document the invariant in a pragma reason"
                ),
            });
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        if has_macro(line, mac) {
            out.push(RawFinding {
                line: lineno,
                lint: "panic-explicit",
                message: format!(
                    "`{mac}!` aborts the caller; library code should surface a typed \
                     error (or justify the invariant in a pragma reason)"
                ),
            });
        }
    }
    for col in index_sites(line) {
        let _ = col;
        out.push(RawFinding {
            line: lineno,
            lint: "slice-index",
            message: "unguarded indexing panics out of bounds; prefer `.get()`/iterators, \
                      or document the bound invariant in a pragma reason"
                .into(),
        });
    }
}

fn unit_cast_line(line: &str, lineno: usize, out: &mut Vec<RawFinding>) {
    let extractors = [
        ".dollars(",
        ".mwh(",
        ".mw(",
        ".dollars_per_mwh(",
        ".per_mwh(",
    ];
    if !extractors.iter().any(|e| line.contains(e)) {
        return;
    }
    const NUMERIC: &[&str] = &[
        "f32", "f64", "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32",
        "i64", "i128",
    ];
    let words: Vec<&str> = words_of(line).collect();
    for pair in words.windows(2) {
        if pair[0] == "as" && NUMERIC.contains(&pair[1]) {
            out.push(RawFinding {
                line: lineno,
                lint: "unit-cast",
                message: "raw `as` cast next to a unit extractor; keep the value in its \
                          dpss-units newtype and use its arithmetic"
                    .into(),
            });
            return;
        }
    }
}

/// `.values()` / `.keys()` chained straight into a float accumulator —
/// the chain may cross line breaks, so this runs on the joined text.
fn unordered_float_sum(scrubbed: &Scrubbed, out: &mut Vec<RawFinding>) {
    let joined = scrubbed.lines.join("\n");
    let bytes = joined.as_bytes();
    for source in ["values", "keys", "into_values", "into_keys"] {
        let mut from = 0;
        while let Some(pos) = joined[from..].find(source) {
            let start = from + pos;
            from = start + source.len();
            // Must be a method call: preceded by `.`, followed by `()`.
            if start == 0 || bytes[start - 1] != b'.' {
                continue;
            }
            let mut j = from;
            if bytes.get(j) != Some(&b'(') {
                continue;
            }
            j += 1;
            if bytes.get(j) != Some(&b')') {
                continue;
            }
            j += 1;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) != Some(&b'.') {
                continue;
            }
            j += 1;
            let rest = &joined[j..];
            if ["sum", "product", "fold", "reduce"]
                .iter()
                .any(|acc| rest.starts_with(acc))
            {
                let lineno = 1 + joined[..start].matches('\n').count();
                let line_is_test = scrubbed.is_test.get(lineno - 1).copied().unwrap_or(false);
                if !line_is_test {
                    out.push(RawFinding {
                        line: lineno,
                        lint: "unordered-float-sum",
                        message: format!(
                            "float accumulation over `.{source}()` folds in hash order; \
                             collect and sort, or use an ordered container"
                        ),
                    });
                }
            }
        }
    }
}

/// Byte columns of indexing expressions on a scrubbed line: a `[` glued
/// to an identifier, `)` or `]` — array literals (`[1, 2]`), slice types
/// (`&[f64]`) and macro brackets (`vec![…]`) do not match.
fn index_sites(line: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut sites = Vec::new();
    for i in 1..bytes.len() {
        if bytes[i] != b'[' {
            continue;
        }
        let prev = bytes[i - 1];
        if is_ident_byte(prev) || prev == b')' || prev == b']' {
            sites.push(i);
        }
    }
    sites
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn words_of(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
}

/// `.name(…)` — a real method call: `.` glued on the left, call parens on
/// the right, so `unwrap_or`/`expect_err` and field accesses don't match.
fn has_method_call(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        from = end;
        if start == 0 || bytes[start - 1] != b'.' {
            continue;
        }
        if end < bytes.len() && is_ident_byte(bytes[end]) {
            continue;
        }
        if line[end..].trim_start().starts_with('(') {
            return true;
        }
    }
    false
}

/// `name!` macro invocation (path-qualified forms like `core::panic!`
/// match too).
fn has_macro(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        from = end;
        if start > 0 && is_ident_byte(bytes[start - 1]) {
            continue;
        }
        if bytes.get(end) == Some(&b'!') {
            return true;
        }
    }
    false
}

fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// `a::b` path match tolerant of spaces around the `::`.
fn has_path(line: &str, segments: &[&str]) -> bool {
    let bytes = line.as_bytes();
    let Some(first) = segments.first() else {
        return false;
    };
    let mut from = 0;
    while let Some(pos) = line[from..].find(first) {
        let start = from + pos;
        let mut end = start + first.len();
        from = end;
        if start > 0 && is_ident_byte(bytes[start - 1]) {
            continue;
        }
        let mut matched = true;
        for seg in &segments[1..] {
            let rest = &line[end..];
            let trimmed = rest.trim_start();
            let Some(after_sep) = trimmed.strip_prefix("::") else {
                matched = false;
                break;
            };
            let after_sep_trim = after_sep.trim_start();
            if !after_sep_trim.starts_with(seg) {
                matched = false;
                break;
            }
            let seg_start = line.len() - after_sep_trim.len();
            let seg_end = seg_start + seg.len();
            if seg_end < bytes.len() && is_ident_byte(bytes[seg_end]) {
                matched = false;
                break;
            }
            end = seg_end;
        }
        if matched {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn lints_of(src: &str, class: FileClass) -> Vec<(usize, &'static str)> {
        scan(&scrub(src), class)
            .into_iter()
            .map(|f| (f.line, f.lint))
            .collect()
    }

    #[test]
    fn flags_hash_containers_and_clocks() {
        let src = "use std::collections::HashMap;\nlet t = std::time::Instant::now();\n";
        let got = lints_of(src, FileClass::all());
        assert!(got.contains(&(1, "hash-container")), "{got:?}");
        assert!(got.contains(&(2, "wall-clock")), "{got:?}");
    }

    #[test]
    fn flags_unwrap_but_not_unwrap_or() {
        let src = "let a = x.unwrap();\nlet b = x.unwrap_or(0);\nlet c = x.unwrap_or_else(f);\n";
        let got = lints_of(src, FileClass::all());
        assert_eq!(got, vec![(1, "panic-unwrap")]);
    }

    #[test]
    fn flags_indexing_but_not_literals_or_macros() {
        let src = "let a = xs[i];\nlet b = [1, 2];\nlet c: &[f64] = &xs;\nlet d = vec![0; 3];\nlet e = grid[r][c];\n";
        let got = lints_of(src, FileClass::all());
        assert_eq!(
            got,
            vec![(1, "slice-index"), (5, "slice-index"), (5, "slice-index"),]
        );
    }

    #[test]
    fn flags_unordered_float_sum_across_lines() {
        let src = "let s: f64 = m.values()\n    .sum();\nlet ok: f64 = v.iter().sum();\n";
        let got = lints_of(src, FileClass::all());
        assert_eq!(got, vec![(1, "unordered-float-sum")]);
    }

    #[test]
    fn flags_unit_casts_only_next_to_extractors() {
        let src = "let a = cost.dollars() as u64;\nlet b = t as f64;\nlet c = e.mwh() * 2.0;\n";
        let got = lints_of(src, FileClass::all());
        assert_eq!(got, vec![(1, "unit-cast")]);
    }

    #[test]
    fn scoping_gates_lint_families() {
        let src = "let a = x.unwrap();\nuse std::collections::HashSet;\n";
        let only_det = FileClass {
            determinism: true,
            panic_safety: false,
            unit_hygiene: false,
            crate_root: false,
        };
        assert_eq!(lints_of(src, only_det), vec![(2, "hash-container")]);
        let only_panic = FileClass {
            determinism: false,
            panic_safety: true,
            unit_hygiene: false,
            crate_root: false,
        };
        assert_eq!(lints_of(src, only_panic), vec![(1, "panic-unwrap")]);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src =
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let got = lints_of(src, FileClass::all());
        assert_eq!(got, vec![(1, "panic-unwrap")]);
    }

    #[test]
    fn rng_and_macros() {
        let src = "let r = thread_rng();\npanic!(\"boom\");\nlet x = rand::random();\n";
        let got = lints_of(src, FileClass::all());
        assert!(got.contains(&(1, "unseeded-rng")));
        assert!(got.contains(&(2, "panic-explicit")));
        assert!(got.contains(&(3, "unseeded-rng")), "{got:?}");
    }
}
