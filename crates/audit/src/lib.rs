//! **dpss-audit** — a workspace lint pass enforcing SmartDPSS's
//! determinism and panic-safety invariants at the source level.
//!
//! The repo's headline guarantees (byte-identical sweeps at any
//! `--threads`, golden-trace stability, warm-start equivalence) are
//! runtime-enforced by release-mode suites, so a stray `HashMap`
//! iteration or wall-clock read in a new result-producing path only
//! fails after an expensive CI run — if at all. This crate checks those
//! invariants *statically, in seconds*: a hand-rolled [`lexer`] strips
//! comments/strings/attributes, then a roster of repo-specific [`lints`]
//! scans what remains.
//!
//! The roster (stable names, see [`lints::LINT_NAMES`]):
//!
//! | lint | family | fires on |
//! |---|---|---|
//! | `hash-container` | determinism | `HashMap`/`HashSet` in result-producing crates |
//! | `wall-clock` | determinism | `std::time`, `SystemTime`, `Instant`, `UNIX_EPOCH` |
//! | `unseeded-rng` | determinism | `thread_rng`, `from_entropy`, `OsRng`, `rand::random` |
//! | `unordered-float-sum` | determinism | `.values()`/`.keys()` chained into `sum`/`fold`/… |
//! | `panic-unwrap` | panic-safety | `.unwrap()` / `.expect(…)` in library code |
//! | `panic-explicit` | panic-safety | `panic!`/`unreachable!`/`todo!`/`unimplemented!` |
//! | `slice-index` | panic-safety | unguarded `xs[i]` indexing in library code |
//! | `crate-attrs` | hygiene | crate roots missing `forbid(unsafe_code)` / `deny(missing_debug_implementations)` |
//! | `unit-cast` | hygiene | raw `as` casts next to `.dollars()`/`.mwh()` extractors |
//! | `pragma-missing-reason` | meta | an `audit:allow` pragma without a reason |
//! | `pragma-unknown-lint` | meta | a pragma naming no known suppressible lint |
//!
//! Findings are suppressed in review with pragmas — the reason is
//! **mandatory** and is itself enforced by the auditor:
//!
//! ```text
//! let x = xs[i]; // audit:allow(slice-index): i < xs.len() checked at entry
//! // audit:allow(panic-unwrap): config was validated by the constructor
//! let v = cfg.v.unwrap();
//! // audit:allow-file(slice-index): dense simplex kernel, bounds proven at build
//! ```
//!
//! A trailing pragma suppresses its own line, a whole-line pragma the
//! next code line, and `audit:allow-file` the entire file. The two
//! pragma meta-lints cannot be suppressed.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![deny(missing_docs)]

pub mod lexer;
pub mod lints;
pub mod report;

pub use lints::{FileClass, LINT_NAMES};
pub use report::{AuditReport, Finding};

use lints::RawFinding;
use std::path::{Path, PathBuf};

/// Crates whose sources feed published results: the determinism lints
/// apply to them, bins included (perf bins pragma their timer reads).
const DETERMINISM_CRATES: &[&str] = &["lp", "traces", "sim", "core", "serve", "bench", "audit"];

/// Classifies a workspace-relative, `/`-separated path, or `None` when
/// the file is out of audit scope (tests, benches, examples, vendor).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let in_crates = rel.strip_prefix("crates/");
    let crate_name = match in_crates {
        Some(rest) => rest.split('/').next().unwrap_or(""),
        None => "facade",
    };
    // Only `src/` trees are in scope: integration tests, benches and
    // examples are exercised by the test suite, not shipped as library
    // surface.
    let under_src = match in_crates {
        Some(rest) => rest
            .split_once('/')
            .is_some_and(|(_, tail)| tail.starts_with("src/")),
        None => rel.starts_with("src/"),
    };
    if !under_src {
        return None;
    }
    let is_bin =
        rel.contains("/src/bin/") || rel.starts_with("src/bin/") || rel.ends_with("/src/main.rs");
    Some(FileClass {
        determinism: DETERMINISM_CRATES.contains(&crate_name),
        panic_safety: !is_bin,
        unit_hygiene: true,
        crate_root: rel.ends_with("src/lib.rs"),
    })
}

/// Audits one file's source text under a given class. `rel` is used only
/// for finding labels.
pub fn audit_source(rel: &str, source: &str, class: FileClass) -> (Vec<Finding>, usize) {
    let scrubbed = lexer::scrub(source);
    let mut raw = lints::scan(&scrubbed, class);
    if class.crate_root {
        crate_attr_findings(source, &mut raw);
    }

    // Pragma policing first: these meta-findings are never suppressible.
    let mut findings = Vec::new();
    let mut honored = 0usize;
    for pragma in &scrubbed.pragmas {
        if pragma.malformed || !lints::is_allowable(&pragma.lint) {
            findings.push(finding_at(
                rel,
                &scrubbed,
                pragma.line,
                "pragma-unknown-lint",
                if pragma.malformed {
                    "malformed pragma; the form is `// audit:allow(<lint>): <reason>`".to_owned()
                } else {
                    format!(
                        "pragma names `{}`, which is not a suppressible lint (see \
                         `dpss-audit --help` for the roster)",
                        pragma.lint
                    )
                },
            ));
            continue;
        }
        if pragma.reason.is_empty() {
            findings.push(finding_at(
                rel,
                &scrubbed,
                pragma.line,
                "pragma-missing-reason",
                format!(
                    "`audit:allow({})` needs a reason after the colon — the written \
                     invariant is the point of the pragma",
                    pragma.lint
                ),
            ));
            continue;
        }
        honored += 1;
    }

    // Suppression: a well-formed, reason-carrying pragma silences its
    // target line (trailing), the next code line (whole-line), or the
    // whole file (`allow-file`).
    raw.retain(|f| !suppressed(f, &scrubbed));
    for f in raw {
        findings.push(finding_at(rel, &scrubbed, f.line, f.lint, f.message));
    }
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    (findings, honored)
}

fn suppressed(f: &RawFinding, scrubbed: &lexer::Scrubbed) -> bool {
    scrubbed.pragmas.iter().any(|p| {
        if p.malformed || p.reason.is_empty() || p.lint != f.lint {
            return false;
        }
        if p.file_wide {
            return true;
        }
        if p.whole_line {
            // A stack of whole-line pragmas covers the first code line
            // after the run.
            let mut target = p.line + 1;
            while scrubbed
                .pragmas
                .iter()
                .any(|q| q.whole_line && q.line == target)
            {
                target += 1;
            }
            target == f.line
        } else {
            p.line == f.line
        }
    })
}

fn finding_at(
    rel: &str,
    scrubbed: &lexer::Scrubbed,
    line: usize,
    lint: &'static str,
    message: String,
) -> Finding {
    let raw = scrubbed
        .raw_lines
        .get(line.saturating_sub(1))
        .map(String::as_str)
        .unwrap_or("");
    Finding {
        file: rel.to_owned(),
        line,
        lint,
        snippet: report::snippet_of(raw),
        message,
    }
}

/// The two attributes every crate root must carry.
const REQUIRED_CRATE_ATTRS: &[&str] = &[
    "#![forbid(unsafe_code)]",
    "#![deny(missing_debug_implementations)]",
];

fn crate_attr_findings(source: &str, out: &mut Vec<RawFinding>) {
    for attr in REQUIRED_CRATE_ATTRS {
        if !source.contains(attr) {
            out.push(RawFinding {
                line: 1,
                lint: "crate-attrs",
                message: format!("crate root is missing `{attr}`"),
            });
        }
    }
}

/// Audits the whole workspace rooted at `root`: the facade `src/` tree
/// plus every `crates/*/src` tree, classified by [`classify`]. Walk
/// order is sorted, so the report is byte-stable across filesystems.
pub fn audit_workspace(root: &Path) -> std::io::Result<AuditReport> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), root, &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            collect_rs(&entry.join("src"), root, &mut files)?;
        }
    }
    files.sort();
    audit_files(root, &files)
}

/// Audits an explicit file set (still rooted at `root` for labels).
/// Directories are walked recursively; every `.rs` file gets the
/// all-lints-on fixture class. This is the `--path` CLI mode.
pub fn audit_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<AuditReport> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs(p, root, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    let mut report = AuditReport::default();
    for file in &files {
        let source = std::fs::read_to_string(file)?;
        let rel = rel_label(root, file);
        let (found, honored) = audit_source(&rel, &source, FileClass::all());
        report.findings.extend(found);
        report.pragmas_seen += honored;
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(report)
}

fn audit_files(root: &Path, files: &[PathBuf]) -> std::io::Result<AuditReport> {
    let mut report = AuditReport::default();
    for file in files {
        let rel = rel_label(root, file);
        let Some(class) = classify(&rel) else {
            continue;
        };
        let source = std::fs::read_to_string(file)?;
        let (found, honored) = audit_source(&rel, &source, class);
        report.findings.extend(found);
        report.pragmas_seen += honored;
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(report)
}

fn rel_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    // `/`-separated labels keep reports identical across platforms.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs(dir: &Path, _root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, _root, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_workspace_policy() {
        let lp = classify("crates/lp/src/model.rs").unwrap();
        assert!(lp.determinism && lp.panic_safety && !lp.crate_root);
        let units = classify("crates/units/src/money.rs").unwrap();
        assert!(!units.determinism && units.panic_safety);
        let root = classify("crates/sim/src/lib.rs").unwrap();
        assert!(root.crate_root);
        let bin = classify("crates/bench/src/bin/bench_sweep.rs").unwrap();
        assert!(bin.determinism && !bin.panic_safety);
        let facade = classify("src/lib.rs").unwrap();
        assert!(!facade.determinism && facade.panic_safety && facade.crate_root);
        let cli = classify("src/bin/dpss.rs").unwrap();
        assert!(!cli.panic_safety);
        assert!(classify("crates/lp/tests/simplex_properties.rs").is_none());
        assert!(classify("crates/bench/benches/lp_solver.rs").is_none());
        assert!(classify("examples/quickstart.rs").is_none());
        assert!(classify("crates/lp/src/notes.md").is_none());
    }

    #[test]
    fn pragmas_suppress_with_reason_only() {
        let src = "let a = x.unwrap(); // audit:allow(panic-unwrap): validated above\n\
                   let b = y.unwrap(); // audit:allow(panic-unwrap)\n\
                   // audit:allow(panic-unwrap): next line is invariant-guarded\n\
                   let c = z.unwrap();\n";
        let (findings, honored) = audit_source("f.rs", src, FileClass::all());
        let got: Vec<(usize, &str)> = findings.iter().map(|f| (f.line, f.lint)).collect();
        // Line 1 suppressed; line 2 keeps its finding AND gains the
        // missing-reason meta-finding; line 4 suppressed by line 3.
        assert_eq!(
            got,
            vec![(2, "panic-unwrap"), (2, "pragma-missing-reason")],
            "{findings:#?}"
        );
        assert_eq!(honored, 2);
    }

    #[test]
    fn stacked_whole_line_pragmas_cover_the_next_code_line() {
        let src = "// audit:allow(panic-unwrap): fallible only on poisoned input\n\
                   // audit:allow(slice-index): i bounded by the loop above\n\
                   let c = z[i].unwrap();\n";
        let (findings, _) = audit_source("f.rs", src, FileClass::all());
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn file_wide_pragmas_cover_everything() {
        let src = "// audit:allow-file(slice-index): dense kernel, bounds proven at build\n\
                   fn f() { a[0]; b[1]; }\nfn g() { c[2].unwrap(); }\n";
        let (findings, _) = audit_source("f.rs", src, FileClass::all());
        let got: Vec<&str> = findings.iter().map(|f| f.lint).collect();
        assert_eq!(got, vec!["panic-unwrap"], "{findings:#?}");
    }

    #[test]
    fn unknown_pragma_lints_are_flagged_and_do_not_suppress() {
        let src = "let a = x.unwrap(); // audit:allow(panic-unwarp): typo\n";
        let (findings, honored) = audit_source("f.rs", src, FileClass::all());
        let got: Vec<&str> = findings.iter().map(|f| f.lint).collect();
        assert_eq!(got, vec!["panic-unwrap", "pragma-unknown-lint"]);
        assert_eq!(honored, 0);
    }

    #[test]
    fn meta_lints_cannot_be_pragmad_away() {
        let src = "// audit:allow(pragma-missing-reason): nope\nlet a = 1;\n";
        let (findings, _) = audit_source("f.rs", src, FileClass::all());
        assert_eq!(findings[0].lint, "pragma-unknown-lint");
    }

    #[test]
    fn crate_root_attr_check() {
        let src = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        let class = FileClass {
            crate_root: true,
            ..FileClass::all()
        };
        let (findings, _) = audit_source("src/lib.rs", src, class);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, "crate-attrs");
        assert!(findings[0]
            .message
            .contains("missing_debug_implementations"));
        let clean =
            "#![forbid(unsafe_code)]\n#![deny(missing_debug_implementations)]\npub fn f() {}\n";
        let (findings, _) = audit_source("src/lib.rs", clean, class);
        assert!(findings.is_empty());
    }

    #[test]
    fn workspace_root_discovery() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/audit");
        assert!(root.join("crates/audit/Cargo.toml").is_file());
    }
}
