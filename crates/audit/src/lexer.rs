//! A small hand-rolled lexer for the audit pass.
//!
//! The auditor never needs a full Rust parse — every lint in the roster
//! keys off tokens that survive a much cheaper transformation:
//!
//! 1. **Scrubbing** — comments, string/char literals and attributes are
//!    blanked out (replaced by spaces, newlines preserved), so `"panic!"`
//!    inside a string or `#[doc = "…unwrap()…"]` can never trip a lint.
//!    Rust's nesting block comments, raw strings (`r#"…"#`), byte strings
//!    and the char-literal/lifetime ambiguity (`'a'` vs `'a`) are handled.
//! 2. **Pragma capture** — `// audit:allow(<lint>): <reason>` comments are
//!    parsed *before* they are blanked and reported with their position,
//!    so the driver can suppress findings (and police missing reasons).
//! 3. **Test-region marking** — every item annotated `#[cfg(test)]` (the
//!    trailing `mod tests { … }` block, but also single fields or
//!    functions) is mapped to a per-line `is_test` mask; content lints
//!    skip those lines entirely.
//!
//! The scrub is byte-for-byte length-preserving, so every column/line in
//! the scrubbed text maps 1:1 onto the original source.

// Byte-scanner: every `bytes[i]` sits under an `i < bytes.len()` loop
// condition or a helper whose return is clamped to the buffer length, and
// the scrub is length-preserving so parallel masks share those bounds.
// audit:allow-file(slice-index): scanner indices are loop-guarded against the buffer length; masks share it via the length-preserving scrub

/// One `// audit:allow(...)` (or `audit:allow-file(...)`) pragma comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based source line the comment sits on.
    pub line: usize,
    /// Lint name between the parens (empty when malformed).
    pub lint: String,
    /// Reason text after the closing `):` (trimmed; may be empty).
    pub reason: String,
    /// `audit:allow-file` — applies to the whole file.
    pub file_wide: bool,
    /// The comment is alone on its line (suppresses the *next* code
    /// line); otherwise it trails code and suppresses its own line.
    pub whole_line: bool,
    /// Comment looked like a pragma but did not parse as
    /// `audit:allow(<lint>): <reason>`.
    pub malformed: bool,
}

/// The scrubbed view of one source file.
#[derive(Debug, Clone)]
pub struct Scrubbed {
    /// Scrubbed source lines (comments/strings/attributes blanked).
    pub lines: Vec<String>,
    /// Original source lines (for snippets).
    pub raw_lines: Vec<String>,
    /// Per-line flag: line belongs to a `#[cfg(test)]` item.
    pub is_test: Vec<bool>,
    /// All `audit:allow` pragmas found in line comments.
    pub pragmas: Vec<Pragma>,
}

impl Scrubbed {
    /// Line count of the file.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when the file has no lines at all.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Scrubs `source`, capturing pragmas and test regions along the way.
pub fn scrub(source: &str) -> Scrubbed {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut pragmas = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = line_end(bytes, i);
                if let Some(p) = parse_pragma(source, bytes, i, end) {
                    pragmas.push(p);
                }
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let end = block_comment_end(bytes, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'"' => {
                let end = string_end(bytes, i + 1);
                blank(&mut out, i, end);
                i = end;
            }
            b'r' | b'b' if raw_string_hashes(bytes, i).is_some() => {
                // `r"…"`, `r#"…"#`, `br##"…"##` — the helper returns the
                // hash count and the index of the opening quote.
                let (hashes, open) = match raw_string_hashes(bytes, i) {
                    Some(v) => v,
                    None => break, // unreachable: guarded above
                };
                let end = raw_string_end(bytes, open + 1, hashes);
                blank(&mut out, i, end);
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let end = string_end(bytes, i + 2);
                blank(&mut out, i, end);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    // A lifetime (`'a`) — skip the quote, keep going.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    // Mark `#[cfg(test)]` items *before* attributes are blanked, then
    // blank every attribute so `#[derive(…)]` tokens can't trip lints.
    let test_mask = test_byte_mask(&out);
    blank_attributes(&mut out);

    let scrubbed = String::from_utf8_lossy(&out).into_owned();
    let lines: Vec<String> = scrubbed.split('\n').map(str::to_owned).collect();
    let raw_lines: Vec<String> = source.split('\n').map(str::to_owned).collect();
    let mut is_test = vec![false; lines.len()];
    let mut line = 0;
    for (idx, &b) in out.iter().enumerate() {
        if test_mask[idx] && line < is_test.len() {
            is_test[line] = true;
        }
        if b == b'\n' {
            line += 1;
        }
    }
    Scrubbed {
        lines,
        raw_lines,
        is_test,
        pragmas,
    }
}

fn line_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

fn block_comment_end(bytes: &[u8], mut i: usize) -> usize {
    // Rust block comments nest.
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    bytes.len()
}

fn string_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// If position `i` starts a raw-string prefix (`r`/`br` + hashes +
/// quote), returns `(hash_count, index_of_opening_quote)`.
fn raw_string_hashes(bytes: &[u8], mut i: usize) -> Option<(usize, usize)> {
    // Raw strings only start a literal when the `r` is not part of a
    // longer identifier (`for`, `ptr`, …).
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return None;
    }
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) == Some(&b'"') {
        Some((hashes, i))
    } else {
        None
    }
}

fn raw_string_end(bytes: &[u8], mut i: usize, hashes: usize) -> usize {
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// Distinguishes `'a'` / `'\n'` (char literals — returns the end index)
/// from `'a` lifetimes (returns `None`).
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escape: scan to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                b'\n' => return None,
                _ => j += 1,
            }
        }
        return None;
    }
    if is_ident_byte(next) {
        // `'a'` is a literal, `'a` / `'static` are lifetimes: a literal
        // has exactly one identifier byte before the closing quote.
        if bytes.get(i + 2) == Some(&b'\'') {
            return Some(i + 3);
        }
        return None;
    }
    // Non-identifier char (`'+'`, `'('`, multi-byte UTF-8): find the
    // closing quote on the same line.
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] != b'\n' && j - i < 8 {
        if bytes[j] == b'\'' {
            return Some(j + 1);
        }
        j += 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for slot in out.iter_mut().take(to).skip(from) {
        if *slot != b'\n' {
            *slot = b' ';
        }
    }
}

/// Parses one `//` comment into a [`Pragma`] when it contains
/// `audit:allow`. Returns `None` for ordinary comments.
fn parse_pragma(source: &str, bytes: &[u8], start: usize, end: usize) -> Option<Pragma> {
    let text = source.get(start + 2..end)?.trim();
    let body = text.strip_prefix("audit:")?;
    let line = 1 + bytes[..start].iter().filter(|&&b| b == b'\n').count();
    // Whole-line pragmas: nothing but whitespace before the `//`.
    let line_start = bytes[..start]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    let whole_line = bytes[line_start..start].iter().all(u8::is_ascii_whitespace);
    let (file_wide, rest) = if let Some(r) = body.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("allow") {
        (false, r)
    } else {
        return Some(Pragma {
            line,
            lint: String::new(),
            reason: String::new(),
            file_wide: false,
            whole_line,
            malformed: true,
        });
    };
    let malformed_at = |line| Pragma {
        line,
        lint: String::new(),
        reason: String::new(),
        file_wide,
        whole_line,
        malformed: true,
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(malformed_at(line));
    };
    let Some(close) = rest.find(')') else {
        return Some(malformed_at(line));
    };
    let lint = rest[..close].trim().to_owned();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map_or("", str::trim).to_owned();
    Some(Pragma {
        line,
        lint,
        reason,
        file_wide,
        whole_line,
        malformed: false,
    })
}

/// Byte mask of every `#[cfg(test)]`-annotated item (attribute included).
fn test_byte_mask(scrubbed: &[u8]) -> Vec<bool> {
    let mut mask = vec![false; scrubbed.len()];
    let mut i = 0;
    while i < scrubbed.len() {
        if scrubbed[i] == b'#' {
            let (attr_end, is_cfg_test) = attribute_span(scrubbed, i);
            if is_cfg_test {
                let item_end = item_extent(scrubbed, attr_end).min(mask.len());
                for slot in mask.iter_mut().take(item_end).skip(i) {
                    *slot = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// From a `#` at `i`, returns `(end_of_attribute, is_cfg_test)`. When the
/// `#` does not open an attribute, the span is `i + 1`.
fn attribute_span(bytes: &[u8], i: usize) -> (usize, bool) {
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'!') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'[') {
        return (i + 1, false);
    }
    let mut depth = 0usize;
    let open = j;
    while j < bytes.len() {
        match bytes[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let content: String = bytes[open + 1..j]
                        .iter()
                        .map(|&b| b as char)
                        .filter(|c| !c.is_whitespace())
                        .collect();
                    // `cfg(test)` plus combinators like `cfg(all(test,…))`.
                    let is_test = content.starts_with("cfg(") && has_word(&content, "test");
                    return (j + 1, is_test);
                }
            }
            _ => {}
        }
        j += 1;
    }
    (bytes.len(), false)
}

fn has_word(haystack: &str, word: &str) -> bool {
    let b = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_byte(b[start - 1]);
        let right_ok = end == b.len() || !is_ident_byte(b[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// The extent of the item that starts after a `#[cfg(test)]` attribute:
/// skips any further attributes, then runs to the matching `}` of the
/// item's first brace block, or to the first `;`/`,`/closing-`}` before
/// any brace opens (fields, `use` items, type aliases).
fn item_extent(bytes: &[u8], mut i: usize) -> usize {
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'#' {
            let (end, _) = attribute_span(bytes, i);
            if end == i + 1 {
                break;
            }
            i = end;
        } else {
            break;
        }
    }
    let mut brace = 0usize;
    let mut paren = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => brace += 1,
            b'}' => {
                if brace <= 1 {
                    // Either the item's own block closes (brace == 1) or
                    // the *enclosing* block closes first (brace == 0 —
                    // a trailing field with no comma): stop here.
                    return if brace == 1 { i + 1 } else { i };
                }
                brace -= 1;
            }
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren = paren.saturating_sub(1),
            b';' | b',' if brace == 0 && paren == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

/// Blanks every attribute (`#[…]` / `#![…]`) in the scrubbed bytes.
fn blank_attributes(out: &mut [u8]) {
    let mut i = 0;
    while i < out.len() {
        if out[i] == b'#' {
            let (end, _) = attribute_span(out, i);
            if end > i + 1 {
                blank(out, i, end);
                i = end;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_strings_and_attributes() {
        let src =
            "let a = \"unwrap()\"; // has unwrap()\n#[doc = \"panic!\"]\nlet b = 1; /* panic! */\n";
        let s = scrub(src);
        let joined = s.lines.join("\n");
        assert!(!joined.contains("unwrap"), "{joined}");
        assert!(!joined.contains("panic"), "{joined}");
        assert!(joined.contains("let a ="));
        assert!(joined.contains("let b = 1;"));
    }

    #[test]
    fn preserves_line_structure() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e\n";
        let s = scrub(src);
        assert_eq!(s.len(), src.split('\n').count());
        assert_eq!(s.raw_lines.len(), s.lines.len());
    }

    #[test]
    fn handles_raw_strings_and_nested_comments() {
        let src = "let x = r#\"unwrap() \" still\"#; /* outer /* panic! */ still */ let y = 2;\n";
        let s = scrub(src);
        assert!(!s.lines[0].contains("unwrap"));
        assert!(!s.lines[0].contains("panic"));
        assert!(s.lines[0].contains("let y = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'y';\nlet d = '\\n';\n";
        let s = scrub(src);
        assert!(s.lines[0].contains("fn f"), "{}", s.lines[0]);
        assert!(s.lines[0].contains("str"), "lifetime scrub ate code");
        assert!(
            !s.lines[1].contains('y'),
            "char literal kept: {}",
            s.lines[1]
        );
    }

    #[test]
    fn ident_prefixed_r_is_not_a_raw_string() {
        let src = "for x in pr {\n  let s = \"done\";\n}\n";
        let s = scrub(src);
        assert!(s.lines[0].contains("for x in pr {"));
        assert!(s.lines[2].contains('}'));
    }

    #[test]
    fn marks_cfg_test_mod_regions() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let s = scrub(src);
        assert!(!s.is_test[0]);
        assert!(s.is_test[1] && s.is_test[2] && s.is_test[3] && s.is_test[4]);
        assert!(!s.is_test[5]);
    }

    #[test]
    fn marks_cfg_test_fields_and_fns_only() {
        let src = "struct S {\n    a: u32,\n    #[cfg(test)]\n    pivots: usize,\n    b: u32,\n}\n#[cfg(test)]\nfn helper() {\n    boom();\n}\nfn live() {}\n";
        let s = scrub(src);
        assert!(!s.is_test[1], "plain field");
        assert!(s.is_test[3], "cfg(test) field");
        assert!(!s.is_test[4], "field after");
        assert!(s.is_test[7] && s.is_test[8], "cfg(test) fn body");
        assert!(!s.is_test[10], "fn after");
    }

    #[test]
    fn cfg_test_trailing_field_without_comma_stays_inside_struct() {
        let src = "struct S {\n    #[cfg(test)]\n    pivots: usize\n}\nfn live() {}\n";
        let s = scrub(src);
        assert!(s.is_test[2]);
        assert!(!s.is_test[4], "code after the struct is live");
    }

    #[test]
    fn parses_pragmas() {
        let src = "x(); // audit:allow(panic-unwrap): checked above\n// audit:allow-file(slice-index): dense kernel\n// audit:allow(slice-index)\n// audit:allowance\n";
        let s = scrub(src);
        assert_eq!(s.pragmas.len(), 4);
        let p = &s.pragmas[0];
        assert_eq!(
            (p.line, p.lint.as_str(), p.reason.as_str()),
            (1, "panic-unwrap", "checked above")
        );
        assert!(!p.whole_line && !p.file_wide && !p.malformed);
        let p = &s.pragmas[1];
        assert!(p.file_wide && p.whole_line && !p.malformed);
        assert_eq!(p.reason, "dense kernel");
        let p = &s.pragmas[2];
        assert!(!p.malformed, "missing reason parses, reason is empty");
        assert_eq!(p.reason, "");
        assert!(s.pragmas[3].malformed, "audit:allowance is not a pragma");
    }

    #[test]
    fn cfg_not_test_attributes_are_not_test_regions() {
        let src = "#[cfg(feature = \"testing\")]\nfn live() { x.unwrap(); }\n";
        let s = scrub(src);
        assert!(!s.is_test[1], "cfg(feature=testing) is not cfg(test)");
    }
}
