//! `dpss-audit` — run the workspace lint pass from the command line.
//!
//! ```text
//! dpss-audit [--json] [--root DIR] [--path FILE_OR_DIR]...
//! ```
//!
//! Exit codes follow the workspace CLI conventions: `0` clean, `1`
//! findings, `2` usage error. `--json` prints the machine report and
//! also writes it to `<root>/target/audit.json`.

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Default)]
struct Args {
    json: bool,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn usage() -> String {
    format!(
        "dpss-audit — static determinism/panic-safety/hygiene lints for the \
         SmartDPSS workspace\n\n\
         USAGE:\n  dpss-audit [--json] [--root DIR] [--path FILE_OR_DIR]...\n\n\
         Without --path, audits the workspace (crates/*/src + src/) with the\n\
         scoped lint policy; --path audits explicit files/dirs with every\n\
         content lint enabled (the fixture-corpus mode).\n\n\
         Suppress a finding with `// audit:allow(<lint>): <reason>` (trailing\n\
         or on the line above) or `// audit:allow-file(<lint>): <reason>`;\n\
         the reason is mandatory and enforced.\n\n\
         LINTS:\n  {}",
        dpss_audit::LINT_NAMES.join("\n  ")
    )
}

fn parse(args: Vec<String>) -> Result<Args, String> {
    let mut parsed = Args::default();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => parsed.json = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                parsed.root = Some(PathBuf::from(v));
            }
            "--path" => {
                let v = it.next().ok_or("--path needs a value")?;
                parsed.paths.push(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(parsed)
}

fn run(args: Args) -> Result<dpss_audit::AuditReport, String> {
    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            dpss_audit::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };
    if !root.is_dir() {
        return Err(format!("root is not a directory: {}", root.display()));
    }
    let report = if args.paths.is_empty() {
        dpss_audit::audit_workspace(&root).map_err(|e| e.to_string())?
    } else {
        dpss_audit::audit_paths(&root, &args.paths).map_err(|e| e.to_string())?
    };
    if args.json {
        let target = root.join("target");
        let _ = std::fs::create_dir_all(&target);
        std::fs::write(target.join("audit.json"), report.to_json())
            .map_err(|e| format!("writing target/audit.json: {e}"))?;
    }
    Ok(report)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("dpss-audit: error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let json = args.json;
    match run(args) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                println!("{}", report.render());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("dpss-audit: error: {msg}");
            ExitCode::from(2)
        }
    }
}
