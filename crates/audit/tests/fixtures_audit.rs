//! The fixture corpus: one deliberately dirty file per lint family under
//! `tests/fixtures/`, with every expected finding pinned exactly. These
//! files are never compiled (cargo only builds top-level `tests/*.rs`)
//! and never scanned by the workspace walk (which covers `src/` trees
//! only) — they exist purely as the auditor's regression corpus.
//!
//! Also the self-check: the live workspace must audit clean under its own
//! auditor, and the CLI must honor the documented exit-code contract
//! (0 clean, 1 findings, 2 usage).

use std::path::{Path, PathBuf};
use std::process::Command;

use dpss_audit::{audit_paths, audit_source, find_workspace_root, FileClass};

fn workspace_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root exists")
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_corpus_findings_are_pinned_exactly() {
    let root = workspace_root();
    let report = audit_paths(&root, &[fixtures_dir()]).expect("fixtures readable");

    let got: Vec<(&str, usize, &str)> = report
        .findings
        .iter()
        .map(|f| {
            let name = f.file.rsplit('/').next().expect("non-empty label");
            (name, f.line, f.lint)
        })
        .collect();
    let expected = vec![
        // dirty_crate_root.rs: nothing — `crate-attrs` needs the
        // crate-root class, exercised separately below.
        ("dirty_determinism.rs", 3, "hash-container"),
        ("dirty_determinism.rs", 4, "hash-container"),
        ("dirty_determinism.rs", 7, "wall-clock"),
        ("dirty_determinism.rs", 12, "unseeded-rng"),
        ("dirty_determinism.rs", 13, "unseeded-rng"),
        ("dirty_determinism.rs", 16, "hash-container"),
        ("dirty_determinism.rs", 17, "unordered-float-sum"),
        ("dirty_hygiene.rs", 4, "unit-cast"),
        ("dirty_panic.rs", 4, "slice-index"),
        ("dirty_panic.rs", 8, "panic-unwrap"),
        ("dirty_panic.rs", 12, "panic-unwrap"),
        ("dirty_panic.rs", 16, "panic-explicit"),
        // dirty_pragmas.rs: lines 4 and 9 are suppressed by reasoned
        // pragmas; a reasonless pragma suppresses nothing and is itself
        // flagged; an unknown lint name likewise.
        ("dirty_pragmas.rs", 13, "panic-unwrap"),
        ("dirty_pragmas.rs", 13, "pragma-missing-reason"),
        ("dirty_pragmas.rs", 17, "pragma-unknown-lint"),
        ("dirty_pragmas.rs", 17, "slice-index"),
    ];
    assert_eq!(got, expected, "full report:\n{}", report.render());
    assert_eq!(report.files_scanned, 5);
    assert_eq!(
        report.pragmas_seen, 2,
        "only the two reasoned pragmas are honored"
    );
}

#[test]
fn crate_root_fixture_is_missing_both_attributes() {
    let src = std::fs::read_to_string(fixtures_dir().join("dirty_crate_root.rs"))
        .expect("fixture exists");
    let class = FileClass {
        crate_root: true,
        ..FileClass::all()
    };
    let (findings, _) = audit_source("dirty_crate_root.rs", &src, class);
    let got: Vec<&str> = findings.iter().map(|f| f.lint).collect();
    assert_eq!(got, vec!["crate-attrs", "crate-attrs"], "{findings:#?}");
    assert!(findings[0].message.contains("forbid(unsafe_code)"));
    assert!(findings[1]
        .message
        .contains("missing_debug_implementations"));
}

#[test]
fn live_workspace_audits_clean() {
    let root = workspace_root();
    let report = dpss_audit::audit_workspace(&root).expect("workspace readable");
    assert!(
        report.is_clean(),
        "the workspace must stay clean under its own auditor:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 50, "scope unexpectedly small");
    assert!(report.pragmas_seen > 0, "known allows should be honored");
}

#[test]
fn cli_exit_codes_follow_the_contract() {
    let bin = env!("CARGO_BIN_EXE_dpss-audit");
    let root = workspace_root();

    // Clean workspace → exit 0.
    let ok = Command::new(bin)
        .args(["--root", &root.display().to_string()])
        .output()
        .expect("binary runs");
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");
    assert!(String::from_utf8_lossy(&ok.stdout).contains("clean"));

    // Dirty fixtures → exit 1, findings on stdout.
    let dirty = Command::new(bin)
        .args([
            "--root",
            &root.display().to_string(),
            "--path",
            &fixtures_dir().display().to_string(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(dirty.status.code(), Some(1), "{dirty:?}");
    let out = String::from_utf8_lossy(&dirty.stdout);
    assert!(out.contains("pragma-missing-reason"), "{out}");

    // Bad flag → exit 2, usage on stderr.
    let usage = Command::new(bin)
        .arg("--bogus")
        .output()
        .expect("binary runs");
    assert_eq!(usage.status.code(), Some(2), "{usage:?}");
    assert!(String::from_utf8_lossy(&usage.stderr).contains("USAGE"));
}
