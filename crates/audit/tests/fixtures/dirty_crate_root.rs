//! Crate-root fixture — missing both required hygiene attributes.

pub fn nothing() {}
