//! Panic-safety fixture — unwrap/expect/panic!/indexing in library code.

pub fn first(xs: &[f64]) -> f64 {
    xs[0]
}

pub fn loud(x: Option<f64>) -> f64 {
    x.unwrap()
}

pub fn named(x: Option<f64>) -> f64 {
    x.expect("present by fixture contract")
}

pub fn boom() -> ! {
    panic!("fixture")
}

#[cfg(test)]
mod tests {
    pub fn exempt(x: Option<f64>) -> f64 {
        x.unwrap()
    }
}
