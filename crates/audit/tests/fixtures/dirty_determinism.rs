//! Determinism fixture — every finding is pinned by `fixtures_audit`.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn wall() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs()
}

pub fn entropy() -> u64 {
    let mut rng = thread_rng();
    rng.next() ^ rand::random::<u64>()
}

pub fn hash_sum(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum()
}
