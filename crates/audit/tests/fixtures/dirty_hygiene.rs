//! Unit-hygiene fixture — a raw `as` cast next to a unit extractor.

pub fn leak(cost: Money, energy: Energy) -> (u64, f64) {
    (cost.dollars() as u64, energy.mwh() as f64)
}
