//! Pragma fixture — suppression, the reason rule, and unknown lints.

pub fn suppressed(xs: &[f64], i: usize) -> f64 {
    xs[i] // audit:allow(slice-index): i is validated by the caller
}

pub fn covered(x: Option<f64>) -> f64 {
    // audit:allow(panic-unwrap): fixture invariant covers the next line
    x.unwrap()
}

pub fn reasonless(x: Option<f64>) -> f64 {
    x.unwrap() // audit:allow(panic-unwrap)
}

pub fn typo(xs: &[f64]) -> f64 {
    xs[0] // audit:allow(slice-indexing): the lint name is wrong
}
