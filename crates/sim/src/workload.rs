//! The request layer: per-site admission/queue model and the fleet
//! workload ledger the routed dispatch loop settles against.
//!
//! SmartDPSS treats demand as exogenous; this module makes part of it
//! *dispatchable*. Each site receives a request-arrival stream (the
//! `arrivals` series of its trace set, in IT energy per fine slot),
//! split per coarse frame into an *interactive* share — latency-bound,
//! served on arrival at the site's frame-mean real-time price — and a
//! *deferrable* share that enters a bounded-age queue. Deferrable work
//! can be:
//!
//! * **absorbed** — served with energy the site curtailed this frame
//!   (free: the energy was already paid for and would otherwise be
//!   wasted);
//! * **migrated** — moved over an open interconnect link (bounded by the
//!   per-link migration cap) and absorbed by the *host*'s curtailment in
//!   the same frame;
//! * **served at spot** — billed at the site's frame-mean real-time
//!   price; or
//! * **deferred** — left in the queue for a cheaper frame, never past
//!   its due frame.
//!
//! Deferral uses the prospective rule: leftover deferrable work is
//! served now unless a strictly cheaper frame-mean price exists within
//! its remaining life (the planner sees the frame-mean price series, the
//! deterministic stand-in for the paper's price forecast). Work due this
//! frame is always served, so the queue-age bound holds by construction,
//! and every deferrable unit settles at a price no higher than its
//! arrival frame's — which makes co-optimized routing structurally no
//! more expensive than serving on arrival ([`FleetWorkload::
//! serve_on_arrival`], the `--routing off` baseline). The load
//! conservation suite pins all of this.

// `FleetWorkload::new` validates that every per-site series shares one
// frame count and that the arrival/spot/queue rosters are congruent; the
// cursor assertions in `frame_load`/`settle` keep `frame` inside that
// horizon, and all site loops run over `0..site_count()`.
// audit:allow-file(slice-index): rosters are congruent by construction and frames bounded by the cursor assertions

use std::fmt;

use dpss_units::{Energy, Money};

use crate::{
    FleetDispatcher, FrameDirective, FrameExchange, FrameOutlook, FrameSettlement, Interconnect,
    SimError,
};

/// Whether the fleet loop co-optimizes workload flows alongside energy
/// flows ([`MultiSiteEngine::run_routed`](crate::MultiSiteEngine::run_routed))
/// or leaves the request layer untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingMode {
    /// Requests are served on arrival at each site; the engine behaves
    /// byte-for-byte like the pre-routing code paths.
    Off,
    /// The dispatcher plans absorption and migration flows each frame,
    /// and deferrable work may wait (within its age bound) for cheaper
    /// frames.
    CoOptimized,
}

impl RoutingMode {
    /// The closed roster of mode names, in declaration order.
    pub const NAMES: [&'static str; 2] = ["off", "co-optimized"];

    /// Parses a mode name from the closed roster.
    ///
    /// # Errors
    ///
    /// A usage-style message naming the roster, for CLI surfaces.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "off" => Ok(RoutingMode::Off),
            "co-optimized" => Ok(RoutingMode::CoOptimized),
            other => Err(format!(
                "unknown routing mode: {other} (expected {})",
                Self::NAMES.join("|")
            )),
        }
    }
}

impl fmt::Display for RoutingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RoutingMode::Off => "off",
            RoutingMode::CoOptimized => "co-optimized",
        })
    }
}

/// Parameters of the per-site admission/queue model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingConfig {
    /// Share of each frame's arrivals that is latency-bound and must be
    /// served on arrival, in `[0, 1]`.
    pub interactive_fraction: f64,
    /// Maximum coarse frames a deferrable request may wait before it is
    /// force-served (the queue-age bound `A`).
    pub max_queue_age: usize,
    /// Per-open-link, per-frame cap on migrated work (IT energy).
    pub migration_cap: Energy,
}

impl RoutingConfig {
    /// Defaults sized against the paper's site: a little over half the
    /// arrivals are interactive, deferrable work may wait two coarse
    /// frames (two days on the paper calendar), and each link moves at
    /// most 1 MWh of work per frame.
    #[must_use]
    pub fn icdcs13() -> Self {
        RoutingConfig {
            interactive_fraction: 0.55,
            max_queue_age: 2,
            migration_cap: Energy::from_mwh(1.0),
        }
    }

    /// Sets the interactive share.
    #[must_use]
    pub fn with_interactive_fraction(mut self, fraction: f64) -> Self {
        self.interactive_fraction = fraction;
        self
    }

    /// Sets the queue-age bound in coarse frames.
    #[must_use]
    pub fn with_max_queue_age(mut self, frames: usize) -> Self {
        self.max_queue_age = frames;
        self
    }

    /// Sets the per-link, per-frame migration cap.
    #[must_use]
    pub fn with_migration_cap(mut self, cap: Energy) -> Self {
        self.migration_cap = cap;
        self
    }

    /// Validates the documented ranges.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.interactive_fraction.is_finite()
            && (0.0..=1.0).contains(&self.interactive_fraction))
        {
            return Err(SimError::InvalidParameter {
                what: "interactive_fraction",
                requirement: "must be within [0, 1]",
            });
        }
        if !(self.migration_cap.is_finite() && self.migration_cap.mwh() >= 0.0) {
            return Err(SimError::InvalidParameter {
                what: "migration_cap",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// One planned workload flow: `amount` of site `from`'s queued work
/// served by site `to`'s curtailed energy this frame. `from == to` is
/// local absorption; `from != to` is migration over the interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadFlow {
    /// Donor site (whose queue shrinks).
    pub from: usize,
    /// Host site (whose curtailment serves the work).
    pub to: usize,
    /// Work moved, in IT energy.
    pub amount: Energy,
}

/// A dispatcher's workload plan for one coarse frame: absorption and
/// migration flows. The default (empty) plan absorbs nothing — the
/// deferral rule still applies, so an empty plan is *not* the `off`
/// baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadPlan {
    /// Planned flows. [`FleetWorkload::settle`] clamps every flow
    /// against donor availability, the per-link migration cap, link
    /// openness and the host's gross curtailment, in roster order — a
    /// plan can therefore never create or destroy work, only route it.
    pub absorb: Vec<LoadFlow>,
}

/// The workload side of one coarse frame, as the routed dispatcher sees
/// it before planning: per-site deferrable availability and prices, in
/// site-index order.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadFrame {
    /// The coarse frame about to settle.
    pub frame: usize,
    /// Deferrable work available to absorb or migrate per site (queued
    /// backlog plus this frame's deferrable arrivals).
    pub available: Vec<Energy>,
    /// The share of `available` that is due this frame (will be served
    /// unconditionally if not absorbed).
    pub due: Vec<Energy>,
    /// Frame-mean real-time price per site, $/MWh — what unabsorbed work
    /// is billed at.
    pub spot: Vec<f64>,
}

/// Per-frame workload accounting, fleet-aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadFrameRecord {
    /// The coarse frame.
    pub frame: usize,
    /// Work that arrived this frame (interactive + deferrable).
    pub arrived: Energy,
    /// Work served at spot prices this frame (interactive, due, and
    /// deferrable the deferral rule released).
    pub served_spot: Energy,
    /// Work served by local curtailment (self flows).
    pub absorbed: Energy,
    /// Work migrated to and absorbed at another site.
    pub migrated: Energy,
    /// Queued work remaining at frame end.
    pub backlog: Energy,
    /// Workload bill for the frame.
    pub cost: Money,
}

/// End-of-run workload totals. The default value (all zeros) is what
/// every non-routed run reports — the request layer inert.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadTotals {
    /// Total work that arrived over the horizon.
    pub arrived: Energy,
    /// Total work served at spot prices.
    pub served_spot: Energy,
    /// Total work served by local curtailment.
    pub absorbed: Energy,
    /// Total work migrated cross-site and absorbed at its host.
    pub migrated: Energy,
    /// Queued work left at the end of the horizon (zero by construction:
    /// deferrable life never extends past the last frame).
    pub final_backlog: Energy,
    /// Longest realized wait of any served work, in coarse frames.
    pub max_wait_frames: usize,
    /// MWh·frames of realized wait summed over all queue-served work —
    /// the numerator of [`mean_wait_frames`](Self::mean_wait_frames).
    pub wait_frames_mwh: f64,
    /// Total MWh drained from the deferrable queues (absorbed, migrated
    /// or released to spot) — the matching denominator.
    pub queue_served_mwh: f64,
    /// Total workload bill.
    pub cost: Money,
    /// Per-frame accounting, in frame order.
    pub frames: Vec<LoadFrameRecord>,
}

impl LoadTotals {
    /// Whether the request layer did anything at all (false for every
    /// non-routed run).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self == &LoadTotals::default()
    }

    /// MWh-weighted mean queueing delay of deferrable work, in coarse
    /// frames (zero when nothing was queued — e.g. serve-on-arrival).
    #[must_use]
    pub fn mean_wait_frames(&self) -> f64 {
        if self.queue_served_mwh > 0.0 {
            self.wait_frames_mwh / self.queue_served_mwh
        } else {
            0.0
        }
    }
}

/// A fleet dispatch policy that co-optimizes workload flows alongside
/// energy flows: [`direct`](Self::direct) and the energy half of
/// [`settle_routed`](Self::settle_routed) mirror [`FleetDispatcher`];
/// the workload half returns a [`LoadPlan`] over the same frame.
///
/// Both methods must be deterministic functions of the dispatcher's own
/// history and their arguments — the routed determinism suite holds
/// implementations to that.
pub trait RoutedDispatcher {
    /// The topology this dispatcher plans over (`None` opts out of
    /// validation), mirroring [`FleetDispatcher::topology`].
    fn topology(&self) -> Option<&Interconnect> {
        None
    }

    /// Plans energy directives for the coming frame, mirroring
    /// [`FleetDispatcher::direct`].
    fn direct(&mut self, outlook: &FrameOutlook) -> Vec<FrameDirective> {
        let _ = outlook;
        Vec::new()
    }

    /// Settles one realized frame: the energy settlement over `ex` plus
    /// the workload plan over `load`.
    fn settle_routed(
        &mut self,
        ex: &FrameExchange,
        load: &LoadFrame,
    ) -> (FrameSettlement, LoadPlan);
}

/// Queued deferrable work that arrived together and falls due together.
#[derive(Debug, Clone, Copy)]
struct Cohort {
    /// Frame the work must be served by.
    due: usize,
    /// Frame the work arrived.
    arrived: usize,
    amount: Energy,
}

/// The fleet's workload ledger: per-site bounded-age queues stepped one
/// coarse frame at a time, in lockstep with the routed dispatch loop.
///
/// All quantities are aggregated per coarse frame (arrivals are summed
/// over the frame's fine slots; billing uses the frame-mean real-time
/// price), matching the frame granularity at which the fleet dispatcher
/// plans.
#[derive(Debug, Clone)]
pub struct FleetWorkload {
    config: RoutingConfig,
    frames: usize,
    /// `[site][frame]` arrival totals.
    arrivals: Vec<Vec<Energy>>,
    /// `[site][frame]` frame-mean real-time price, $/MWh.
    spot: Vec<Vec<f64>>,
    queues: Vec<Vec<Cohort>>,
    totals: LoadTotals,
    /// Next frame to admit (`frame_load`) / settle (`settle`); the two
    /// must alternate.
    cursor: usize,
    admitted: bool,
}

impl FleetWorkload {
    /// Builds the ledger from per-site, per-frame arrival totals and
    /// frame-mean spot prices.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the rosters are empty or a site's
    /// series disagree on frame count; propagates
    /// [`RoutingConfig::validate`] errors.
    pub fn new(
        config: RoutingConfig,
        arrivals: Vec<Vec<Energy>>,
        spot: Vec<Vec<f64>>,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let first = arrivals.first().ok_or(SimError::SiteMismatch {
            site: 0,
            what: "workload needs at least one site",
        })?;
        let frames = first.len();
        if spot.len() != arrivals.len() {
            return Err(SimError::SiteMismatch {
                site: spot.len(),
                what: "spot-price roster length differs from arrival roster",
            });
        }
        for (i, (a, s)) in arrivals.iter().zip(&spot).enumerate() {
            if a.len() != frames || s.len() != frames {
                return Err(SimError::SiteMismatch {
                    site: i,
                    what: "workload series disagree on frame count",
                });
            }
        }
        let sites = arrivals.len();
        Ok(FleetWorkload {
            config,
            frames,
            arrivals,
            spot,
            queues: vec![Vec::new(); sites],
            totals: LoadTotals::default(),
            cursor: 0,
            admitted: false,
        })
    }

    /// Number of sites in the roster.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.arrivals.len()
    }

    /// Admits frame `frame`'s arrivals (interactive served immediately,
    /// deferrable queued with a horizon-capped life) and returns the
    /// workload view the dispatcher plans from.
    ///
    /// # Panics
    ///
    /// Panics if frames are admitted out of order or admitted twice
    /// without settling.
    pub fn frame_load(&mut self, frame: usize) -> LoadFrame {
        assert_eq!(frame, self.cursor, "frames must be admitted in order");
        assert!(!self.admitted, "frame {frame} admitted twice");
        self.admitted = true;
        let f = self.config.interactive_fraction;
        let sites = self.site_count();
        let mut record = LoadFrameRecord {
            frame,
            ..LoadFrameRecord::default()
        };
        let mut available = Vec::with_capacity(sites);
        let mut due = Vec::with_capacity(sites);
        let mut spot = Vec::with_capacity(sites);
        for i in 0..sites {
            let arrived = self.arrivals[i][frame];
            let price = self.spot[i][frame];
            record.arrived += arrived;
            let interactive = arrived * f;
            let deferrable = arrived - interactive;
            // Interactive work is latency-bound: served on arrival at
            // the frame-mean spot price, exactly as in the off baseline.
            record.served_spot += interactive;
            record.cost += dpss_units::Price::from_dollars_per_mwh(price) * interactive;
            if deferrable > Energy::ZERO {
                // Life is capped by both the age bound and the horizon:
                // nothing is ever due past the last frame, so the run
                // always ends with an empty queue.
                let life = self
                    .config
                    .max_queue_age
                    .min(self.frames.saturating_sub(1).saturating_sub(frame));
                self.queues[i].push(Cohort {
                    due: frame + life,
                    arrived: frame,
                    amount: deferrable,
                });
            }
            let avail: Energy = self.queues[i].iter().map(|c| c.amount).sum();
            let due_now: Energy = self.queues[i]
                .iter()
                .filter(|c| c.due <= frame)
                .map(|c| c.amount)
                .sum();
            available.push(avail);
            due.push(due_now);
            spot.push(price);
        }
        // Totals accumulate once, at settle time, from the final record.
        self.totals.frames.push(record);
        LoadFrame {
            frame,
            available,
            due,
            spot,
        }
    }

    /// Settles frame `frame`: applies the dispatcher's (clamped) plan,
    /// force-serves due work, runs the deferral rule on the leftover and
    /// ages the queues.
    ///
    /// Clamping makes any plan safe: flows are applied in roster order,
    /// each clamped to the donor's remaining queue, the per-link
    /// migration cap, link openness on `ic` (cross-site flows over
    /// closed links move nothing) and the host's remaining gross
    /// curtailment from `ex`.
    ///
    /// # Panics
    ///
    /// Panics if the frame was not admitted via
    /// [`frame_load`](Self::frame_load) first, or if `ex` covers a
    /// different roster.
    pub fn settle(&mut self, frame: usize, ex: &FrameExchange, plan: &LoadPlan, ic: &Interconnect) {
        assert_eq!(frame, self.cursor, "frames must settle in order");
        assert!(self.admitted, "settle before frame_load");
        let sites = self.site_count();
        assert_eq!(ex.curtailed.len(), sites, "exchange roster mismatch");
        self.admitted = false;
        self.cursor += 1;

        // audit:allow(slice-index): record pushed by the paired frame_load above
        let mut record = self.totals.frames[frame];
        let mut host_budget: Vec<Energy> = ex.curtailed.clone();
        let mut link_budget: Vec<Energy> = vec![self.config.migration_cap; sites * sites];
        let mut waits = WaitStats {
            max_wait: self.totals.max_wait_frames,
            wait_frames_mwh: 0.0,
            drained_mwh: 0.0,
        };

        // 1. Planned absorption/migration, in plan order (the dispatcher
        //    emits flows in a deterministic roster order).
        for flow in &plan.absorb {
            let (i, j) = (flow.from, flow.to);
            if i >= sites || j >= sites || flow.amount <= Energy::ZERO {
                continue;
            }
            let mut amount = flow.amount;
            if i != j {
                // Migration needs an open link and cap headroom.
                if ic.cap_at(i, j, frame) <= Energy::ZERO {
                    continue;
                }
                // audit:allow(slice-index): i, j < sites checked above
                let budget = &mut link_budget[i * sites + j];
                amount = amount.min(*budget);
                *budget -= amount;
            }
            // audit:allow(slice-index): j < sites checked above
            amount = amount.min(host_budget[j]);
            let taken = drain_queue(&mut self.queues[i], amount, frame, &mut waits);
            host_budget[j] -= taken;
            if i == j {
                record.absorbed += taken;
            } else {
                record.migrated += taken;
            }
        }

        // 2. Force-serve due work, then release deferrable leftover when
        //    no strictly cheaper frame exists within its remaining life.
        for i in 0..sites {
            let price = self.spot[i][frame];
            let due: Energy = self.queues[i]
                .iter()
                .filter(|c| c.due <= frame)
                .map(|c| c.amount)
                .sum();
            let mut serve = drain_queue(&mut self.queues[i], due, frame, &mut waits);
            let release: Energy = self.queues[i]
                .iter()
                .filter(|c| {
                    // audit:allow(slice-index): cohort due frames never exceed the horizon by construction
                    !(frame + 1..=c.due).any(|k| self.spot[i][k] < price)
                })
                .map(|c| c.amount)
                .sum();
            serve += drain_queue(&mut self.queues[i], release, frame, &mut waits);
            record.served_spot += serve;
            record.cost += dpss_units::Price::from_dollars_per_mwh(price) * serve;
        }

        record.backlog = self.queues.iter().flatten().map(|c| c.amount).sum();
        // audit:allow(slice-index): record pushed by the paired frame_load above
        self.totals.frames[frame] = record;
        self.totals.arrived += record.arrived;
        self.totals.served_spot += record.served_spot;
        self.totals.absorbed += record.absorbed;
        self.totals.migrated += record.migrated;
        self.totals.cost += record.cost;
        self.totals.max_wait_frames = waits.max_wait;
        self.totals.wait_frames_mwh += waits.wait_frames_mwh;
        self.totals.queue_served_mwh += waits.drained_mwh;
    }

    /// Finishes the run and returns the totals.
    ///
    /// # Panics
    ///
    /// Panics if not every frame was settled.
    #[must_use]
    pub fn finish(mut self) -> LoadTotals {
        assert_eq!(self.cursor, self.frames, "not every frame settled");
        self.totals.final_backlog = self.queues.iter().flatten().map(|c| c.amount).sum();
        self.totals
    }

    /// The `--routing off` baseline over the same inputs: every arrival
    /// served on its arrival frame at that frame's mean spot price. A
    /// pure function of the input series — no queueing, no planning.
    #[must_use]
    pub fn serve_on_arrival(&self) -> LoadTotals {
        let mut totals = LoadTotals::default();
        for frame in 0..self.frames {
            let mut record = LoadFrameRecord {
                frame,
                ..LoadFrameRecord::default()
            };
            for i in 0..self.site_count() {
                let arrived = self.arrivals[i][frame];
                record.arrived += arrived;
                record.served_spot += arrived;
                record.cost +=
                    dpss_units::Price::from_dollars_per_mwh(self.spot[i][frame]) * arrived;
            }
            totals.arrived += record.arrived;
            totals.served_spot += record.served_spot;
            totals.cost += record.cost;
            totals.frames.push(record);
        }
        totals
    }
}

/// Realized-wait accounting folded out of [`drain_queue`]: the running
/// maximum plus the MWh-weighted wait mass and drained volume behind
/// [`LoadTotals::mean_wait_frames`].
struct WaitStats {
    max_wait: usize,
    wait_frames_mwh: f64,
    drained_mwh: f64,
}

/// Removes up to `amount` of work from `queue`, oldest due-date first
/// (ties broken by arrival order — the push order, which is frame
/// order). Returns what was actually taken and folds realized waits
/// into `waits`.
fn drain_queue(
    queue: &mut Vec<Cohort>,
    amount: Energy,
    frame: usize,
    waits: &mut WaitStats,
) -> Energy {
    if amount <= Energy::ZERO {
        return Energy::ZERO;
    }
    queue.sort_by_key(|c| (c.due, c.arrived));
    let mut left = amount;
    let mut taken = Energy::ZERO;
    for c in queue.iter_mut() {
        if left <= Energy::ZERO {
            break;
        }
        let take = c.amount.min(left);
        if take > Energy::ZERO {
            c.amount -= take;
            left -= take;
            taken += take;
            let waited = frame.saturating_sub(c.arrived);
            waits.max_wait = waits.max_wait.max(waited);
            // Coarse-frame counts stay tiny (a month is ~31), so the
            // integer→float conversion is exact.
            let frames = waited as f64;
            waits.wait_frames_mwh += (take * frames).mwh();
            waits.drained_mwh += take.mwh();
        }
    }
    queue.retain(|c| c.amount > Energy::ZERO);
    taken
}

/// Adapter: any [`FleetDispatcher`] runs in the routed loop with an
/// empty workload plan (no absorption or migration; the deferral rule
/// still applies). Useful for plumbing tests — production co-optimizers
/// implement [`RoutedDispatcher`] directly.
#[derive(Debug)]
pub struct UnroutedDispatcher<D>(pub D);

impl<D: FleetDispatcher> RoutedDispatcher for UnroutedDispatcher<D> {
    fn topology(&self) -> Option<&Interconnect> {
        self.0.topology()
    }

    fn direct(&mut self, outlook: &FrameOutlook) -> Vec<FrameDirective> {
        self.0.direct(outlook)
    }

    fn settle_routed(
        &mut self,
        ex: &FrameExchange,
        _load: &LoadFrame,
    ) -> (FrameSettlement, LoadPlan) {
        (self.0.settle(ex), LoadPlan::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_workload(sites: usize, frames: usize, arrive: f64, price: f64) -> FleetWorkload {
        FleetWorkload::new(
            RoutingConfig::icdcs13(),
            vec![vec![Energy::from_mwh(arrive); frames]; sites],
            vec![vec![price; frames]; sites],
        )
        .unwrap()
    }

    fn silent_exchange(frame: usize, sites: usize) -> FrameExchange {
        FrameExchange {
            frame,
            curtailed: vec![Energy::ZERO; sites],
            rt_energy: vec![Energy::ZERO; sites],
            rt_price: vec![0.0; sites],
        }
    }

    #[test]
    fn routing_mode_parses_the_closed_roster() {
        for name in RoutingMode::NAMES {
            let mode = RoutingMode::parse(name).unwrap();
            assert_eq!(mode.to_string(), name);
        }
        let err = RoutingMode::parse("bogus").unwrap_err();
        assert_eq!(
            err,
            "unknown routing mode: bogus (expected off|co-optimized)"
        );
    }

    #[test]
    fn config_validates_ranges() {
        assert!(RoutingConfig::icdcs13().validate().is_ok());
        assert!(RoutingConfig::icdcs13()
            .with_interactive_fraction(1.5)
            .validate()
            .is_err());
        assert!(RoutingConfig::icdcs13()
            .with_interactive_fraction(f64::NAN)
            .validate()
            .is_err());
        assert!(RoutingConfig::icdcs13()
            .with_migration_cap(Energy::from_mwh(-1.0))
            .validate()
            .is_err());
    }

    #[test]
    fn conservation_holds_with_empty_plans() {
        let mut w = flat_workload(2, 4, 1.0, 50.0);
        let ic = Interconnect::decoupled(2).unwrap();
        for frame in 0..4 {
            let load = w.frame_load(frame);
            assert_eq!(load.available.len(), 2);
            w.settle(frame, &silent_exchange(frame, 2), &LoadPlan::default(), &ic);
        }
        let t = w.finish();
        assert_eq!(t.arrived, Energy::from_mwh(8.0));
        // Flat prices: the deferral rule finds no cheaper future frame,
        // so everything is served on arrival.
        assert!((t.served_spot - t.arrived).mwh().abs() < 1e-12);
        assert_eq!(t.absorbed, Energy::ZERO);
        assert_eq!(t.migrated, Energy::ZERO);
        assert_eq!(t.final_backlog, Energy::ZERO);
        // Per-frame conservation: arrived + prior backlog = settled + backlog.
        let mut prev = Energy::ZERO;
        for r in &t.frames {
            let lhs = r.arrived + prev;
            let rhs = r.served_spot + r.absorbed + r.migrated + r.backlog;
            assert!((lhs - rhs).mwh().abs() < 1e-12, "frame {}", r.frame);
            prev = r.backlog;
        }
    }

    #[test]
    fn deferral_waits_for_the_cheapest_frame_within_life() {
        // Prices fall for two frames then recover; age bound 2 lets the
        // deferrable share ride to the trough at frame 2, never further.
        let w0 = FleetWorkload::new(
            RoutingConfig::icdcs13().with_interactive_fraction(0.0),
            vec![vec![
                Energy::from_mwh(1.0),
                Energy::ZERO,
                Energy::ZERO,
                Energy::ZERO,
            ]],
            vec![vec![90.0, 50.0, 10.0, 70.0]],
        )
        .unwrap();
        let ic = Interconnect::decoupled(1).unwrap();
        let mut w = w0.clone();
        for frame in 0..4 {
            let _ = w.frame_load(frame);
            w.settle(frame, &silent_exchange(frame, 1), &LoadPlan::default(), &ic);
        }
        let t = w.finish();
        assert_eq!(t.arrived, Energy::from_mwh(1.0));
        assert!((t.served_spot.mwh() - 1.0).abs() < 1e-12);
        // Served at the trough: $10 for 1 MWh.
        assert!((t.cost.dollars() - 10.0).abs() < 1e-9, "{}", t.cost);
        assert_eq!(t.max_wait_frames, 2);
        // And cheaper than the serve-on-arrival baseline, structurally.
        assert!(t.cost < w0.serve_on_arrival().cost);
    }

    #[test]
    fn due_work_is_always_served_within_the_age_bound() {
        // Monotonically falling prices tempt infinite deferral; the age
        // bound forces service by frame `arrival + 2`.
        let mut w = FleetWorkload::new(
            RoutingConfig::icdcs13().with_interactive_fraction(0.0),
            vec![vec![Energy::from_mwh(1.0); 6]],
            vec![vec![100.0, 90.0, 80.0, 70.0, 60.0, 50.0]],
        )
        .unwrap();
        let ic = Interconnect::decoupled(1).unwrap();
        for frame in 0..6 {
            let _ = w.frame_load(frame);
            w.settle(frame, &silent_exchange(frame, 1), &LoadPlan::default(), &ic);
        }
        let t = w.finish();
        assert!(t.max_wait_frames <= 2);
        assert_eq!(t.final_backlog, Energy::ZERO);
        assert!((t.served_spot - t.arrived).mwh().abs() < 1e-12);
    }

    #[test]
    fn absorption_is_free_and_clamped_to_curtailment() {
        let mut w = FleetWorkload::new(
            RoutingConfig::icdcs13().with_interactive_fraction(0.0),
            vec![vec![Energy::from_mwh(2.0), Energy::ZERO]],
            vec![vec![50.0, 50.0]],
        )
        .unwrap();
        let ic = Interconnect::decoupled(1).unwrap();
        let _ = w.frame_load(0);
        // Plan asks for 5 MWh of absorption; only 1.5 MWh was curtailed.
        let ex = FrameExchange {
            frame: 0,
            curtailed: vec![Energy::from_mwh(1.5)],
            rt_energy: vec![Energy::ZERO],
            rt_price: vec![0.0],
        };
        let plan = LoadPlan {
            absorb: vec![LoadFlow {
                from: 0,
                to: 0,
                amount: Energy::from_mwh(5.0),
            }],
        };
        w.settle(0, &ex, &plan, &ic);
        let _ = w.frame_load(1);
        w.settle(1, &silent_exchange(1, 1), &LoadPlan::default(), &ic);
        let t = w.finish();
        assert!((t.absorbed.mwh() - 1.5).abs() < 1e-12);
        // The remaining 0.5 MWh was billed at $50 (flat prices: no defer).
        assert!((t.cost.dollars() - 0.5 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn migration_requires_an_open_link_and_respects_the_cap() {
        let arrivals = vec![
            vec![Energy::from_mwh(3.0), Energy::ZERO],
            vec![Energy::ZERO, Energy::ZERO],
        ];
        let spot = vec![vec![50.0, 50.0]; 2];
        let cfg = RoutingConfig::icdcs13()
            .with_interactive_fraction(0.0)
            .with_migration_cap(Energy::from_mwh(1.0));
        let plan = LoadPlan {
            absorb: vec![LoadFlow {
                from: 0,
                to: 1,
                amount: Energy::from_mwh(3.0),
            }],
        };
        let ex = FrameExchange {
            frame: 0,
            curtailed: vec![Energy::ZERO, Energy::from_mwh(5.0)],
            rt_energy: vec![Energy::ZERO; 2],
            rt_price: vec![0.0; 2],
        };
        let run = |ic: &Interconnect| -> LoadTotals {
            let mut w = FleetWorkload::new(cfg, arrivals.clone(), spot.clone()).unwrap();
            let _ = w.frame_load(0);
            w.settle(0, &ex, &plan, ic);
            let _ = w.frame_load(1);
            w.settle(1, &silent_exchange(1, 2), &LoadPlan::default(), ic);
            w.finish()
        };
        // Open mesh: migration happens, clamped to the 1 MWh link cap.
        let open = run(&Interconnect::uniform(2, Energy::from_mwh(9.0)).unwrap());
        assert!((open.migrated.mwh() - 1.0).abs() < 1e-12);
        // Decoupled topology: the same plan moves nothing.
        let closed = run(&Interconnect::decoupled(2).unwrap());
        assert_eq!(closed.migrated, Energy::ZERO);
        assert!(closed.cost > open.cost);
    }

    #[test]
    fn totals_default_is_inert() {
        assert!(LoadTotals::default().is_inert());
        let t = LoadTotals {
            arrived: Energy::from_mwh(1.0),
            ..LoadTotals::default()
        };
        assert!(!t.is_inert());
    }

    #[test]
    fn rejects_misshapen_rosters() {
        assert!(FleetWorkload::new(RoutingConfig::icdcs13(), Vec::new(), Vec::new()).is_err());
        assert!(FleetWorkload::new(
            RoutingConfig::icdcs13(),
            vec![vec![Energy::ZERO; 3]],
            vec![vec![0.0; 2]],
        )
        .is_err());
        assert!(FleetWorkload::new(
            RoutingConfig::icdcs13(),
            vec![vec![Energy::ZERO; 3]],
            vec![vec![0.0; 3], vec![0.0; 3]],
        )
        .is_err());
    }
}
