//! Discrete-time two-timescale simulator for datacenter power supply
//! systems (DPSS).
//!
//! This crate is the *physical plant* of the SmartDPSS reproduction: it
//! owns everything the paper's Eqs. (1)–(9) say about how energy actually
//! flows, and it is deliberately separate from the control algorithms in
//! `dpss-core` so that every controller — SmartDPSS, the offline benchmark,
//! the `Impatient` baseline, or anything a downstream user writes — faces
//! exactly the same physics:
//!
//! * [`Battery`] — the UPS model: capacity window `[Bmin, Bmax]`, per-slot
//!   rate caps `Bcmax`/`Bdmax`, charge efficiency `ηc`, discharge
//!   efficiency `1/ηd`, per-operation wear cost `Cb`, optional cycle
//!   budget `Nmax` (Eqs. (3)(7)(8)(9));
//! * [`DemandQueue`] + [`DelayLedger`] — the delay-tolerant backlog `Q(τ)`
//!   of Eq. (2) with an exact FIFO ledger that measures realized per-MWh
//!   service delay (the y-axis of Figs. 6(b) and 6(d));
//! * [`Controller`] — the trait every control policy implements: one
//!   long-term decision per coarse frame (`g_bef`), one real-time decision
//!   per fine slot (`g_rt`, `γ`);
//! * [`Engine`] — the run loop. It enforces the supply/demand balance of
//!   Eq. (4) with a *feasibility guard* (emergency real-time purchases
//!   before any load shedding), supports a split between *true* traces
//!   (what the plant experiences) and *observed* traces (what the
//!   controller sees — the Fig. 9 robustness experiment), and produces a
//!   [`RunReport`];
//! * [`MultiSiteEngine`] — N per-site engines on one calendar coupled
//!   through an [`Interconnect`] topology (per-pair directed caps, line
//!   losses, wheeling prices, per-frame cap schedules), run
//!   *frame-synchronously*: every site steps coarse frame `k` before any
//!   site starts `k + 1`, a [`FleetDispatcher`] settles each realized
//!   frame, and in coordinated mode it hands every site a
//!   [`FrameDirective`] between frames (buy-to-export); per-site plus
//!   fleet-aggregate metrics land in a [`MultiSiteReport`];
//! * [`FleetWorkload`] — the request layer (workload-routing extension):
//!   per-site bounded-age queues of deferrable work stepped in lockstep
//!   with the fleet loop, settled against a [`RoutedDispatcher`]'s
//!   absorption/migration [`LoadPlan`] each frame and summarized in
//!   [`LoadTotals`] (inert — all zeros — unless
//!   [`MultiSiteEngine::run_routed`] is used);
//! * [`SimParams`] — the paper's §VI-A parameter set via
//!   [`SimParams::icdcs13`].
//!
//! # Examples
//!
//! A minimal greedy controller running on the paper's one-month scenario:
//!
//! ```
//! use dpss_sim::{Controller, Engine, FrameObservation, SimParams,
//!                SlotDecision, SlotObservation, SystemView, FrameDecision};
//! use dpss_traces::paper_month_traces;
//! use dpss_units::Energy;
//!
//! /// Buys everything it needs in the real-time market, serves eagerly.
//! struct Greedy;
//!
//! impl Controller for Greedy {
//!     fn name(&self) -> &str { "greedy" }
//!     fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
//!         FrameDecision { purchase_lt: Energy::ZERO }
//!     }
//!     fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
//!         SlotDecision {
//!             purchase_rt: (obs.demand_ds + view.queue_backlog - obs.renewable)
//!                 .positive_part(),
//!             serve_fraction: 1.0,
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let traces = paper_month_traces(42)?;
//! let engine = Engine::new(SimParams::icdcs13(), traces)?;
//! let report = engine.run(&mut Greedy)?;
//! assert!(report.unserved_ds == Energy::ZERO, "no blackout");
//! assert!(report.total_cost().dollars() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod battery;
mod controller;
mod delay;
mod dispatch;
mod engine;
mod error;
mod forecast;
mod interconnect;
mod metrics;
mod multisite;
mod params;
mod plant;
mod queue;
mod state;
mod workload;

pub use battery::{Battery, BatteryParams};
pub use controller::{
    Controller, FrameDecision, FrameObservation, SlotDecision, SlotObservation, SystemView,
};
pub use delay::DelayLedger;
pub use dispatch::{FleetDispatcher, FrameDirective, FrameOutlook, SiteOutlook};
pub use engine::{Engine, EngineRun};
pub use error::SimError;
pub use forecast::ForecastPolicy;
pub use interconnect::{FrameExchange, FrameSettlement, Interconnect, DESCRIBE_LINK_LIMIT};
pub use metrics::{RunReport, SlotCost, SlotOutcome};
pub use multisite::{MultiSiteEngine, MultiSiteReport};
pub use params::SimParams;
pub use queue::DemandQueue;
pub use state::{BatteryState, ControllerState, EngineRunState, LedgerState, QueueState};
pub use workload::{
    FleetWorkload, LoadFlow, LoadFrame, LoadFrameRecord, LoadPlan, LoadTotals, RoutedDispatcher,
    RoutingConfig, RoutingMode, UnroutedDispatcher,
};
