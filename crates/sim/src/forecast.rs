//! Frame-level forecasting policies (extension; paper §IV-C notes that
//! "advanced prediction techniques can complement SmartDPSS").
//!
//! The paper's controller approximates the coming frame by the current
//! observation; real deployments would plug in a day-ahead forecast. The
//! engine supports three policies for producing the demand/renewable
//! fields of a [`FrameObservation`](crate::FrameObservation):
//!
//! * [`ForecastPolicy::PrevFrameAverage`] — the default causal policy
//!   (per-slot averages over the previous frame);
//! * [`ForecastPolicy::Oracle`] — the *coming* frame's true per-slot
//!   averages (an idealized perfect day-ahead forecast);
//! * [`ForecastPolicy::NoisyOracle`] — the oracle corrupted by
//!   multiplicative gaussian error of a given relative standard
//!   deviation (e.g. `0.22` for the 22.2% hour-ahead error the paper
//!   cites for renewables).
//!
//! The `forecast_ablation` rows of the `ablations` figure quantify how
//! much better frame information is worth.

use serde::{Deserialize, Serialize};

/// How the engine fills the demand/renewable fields of a frame
/// observation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ForecastPolicy {
    /// Per-slot averages over the previous frame (causal; the paper's
    /// "approximate the future by the present").
    #[default]
    PrevFrameAverage,
    /// Per-slot averages over the *coming* frame, from the observed trace
    /// set (perfect day-ahead forecast).
    Oracle,
    /// [`ForecastPolicy::Oracle`] with multiplicative gaussian noise:
    /// each forecast is scaled by `max(0, 1 + rel_std·ε)`, `ε ~ N(0,1)`,
    /// deterministic in the engine run (seeded per frame).
    NoisyOracle {
        /// Relative standard deviation of the forecast error.
        rel_std: f64,
        /// Seed for the forecast error stream.
        seed: u64,
    },
}

impl ForecastPolicy {
    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::InvalidParameter`] if `rel_std` is negative or
    /// not finite.
    pub fn validate(&self) -> Result<(), crate::SimError> {
        if let ForecastPolicy::NoisyOracle { rel_std, .. } = self {
            if !(rel_std.is_finite() && *rel_std >= 0.0) {
                return Err(crate::SimError::InvalidParameter {
                    what: "forecast rel_std",
                    requirement: "must be finite and non-negative",
                });
            }
        }
        Ok(())
    }

    /// Deterministic multiplicative noise factor for `frame` and
    /// `component` (0 = ds, 1 = dt, 2 = renewable).
    pub(crate) fn noise_factor(&self, frame: usize, component: u64) -> f64 {
        match self {
            ForecastPolicy::NoisyOracle { rel_std, seed } => {
                // splitmix64 → two uniform draws → Box–Muller gaussian.
                let mut z = seed
                    ^ (frame as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ component.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let mut next = || {
                    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut x = z;
                    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    x ^= x >> 31;
                    (x >> 11) as f64 / (1u64 << 53) as f64
                };
                let u1: f64 = next().max(f64::MIN_POSITIVE);
                let u2: f64 = next();
                let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (1.0 + rel_std * gauss).max(0.0)
            }
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_causal() {
        assert_eq!(ForecastPolicy::default(), ForecastPolicy::PrevFrameAverage);
    }

    #[test]
    fn validation() {
        assert!(ForecastPolicy::PrevFrameAverage.validate().is_ok());
        assert!(ForecastPolicy::Oracle.validate().is_ok());
        assert!(ForecastPolicy::NoisyOracle {
            rel_std: 0.22,
            seed: 1
        }
        .validate()
        .is_ok());
        assert!(ForecastPolicy::NoisyOracle {
            rel_std: -0.1,
            seed: 1
        }
        .validate()
        .is_err());
        assert!(ForecastPolicy::NoisyOracle {
            rel_std: f64::NAN,
            seed: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn noise_factor_properties() {
        let p = ForecastPolicy::NoisyOracle {
            rel_std: 0.2,
            seed: 9,
        };
        // Deterministic per (frame, component), non-negative, varies.
        assert_eq!(p.noise_factor(3, 0), p.noise_factor(3, 0));
        assert_ne!(p.noise_factor(3, 0), p.noise_factor(4, 0));
        assert_ne!(p.noise_factor(3, 0), p.noise_factor(3, 1));
        let mut sum = 0.0;
        for f in 0..2000 {
            let x = p.noise_factor(f, 2);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / 2000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        // Exact policies are noiseless.
        assert_eq!(ForecastPolicy::Oracle.noise_factor(5, 1), 1.0);
        assert_eq!(ForecastPolicy::PrevFrameAverage.noise_factor(5, 1), 1.0);
    }
}
