//! Frame-synchronous fleet dispatch: the types that close the loop from
//! interconnect planning back to site control.
//!
//! The post-hoc and planned settlement modes only *settle* — they route
//! realized curtailment after every site has already dispatched, so the
//! plan never changes what a site does. Coordinated dispatch runs the
//! fleet in lockstep over coarse frames
//! ([`MultiSiteEngine::run_with`](crate::MultiSiteEngine::run_with)):
//! between frames a [`FleetDispatcher`] sees the fleet's
//! [`FrameOutlook`] (forecast curtailment, forecast real-time need and
//! price, procurable grid slack, battery headroom — all causal, built
//! from the previous frame's realization and the current battery state)
//! and hands every site a [`FrameDirective`] before its controller
//! commits the frame's long-term purchase. A directive can tell a site
//! to *buy-to-export*: procure extra energy at its local long-term
//! price because a neighbour's delivered real-time price (after line
//! loss and wheeling) exceeds that cost.
//!
//! The trait is deliberately settlement-shaped so `dpss-core`'s
//! `FleetPlanner` can implement all three modes: [`Interconnect`]
//! implements it too (greedy settlement, no directives), which is what
//! [`MultiSiteEngine::run`](crate::MultiSiteEngine::run) uses.

use dpss_units::{Energy, Price};
use serde::{Deserialize, Serialize};

use crate::{FrameExchange, FrameSettlement, Interconnect};

/// What a fleet dispatcher tells one site before a coarse frame runs.
///
/// All quantities are totals over the coming frame. A default directive
/// is inert: controllers that receive it behave exactly as if no
/// directive had arrived.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameDirective {
    /// Which coarse frame the directive covers. Controllers must ignore
    /// a directive whose frame does not match the observation they are
    /// planning.
    pub frame: usize,
    /// Extra energy the site should procure beyond its own needs,
    /// destined for export (the *buy-to-export* order). Includes the
    /// battery top-off: the plant charges surplus before curtailing it,
    /// so the planner adds the current headroom to keep the planned
    /// waste — and hence the export — intact.
    pub procure_for_export: Energy,
    /// Total energy the dispatch plan expects this site to send this
    /// frame (its export quota, before line losses).
    pub export_quota: Energy,
    /// Delivered energy the plan expects to arrive from neighbours
    /// (after line losses) — the import expectation.
    pub import_expectation: Energy,
    /// Effective marginal value of this site's best planned export
    /// route, in $/MWh *sent*: the recipient's forecast real-time price
    /// after loss and wheeling (`p̂_rt·(1−loss) − wheel`). Zero when the
    /// plan routes nothing from this site. Controllers compare it to
    /// their local procurement cost before acting.
    pub export_value: f64,
}

impl FrameDirective {
    /// An inert directive for `frame` (nothing to procure, no exports or
    /// imports planned).
    #[must_use]
    pub fn inert(frame: usize) -> Self {
        FrameDirective {
            frame,
            ..FrameDirective::default()
        }
    }

    /// Whether the directive asks for anything at all.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.procure_for_export <= Energy::ZERO
            && self.export_quota <= Energy::ZERO
            && self.import_expectation <= Energy::ZERO
    }

    /// The buy-to-export top-off a controller should add to the frame's
    /// long-term purchase, after re-checking the directive's economics
    /// against the market's *actual* quote: the directed procure amount
    /// when the directive covers `frame` and its delivered export value
    /// beats the site's current procurement cost (observed long-term
    /// price plus waste penalty), zero otherwise. The planner worked
    /// from a forecast; this one gate is the shared safety check every
    /// directive-consuming controller applies before committing money.
    #[must_use]
    pub fn economic_top_off(&self, frame: usize, price_lt: Price, waste_price: Price) -> Energy {
        if self.frame != frame || self.procure_for_export <= Energy::ZERO {
            return Energy::ZERO;
        }
        let local_cost = price_lt.dollars_per_mwh() + waste_price.dollars_per_mwh();
        if self.export_value > local_cost {
            self.procure_for_export
        } else {
            Energy::ZERO
        }
    }
}

/// One site's causal forecast of the coming frame, as the fleet loop
/// sees it between frames: the previous frame's realization plus the
/// site's current battery state. Frame 0 has no history and forecasts
/// zeros, so dispatch never acts on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteOutlook {
    /// Forecast curtailment (the previous frame's realized waste) — the
    /// export budget the site is expected to have for free.
    pub expected_surplus: Energy,
    /// Forecast displaceable real-time purchases (the previous frame's
    /// realized `g_rt` total).
    pub expected_need: Energy,
    /// Forecast frame-average realized real-time price, $/MWh (zero when
    /// the site bought nothing last frame).
    pub expected_price: f64,
    /// Grid slack the site could still procure this frame: the frame's
    /// interconnect budget minus the previous frame's realized draw.
    pub export_headroom: Energy,
    /// Grid-side charge the battery currently accepts in one slot. The
    /// plant charges surplus before curtailing, so a buy-to-export order
    /// must top the battery off before planned waste materializes.
    pub battery_headroom: Energy,
    /// The coming frame's observed long-term price plus the waste
    /// penalty, $/MWh: what one MWh of deliberately curtailed export
    /// energy costs this site to procure.
    pub procure_cost: f64,
    /// Deferrable workload queued at the site entering this frame (IT
    /// energy). Zero everywhere outside routed runs
    /// ([`MultiSiteEngine::run_routed`](crate::MultiSiteEngine::run_routed)):
    /// energy-only dispatchers can ignore it.
    pub load_backlog: Energy,
    /// The share of [`load_backlog`](Self::load_backlog) whose queue-age
    /// bound expires this frame — it will be served at spot if the plan
    /// does not absorb or migrate it. Zero outside routed runs.
    pub load_due: Energy,
}

/// The fleet-wide outlook a [`FleetDispatcher`] plans a coarse frame
/// from, one [`SiteOutlook`] per site in site-index order.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOutlook {
    /// The coarse frame about to run.
    pub frame: usize,
    /// Per-site outlooks, in site-index order.
    pub sites: Vec<SiteOutlook>,
}

/// A fleet dispatch policy: optionally directs sites between frames,
/// and settles each frame's realized exchange.
///
/// [`MultiSiteEngine::run_with`](crate::MultiSiteEngine::run_with) calls
/// [`direct`](Self::direct) before every coarse frame (unless the
/// topology is silent) and [`settle`](Self::settle) after it. Both must
/// be deterministic functions of the dispatcher's own history and their
/// arguments — the fleet determinism suite holds implementations to
/// that.
pub trait FleetDispatcher {
    /// The topology this dispatcher plans and settles over, when it has
    /// one (the default `None` opts out of validation).
    /// [`MultiSiteEngine::run_with`](crate::MultiSiteEngine::run_with)
    /// rejects a dispatcher whose topology differs from the fleet's —
    /// the same guard `FleetPlanner::couple` applies — instead of
    /// silently settling every frame under the wrong lines.
    fn topology(&self) -> Option<&Interconnect> {
        None
    }

    /// Plans directives for the coming frame. Returning an empty vector
    /// (the default) means "no directives": site controllers are left
    /// alone, which is exactly the post-hoc and planned modes. A
    /// non-empty return must carry one directive per site.
    fn direct(&mut self, outlook: &FrameOutlook) -> Vec<FrameDirective> {
        let _ = outlook;
        Vec::new()
    }

    /// Settles one realized frame exchange.
    fn settle(&mut self, ex: &FrameExchange) -> FrameSettlement;
}

/// The greedy post-hoc fold as a dispatcher: no directives, settle with
/// [`Interconnect::settle_greedy`]. This is what
/// [`MultiSiteEngine::run`](crate::MultiSiteEngine::run) dispatches
/// with.
impl FleetDispatcher for Interconnect {
    fn topology(&self) -> Option<&Interconnect> {
        Some(self)
    }

    fn settle(&mut self, ex: &FrameExchange) -> FrameSettlement {
        self.settle_greedy(ex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_directives_ask_for_nothing() {
        let d = FrameDirective::inert(7);
        assert_eq!(d.frame, 7);
        assert!(d.is_inert());
        let busy = FrameDirective {
            export_quota: Energy::from_mwh(1.0),
            ..FrameDirective::inert(7)
        };
        assert!(!busy.is_inert());
    }

    #[test]
    fn economic_top_off_gates_on_frame_and_value() {
        let d = FrameDirective {
            frame: 2,
            procure_for_export: Energy::from_mwh(1.5),
            export_quota: Energy::from_mwh(2.0),
            import_expectation: Energy::ZERO,
            export_value: 60.0,
        };
        let lt = Price::from_dollars_per_mwh(30.0);
        let waste = Price::from_dollars_per_mwh(1.0);
        // Value clears p_lt + waste: the full procure amount.
        assert_eq!(d.economic_top_off(2, lt, waste), Energy::from_mwh(1.5));
        // Wrong frame: nothing.
        assert_eq!(d.economic_top_off(3, lt, waste), Energy::ZERO);
        // Market moved above the plan's value: nothing.
        assert_eq!(
            d.economic_top_off(2, Price::from_dollars_per_mwh(60.0), waste),
            Energy::ZERO
        );
        // Inert directives never procure.
        assert_eq!(
            FrameDirective::inert(2).economic_top_off(2, lt, waste),
            Energy::ZERO
        );
    }

    #[test]
    fn interconnect_dispatches_greedily_without_directives() {
        let mut ic = Interconnect::pooled(2, Energy::from_mwh(5.0)).unwrap();
        let outlook = FrameOutlook {
            frame: 0,
            sites: Vec::new(),
        };
        assert!(ic.direct(&outlook).is_empty());
        let ex = FrameExchange {
            frame: 0,
            curtailed: vec![Energy::from_mwh(2.0), Energy::ZERO],
            rt_energy: vec![Energy::ZERO, Energy::from_mwh(1.0)],
            rt_price: vec![0.0, 50.0],
        };
        assert_eq!(FleetDispatcher::settle(&mut ic, &ex), ic.settle_greedy(&ex));
    }
}
