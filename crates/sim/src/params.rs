use dpss_units::{Energy, Power, Price};
use serde::{Deserialize, Serialize};

use crate::{BatteryParams, SimError};

/// All physical parameters of a simulation run (the paper's §VI-A table,
/// minus the trace inputs which live in `dpss-traces`).
///
/// Public fields form a passive record; [`SimParams::validate`] enforces
/// consistency when an [`Engine`](crate::Engine) is built.
///
/// # Examples
///
/// ```
/// use dpss_sim::SimParams;
///
/// let p = SimParams::icdcs13();
/// assert_eq!(p.grid_cap.mw(), 2.0);
/// assert_eq!(p.price_cap.dollars_per_mwh(), 100.0);
/// p.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// UPS battery configuration.
    pub battery: BatteryParams,
    /// Grid interconnect limit `Pgrid` (Eq. (5)): the *combined* long-term
    /// allocation plus real-time purchase per slot may not exceed
    /// `Pgrid × slot_hours`.
    pub grid_cap: Power,
    /// Optional cap `Smax` on total supply per slot (Eq. (1)); `None`
    /// disables the cap (the interconnect limit usually binds first).
    pub supply_cap: Option<Energy>,
    /// Optional cap `Sdtmax` on delay-tolerant service per slot; `None`
    /// disables it (service is then limited by the backlog itself).
    pub sdt_max: Option<Energy>,
    /// Price at which wasted energy `W(τ)` is penalized. The paper adds
    /// `W(τ)` to the cost with unit weight, i.e. `$1/MWh`.
    pub waste_price: Price,
    /// Market price cap `Pmax` (used by the Theorem 2 bound calculators;
    /// trace generators enforce it on the series themselves).
    pub price_cap: Price,
    /// Optional demand charge in dollars per MW of the *largest* per-slot
    /// grid draw over the horizon (extension; the paper lists power-peak
    /// management as future work). `0` — the paper's model — disables it.
    pub peak_charge_per_mw: f64,
}

impl SimParams {
    /// The paper's evaluation parameters with the default 15-minute battery:
    /// `Pgrid = 2 MW`, `Pmax = $100/MWh`, waste at `$1/MWh`, no `Smax`.
    #[must_use]
    pub fn icdcs13() -> Self {
        Self::icdcs13_with_battery(15.0)
    }

    /// Same as [`SimParams::icdcs13`] but with the battery sized to
    /// `bmax_minutes` of peak demand (`0`, `15`, `30` in Fig. 7).
    #[must_use]
    pub fn icdcs13_with_battery(bmax_minutes: f64) -> Self {
        SimParams {
            battery: BatteryParams::icdcs13(bmax_minutes),
            grid_cap: Power::from_mw(2.0),
            supply_cap: None,
            sdt_max: None,
            waste_price: Price::from_dollars_per_mwh(1.0),
            price_cap: Price::from_dollars_per_mwh(100.0),
            peak_charge_per_mw: 0.0,
        }
    }

    /// Grid energy limit for one fine slot of `slot_hours` hours.
    #[must_use]
    pub fn grid_slot_cap(&self, slot_hours: f64) -> Energy {
        self.grid_cap.over_hours(slot_hours)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] describing the first violated rule.
    pub fn validate(&self) -> Result<(), SimError> {
        self.battery.validate()?;
        if !(self.grid_cap.is_finite() && self.grid_cap.mw() > 0.0) {
            return Err(SimError::InvalidParameter {
                what: "grid_cap",
                requirement: "must be finite and positive",
            });
        }
        if let Some(s) = self.supply_cap {
            if !(s.is_finite() && s.mwh() > 0.0) {
                return Err(SimError::InvalidParameter {
                    what: "supply_cap",
                    requirement: "must be finite and positive when set",
                });
            }
        }
        if let Some(s) = self.sdt_max {
            if !(s.is_finite() && s.mwh() >= 0.0) {
                return Err(SimError::InvalidParameter {
                    what: "sdt_max",
                    requirement: "must be finite and non-negative when set",
                });
            }
        }
        if !(self.waste_price.is_finite() && self.waste_price.dollars_per_mwh() >= 0.0) {
            return Err(SimError::InvalidParameter {
                what: "waste_price",
                requirement: "must be finite and non-negative",
            });
        }
        if !(self.price_cap.is_finite() && self.price_cap.dollars_per_mwh() > 0.0) {
            return Err(SimError::InvalidParameter {
                what: "price_cap",
                requirement: "must be finite and positive",
            });
        }
        if !(self.peak_charge_per_mw.is_finite() && self.peak_charge_per_mw >= 0.0) {
            return Err(SimError::InvalidParameter {
                what: "peak_charge_per_mw",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        SimParams::icdcs13().validate().unwrap();
        SimParams::icdcs13_with_battery(0.0).validate().unwrap();
        SimParams::icdcs13_with_battery(30.0).validate().unwrap();
    }

    #[test]
    fn battery_size_scales_with_minutes() {
        let p0 = SimParams::icdcs13_with_battery(0.0);
        let p30 = SimParams::icdcs13_with_battery(30.0);
        assert_eq!(p0.battery.capacity, Energy::ZERO);
        assert_eq!(p30.battery.capacity, Energy::from_mwh(1.0));
    }

    #[test]
    fn grid_slot_cap_scales_with_duration() {
        let p = SimParams::icdcs13();
        assert_eq!(p.grid_slot_cap(1.0), Energy::from_mwh(2.0));
        assert_eq!(p.grid_slot_cap(0.25), Energy::from_mwh(0.5));
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut p = SimParams::icdcs13();
        p.grid_cap = Power::ZERO;
        assert!(p.validate().is_err());

        let mut p = SimParams::icdcs13();
        p.supply_cap = Some(Energy::from_mwh(-1.0));
        assert!(p.validate().is_err());

        let mut p = SimParams::icdcs13();
        p.sdt_max = Some(Energy::from_mwh(f64::NAN));
        assert!(p.validate().is_err());

        let mut p = SimParams::icdcs13();
        p.waste_price = Price::from_dollars_per_mwh(-2.0);
        assert!(p.validate().is_err());

        let mut p = SimParams::icdcs13();
        p.price_cap = Price::ZERO;
        assert!(p.validate().is_err());

        let mut p = SimParams::icdcs13();
        p.battery.charge_efficiency = 2.0;
        assert!(p.validate().is_err());

        let mut p = SimParams::icdcs13();
        p.peak_charge_per_mw = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn peak_charge_defaults_off() {
        assert_eq!(SimParams::icdcs13().peak_charge_per_mw, 0.0);
        let mut p = SimParams::icdcs13();
        p.peak_charge_per_mw = 5000.0;
        p.validate().unwrap();
    }
}
