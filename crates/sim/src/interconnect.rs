//! The inter-site transmission topology: per-pair directed transfer
//! caps, multiplicative line losses and per-MWh wheeling prices.
//!
//! [`Interconnect`] replaces the old single fleet-pooled `transfer_cap`
//! knob of [`MultiSiteEngine`](crate::MultiSiteEngine) with real (if
//! stylized) physics: energy *sent* from site `i` to site `j` is capped
//! per coarse frame by a directed pair cap, arrives multiplied by
//! `1 − loss(i, j)`, and pays a wheeling price per MWh sent. An optional
//! fleet-pooled cap on top bounds the total energy moved per frame — the
//! legacy knob is exactly a pooled topology with lossless, free links.
//!
//! Two settlement modes consume the topology:
//!
//! * [`Interconnect::settle_greedy`] — the *post-hoc* mode: per frame,
//!   realized curtailment is matched to the most expensive realized
//!   real-time purchases elsewhere in the fleet, link by link, in a
//!   deterministic fold (donors in site order, recipients by descending
//!   frame-average price). Bookkeeping, not control: no flow is planned,
//!   only settled after the fact.
//! * `dpss-core`'s `FleetPlanner` — the *planned* mode: a per-frame
//!   linear program over the same [`FrameExchange`] chooses export flows
//!   jointly across all links (bounded by the pair caps), which with
//!   per-pair caps, losses or wheeling prices can beat the greedy fold.
//!
//! Both settle the same per-frame exchange, so their results are directly
//! comparable and the physics property suite
//! (`crates/sim/tests/interconnect_physics.rs`) pins conservation, loss
//! monotonicity and the decoupling identity for both.

use dpss_units::{Energy, Money, Price};

use crate::SimError;

/// Directed inter-site transmission topology for a fleet of `sites`
/// datacenters: per-pair frame caps, losses and wheeling prices, plus an
/// optional fleet-pooled per-frame cap.
///
/// # Examples
///
/// ```
/// use dpss_sim::Interconnect;
/// use dpss_units::{Energy, Price};
///
/// # fn main() -> Result<(), dpss_sim::SimError> {
/// let ic = Interconnect::uniform(3, Energy::from_mwh(1.5))?
///     .with_uniform_loss(0.05)?
///     .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))?
///     .with_link(0, 2, Energy::ZERO)?; // sever one directed line
/// assert_eq!(ic.cap(0, 2), Energy::ZERO);
/// assert_eq!(ic.cap(2, 0), Energy::from_mwh(1.5));
/// assert!((ic.loss(1, 0) - 0.05).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    sites: usize,
    /// Directed pair caps (energy sent per frame), row-major `from × to`;
    /// the diagonal is unused and held at zero.
    cap: Vec<Energy>,
    /// Multiplicative line losses in `[0, 1)`, same layout.
    loss: Vec<f64>,
    /// Wheeling price per MWh *sent*, same layout.
    wheel: Vec<Price>,
    /// Optional fleet-pooled cap on total energy sent per frame.
    pool_cap: Option<Energy>,
}

impl Interconnect {
    fn filled(sites: usize, cap: Energy, pool_cap: Option<Energy>) -> Result<Self, SimError> {
        if sites == 0 {
            return Err(SimError::SiteMismatch {
                site: 0,
                what: "an interconnect needs at least one site",
            });
        }
        validate_cap(cap)?;
        let mut ic = Interconnect {
            sites,
            cap: vec![cap; sites * sites],
            loss: vec![0.0; sites * sites],
            wheel: vec![Price::from_dollars_per_mwh(0.0); sites * sites],
            pool_cap,
        };
        for s in 0..sites {
            ic.cap[s * sites + s] = Energy::ZERO;
        }
        Ok(ic)
    }

    /// A topology with no lines at all: every settlement is empty and the
    /// fleet behaves exactly like independent sites.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites == 0`.
    pub fn decoupled(sites: usize) -> Result<Self, SimError> {
        Interconnect::filled(sites, Energy::ZERO, None)
    }

    /// The legacy knob as a topology: lossless, free links between every
    /// pair, with both each pair and the fleet pool capped at `cap` per
    /// frame. Settling this greedily is bit-identical to the old single
    /// `transfer_cap` fold.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites == 0`;
    /// [`SimError::InvalidParameter`] for a non-finite or negative cap.
    pub fn pooled(sites: usize, cap: Energy) -> Result<Self, SimError> {
        Interconnect::filled(sites, cap, Some(cap))
    }

    /// Every ordered pair gets its own directed line with `pair_cap` per
    /// frame; no fleet-pooled cap.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites == 0`;
    /// [`SimError::InvalidParameter`] for a non-finite or negative cap.
    pub fn uniform(sites: usize, pair_cap: Energy) -> Result<Self, SimError> {
        Interconnect::filled(sites, pair_cap, None)
    }

    /// Sets the directed cap of the `from → to` line.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for a bad cap or a diagonal /
    /// out-of-range pair.
    pub fn with_link(mut self, from: usize, to: usize, cap: Energy) -> Result<Self, SimError> {
        validate_cap(cap)?;
        let k = self.pair_index(from, to)?;
        self.cap[k] = cap;
        Ok(self)
    }

    /// Sets the multiplicative loss of the `from → to` line
    /// (`delivered = sent × (1 − loss)`).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] unless `0 ≤ loss < 1` and the pair
    /// is a real directed line.
    pub fn with_loss(mut self, from: usize, to: usize, loss: f64) -> Result<Self, SimError> {
        validate_loss(loss)?;
        let k = self.pair_index(from, to)?;
        self.loss[k] = loss;
        Ok(self)
    }

    /// Sets the per-MWh-sent wheeling price of the `from → to` line.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for a non-finite or negative price
    /// or a bad pair.
    pub fn with_wheeling(mut self, from: usize, to: usize, price: Price) -> Result<Self, SimError> {
        validate_wheel(price)?;
        let k = self.pair_index(from, to)?;
        self.wheel[k] = price;
        Ok(self)
    }

    /// Sets the same loss on every line.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] unless `0 ≤ loss < 1`.
    pub fn with_uniform_loss(mut self, loss: f64) -> Result<Self, SimError> {
        validate_loss(loss)?;
        for l in &mut self.loss {
            *l = loss;
        }
        Ok(self)
    }

    /// Sets the same wheeling price on every line.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for a non-finite or negative price.
    pub fn with_uniform_wheeling(mut self, price: Price) -> Result<Self, SimError> {
        validate_wheel(price)?;
        for w in &mut self.wheel {
            *w = price;
        }
        Ok(self)
    }

    /// Replaces the fleet-pooled per-frame cap (`None` removes it).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for a non-finite or negative cap.
    pub fn with_pool_cap(mut self, cap: Option<Energy>) -> Result<Self, SimError> {
        if let Some(c) = cap {
            validate_cap(c)?;
        }
        self.pool_cap = cap;
        Ok(self)
    }

    /// Number of sites the topology spans.
    #[must_use]
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Directed cap of the `from → to` line (zero for the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if a site index is out of range.
    #[must_use]
    pub fn cap(&self, from: usize, to: usize) -> Energy {
        assert!(from < self.sites && to < self.sites, "site out of range");
        self.cap[from * self.sites + to]
    }

    /// Multiplicative loss of the `from → to` line.
    ///
    /// # Panics
    ///
    /// Panics if a site index is out of range.
    #[must_use]
    pub fn loss(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.sites && to < self.sites, "site out of range");
        self.loss[from * self.sites + to]
    }

    /// Wheeling price of the `from → to` line, per MWh sent.
    ///
    /// # Panics
    ///
    /// Panics if a site index is out of range.
    #[must_use]
    pub fn wheeling(&self, from: usize, to: usize) -> Price {
        assert!(from < self.sites && to < self.sites, "site out of range");
        self.wheel[from * self.sites + to]
    }

    /// The fleet-pooled per-frame cap, if any.
    #[must_use]
    pub fn pool_cap(&self) -> Option<Energy> {
        self.pool_cap
    }

    /// Whether no energy can ever move: every pair cap is zero, or the
    /// pool cap is zero, or there is only one site.
    #[must_use]
    pub fn is_silent(&self) -> bool {
        self.sites < 2
            || self.pool_cap == Some(Energy::ZERO)
            || self.cap.iter().all(|&c| c <= Energy::ZERO)
    }

    /// The ordered pairs with a usable line (`cap > 0`), in row-major
    /// (donor-major) order — the deterministic link roster both
    /// settlement modes iterate.
    pub fn open_links(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.sites;
        (0..n * n).filter_map(move |k| {
            let (i, j) = (k / n, k % n);
            (i != j && self.cap[k] > Energy::ZERO).then_some((i, j))
        })
    }

    /// One-line human description, used in table titles. A pooled legacy
    /// topology renders exactly as the old knob did.
    #[must_use]
    pub fn describe(&self) -> String {
        let lossless = self.loss.iter().all(|&l| l == 0.0);
        let free = self.wheel.iter().all(|&w| w.dollars_per_mwh() == 0.0);
        if let Some(pool) = self.pool_cap {
            let pooled_caps = (0..self.sites * self.sites).all(|k| {
                let (i, j) = (k / self.sites, k % self.sites);
                self.cap[k] == if i == j { Energy::ZERO } else { pool }
            });
            if lossless && free && pooled_caps {
                return format!("cap {} MWh/frame", pool.mwh());
            }
        }
        let max_cap = self.cap.iter().fold(Energy::ZERO, |a, &c| a.max(c)).mwh();
        let max_loss = self.loss.iter().fold(0.0f64, |a, &l| a.max(l));
        let max_wheel = self
            .wheel
            .iter()
            .fold(0.0f64, |a, &w| a.max(w.dollars_per_mwh()));
        format!(
            "per-pair caps <= {max_cap} MWh/frame, loss <= {max_loss}, wheeling <= ${max_wheel}/MWh"
        )
    }

    /// The post-hoc greedy settlement of one frame's exchange: donated
    /// curtailment displaces the most expensive realized real-time
    /// purchases first (ties by site index), donors drawn in site order,
    /// respecting pair caps, the pool cap and per-link economics (a link
    /// whose delivered value does not cover its wheeling price moves
    /// nothing). Pure arithmetic — no RNG, no scheduling dependence.
    ///
    /// # Panics
    ///
    /// Panics if the exchange's site rosters do not match the topology.
    #[must_use]
    pub fn settle_greedy(&self, ex: &FrameExchange) -> FrameSettlement {
        let n = self.sites;
        assert!(
            ex.curtailed.len() == n && ex.rt_energy.len() == n && ex.rt_price.len() == n,
            "exchange covers a different site roster than the topology"
        );
        let mut out = FrameSettlement::default();
        if self.is_silent() {
            return out;
        }
        let mut donors = ex.curtailed.clone();
        let mut pair_left = self.cap.clone();
        let mut pool_left = self.pool_cap.unwrap_or(Energy::from_mwh(f64::INFINITY));
        // (site, displaceable rt energy, frame-average rt price $/MWh),
        // most expensive first, ties by site index.
        let mut recipients: Vec<(usize, Energy, f64)> = (0..n)
            .filter(|&s| ex.rt_energy[s] > Energy::ZERO)
            .map(|s| (s, ex.rt_energy[s], ex.rt_price[s]))
            .collect();
        recipients.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        for (r_site, mut need, price) in recipients {
            for (d_site, avail) in donors.iter_mut().enumerate() {
                if d_site == r_site {
                    continue;
                }
                let k = d_site * n + r_site;
                let loss = self.loss[k];
                let wheel = self.wheel[k].dollars_per_mwh();
                // Per-link economics: moving energy must save money.
                if price * (1.0 - loss) - wheel <= 0.0 {
                    continue;
                }
                let sent_for_need = Energy::from_mwh(need.mwh() / (1.0 - loss));
                let sent = (*avail).min(pair_left[k]).min(pool_left).min(sent_for_need);
                if sent <= Energy::ZERO {
                    continue;
                }
                let delivered = sent * (1.0 - loss);
                *avail -= sent;
                pair_left[k] -= sent;
                pool_left -= sent;
                need -= delivered;
                out.sent += sent;
                out.delivered += delivered;
                out.savings += Money::from_dollars(delivered.mwh() * price);
                out.wheeling += Money::from_dollars(sent.mwh() * wheel);
            }
            if pool_left <= Energy::ZERO {
                break;
            }
        }
        out
    }
    fn pair_index(&self, from: usize, to: usize) -> Result<usize, SimError> {
        if from >= self.sites || to >= self.sites {
            return Err(SimError::InvalidParameter {
                what: "interconnect pair",
                requirement: "site indices must be within the fleet roster",
            });
        }
        if from == to {
            return Err(SimError::InvalidParameter {
                what: "interconnect pair",
                requirement: "lines connect two distinct sites",
            });
        }
        Ok(from * self.sites + to)
    }
}

fn validate_cap(cap: Energy) -> Result<(), SimError> {
    if cap.is_finite() && cap.mwh() >= 0.0 {
        Ok(())
    } else {
        Err(SimError::InvalidParameter {
            what: "interconnect cap",
            requirement: "must be finite and non-negative",
        })
    }
}

fn validate_loss(loss: f64) -> Result<(), SimError> {
    if loss.is_finite() && (0.0..1.0).contains(&loss) {
        Ok(())
    } else {
        Err(SimError::InvalidParameter {
            what: "interconnect loss",
            requirement: "must be in [0, 1)",
        })
    }
}

fn validate_wheel(price: Price) -> Result<(), SimError> {
    if price.is_finite() && price.dollars_per_mwh() >= 0.0 {
        Ok(())
    } else {
        Err(SimError::InvalidParameter {
            what: "interconnect wheeling price",
            requirement: "must be finite and non-negative",
        })
    }
}

/// One coarse frame's settle-able quantities, extracted from the per-site
/// reports: what each site curtailed (its export budget) and what it
/// bought in the real-time market (its displaceable imports), with the
/// frame-average realized real-time price.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameExchange {
    /// Which coarse frame.
    pub frame: usize,
    /// Curtailed energy per site — the donors' budgets.
    pub curtailed: Vec<Energy>,
    /// Real-time energy purchased per site — the displaceable need.
    pub rt_energy: Vec<Energy>,
    /// Frame-average realized real-time price per site in $/MWh
    /// (zero when the site bought nothing).
    pub rt_price: Vec<f64>,
}

/// What one frame's settlement moved and what it was worth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameSettlement {
    /// Energy sent by donors (before line losses).
    pub sent: Energy,
    /// Energy delivered to recipients (after line losses).
    pub delivered: Energy,
    /// Real-time purchase cost displaced by the delivered energy.
    pub savings: Money,
    /// Wheeling charges on the energy sent.
    pub wheeling: Money,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(curtailed: &[f64], rt: &[f64], price: &[f64]) -> FrameExchange {
        FrameExchange {
            frame: 0,
            curtailed: curtailed.iter().map(|&e| Energy::from_mwh(e)).collect(),
            rt_energy: rt.iter().map(|&e| Energy::from_mwh(e)).collect(),
            rt_price: price.to_vec(),
        }
    }

    #[test]
    fn constructors_validate() {
        assert!(Interconnect::decoupled(0).is_err());
        assert!(Interconnect::pooled(2, Energy::from_mwh(-1.0)).is_err());
        assert!(Interconnect::uniform(2, Energy::from_mwh(f64::NAN)).is_err());
        let ic = Interconnect::uniform(3, Energy::from_mwh(1.0)).unwrap();
        assert!(ic.clone().with_link(0, 0, Energy::ZERO).is_err());
        assert!(ic.clone().with_link(0, 3, Energy::ZERO).is_err());
        assert!(ic.clone().with_loss(0, 1, 1.0).is_err());
        assert!(ic.clone().with_loss(0, 1, -0.1).is_err());
        assert!(ic
            .clone()
            .with_wheeling(0, 1, Price::from_dollars_per_mwh(-2.0))
            .is_err());
        assert!(ic
            .with_pool_cap(Some(Energy::from_mwh(f64::INFINITY)))
            .is_err());
    }

    #[test]
    fn silence_and_link_roster() {
        assert!(Interconnect::decoupled(3).unwrap().is_silent());
        assert!(Interconnect::pooled(1, Energy::from_mwh(5.0))
            .unwrap()
            .is_silent());
        assert!(Interconnect::pooled(3, Energy::ZERO).unwrap().is_silent());
        let ic = Interconnect::decoupled(3)
            .unwrap()
            .with_link(2, 0, Energy::from_mwh(1.0))
            .unwrap();
        assert!(!ic.is_silent());
        assert_eq!(ic.open_links().collect::<Vec<_>>(), vec![(2, 0)]);
        let full = Interconnect::uniform(3, Energy::from_mwh(1.0)).unwrap();
        assert_eq!(full.open_links().count(), 6);
    }

    #[test]
    fn describe_matches_legacy_for_pooled() {
        let ic = Interconnect::pooled(3, Energy::from_mwh(2.0)).unwrap();
        assert_eq!(ic.describe(), "cap 2 MWh/frame");
        let lossy = ic.with_uniform_loss(0.1).unwrap();
        assert!(
            lossy.describe().contains("loss <= 0.1"),
            "{}",
            lossy.describe()
        );
    }

    #[test]
    fn greedy_prefers_expensive_recipients_and_respects_caps() {
        let ic = Interconnect::pooled(3, Energy::from_mwh(2.0)).unwrap();
        // Site 0 curtails 3 MWh; site 1 pays $80, site 2 pays $40.
        let ex = exchange(&[3.0, 0.0, 0.0], &[0.0, 1.5, 2.0], &[0.0, 80.0, 40.0]);
        let s = ic.settle_greedy(&ex);
        // 1.5 MWh to site 1 first, then 0.5 MWh (pool remainder) to site 2.
        assert!((s.sent.mwh() - 2.0).abs() < 1e-12);
        assert_eq!(s.sent, s.delivered);
        assert!((s.savings.dollars() - (1.5 * 80.0 + 0.5 * 40.0)).abs() < 1e-9);
        assert_eq!(s.wheeling, Money::ZERO);
    }

    #[test]
    fn losses_shrink_delivery_and_wheeling_bills_the_sender() {
        let ic = Interconnect::uniform(2, Energy::from_mwh(10.0))
            .unwrap()
            .with_uniform_loss(0.2)
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(5.0))
            .unwrap();
        let ex = exchange(&[4.0, 0.0], &[0.0, 2.0], &[0.0, 50.0]);
        let s = ic.settle_greedy(&ex);
        // Need 2 delivered → 2.5 sent; donor has 4, caps allow it.
        assert!((s.sent.mwh() - 2.5).abs() < 1e-12);
        assert!((s.delivered.mwh() - 2.0).abs() < 1e-12);
        assert!((s.savings.dollars() - 100.0).abs() < 1e-9);
        assert!((s.wheeling.dollars() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn uneconomic_links_move_nothing() {
        // Delivered value 50 × 0.5 = $25 < $30 wheeling: the link is shut.
        let ic = Interconnect::uniform(2, Energy::from_mwh(10.0))
            .unwrap()
            .with_uniform_loss(0.5)
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(30.0))
            .unwrap();
        let ex = exchange(&[4.0, 0.0], &[0.0, 2.0], &[0.0, 50.0]);
        assert_eq!(ic.settle_greedy(&ex), FrameSettlement::default());
    }

    #[test]
    fn pair_caps_bind_per_directed_line() {
        let ic = Interconnect::decoupled(3)
            .unwrap()
            .with_link(0, 2, Energy::from_mwh(0.5))
            .unwrap()
            .with_link(1, 2, Energy::from_mwh(0.25))
            .unwrap();
        let ex = exchange(&[5.0, 5.0, 0.0], &[0.0, 0.0, 3.0], &[0.0, 0.0, 60.0]);
        let s = ic.settle_greedy(&ex);
        assert!((s.sent.mwh() - 0.75).abs() < 1e-12);
        assert!((s.savings.dollars() - 0.75 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn settlement_is_strictly_inter_site() {
        // One site both curtails and buys: nothing may move to itself.
        let ic = Interconnect::pooled(2, Energy::from_mwh(10.0)).unwrap();
        let ex = exchange(&[3.0, 0.0], &[2.0, 0.0], &[55.0, 0.0]);
        assert_eq!(ic.settle_greedy(&ex), FrameSettlement::default());
    }
}
