//! The inter-site transmission topology: per-pair directed transfer
//! caps, multiplicative line losses and per-MWh wheeling prices.
//!
//! [`Interconnect`] replaces the old single fleet-pooled `transfer_cap`
//! knob of [`MultiSiteEngine`](crate::MultiSiteEngine) with real (if
//! stylized) physics: energy *sent* from site `i` to site `j` is capped
//! per coarse frame by a directed pair cap, arrives multiplied by
//! `1 − loss(i, j)`, and pays a wheeling price per MWh sent. An optional
//! fleet-pooled cap on top bounds the total energy moved per frame — the
//! legacy knob is exactly a pooled topology with lossless, free links.
//!
//! Three dispatch modes consume the topology:
//!
//! * [`Interconnect::settle_greedy`] — the *post-hoc* mode: per frame,
//!   realized curtailment is matched to the most expensive realized
//!   real-time purchases elsewhere in the fleet, link by link, in a
//!   deterministic fold (donors in site order, recipients by descending
//!   frame-average price). Bookkeeping, not control: no flow is planned,
//!   only settled after the fact.
//! * `dpss-core`'s `FleetPlanner` — the *planned* mode: a per-frame
//!   linear program over the same [`FrameExchange`] chooses export flows
//!   jointly across all links (bounded by the pair caps), which with
//!   per-pair caps, losses or wheeling prices can beat the greedy fold.
//! * The same planner with coordination enabled — the *coordinated*
//!   mode: between frames of a lockstep
//!   [`MultiSiteEngine::run_with`](crate::MultiSiteEngine::run_with)
//!   fleet run it also plans *prospective* flows and hands each site a
//!   [`FrameDirective`](crate::FrameDirective) (buy-to-export), closing
//!   the loop from settlement back to physical dispatch.
//!
//! Both settle the same per-frame exchange, so their results are directly
//! comparable and the physics property suite
//! (`crates/sim/tests/interconnect_physics.rs`) pins conservation, loss
//! monotonicity and the decoupling identity for both.

// Site and pair indices are validated once by the topology constructor
// (`add_pair` rejects out-of-range sites) and the per-pair vectors are
// sized from that same roster, so later lookups are in bounds.
// audit:allow-file(slice-index): site/pair indices are validated by the topology constructor that sized the vectors

use dpss_units::{Energy, Money, Price};

use crate::SimError;

/// Above this many open links, [`Interconnect::describe`] switches from
/// the link-by-link spell-out to a compact fleet-scale summary (counts
/// plus min..max ranges). Every published small-topology title has at
/// most this many links, so their wording is unaffected.
pub const DESCRIBE_LINK_LIMIT: usize = 12;

/// Directed inter-site transmission topology for a fleet of `sites`
/// datacenters: per-pair frame caps, losses and wheeling prices, plus an
/// optional fleet-pooled per-frame cap.
///
/// # Examples
///
/// ```
/// use dpss_sim::Interconnect;
/// use dpss_units::{Energy, Price};
///
/// # fn main() -> Result<(), dpss_sim::SimError> {
/// let ic = Interconnect::uniform(3, Energy::from_mwh(1.5))?
///     .with_uniform_loss(0.05)?
///     .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))?
///     .with_link(0, 2, Energy::ZERO)?; // sever one directed line
/// assert_eq!(ic.cap(0, 2), Energy::ZERO);
/// assert_eq!(ic.cap(2, 0), Energy::from_mwh(1.5));
/// assert!((ic.loss(1, 0) - 0.05).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    sites: usize,
    /// Directed pair caps (energy sent per frame), row-major `from × to`;
    /// the diagonal is unused and held at zero.
    cap: Vec<Energy>,
    /// Multiplicative line losses in `[0, 1)`, same layout.
    loss: Vec<f64>,
    /// Wheeling price per MWh *sent*, same layout.
    wheel: Vec<Price>,
    /// Optional per-frame cap schedules, same layout: when set for a
    /// link, frame `k` uses `schedule[k % len]` instead of the static
    /// cap (maintenance windows, congestion pricing).
    schedule: Vec<Option<Vec<Energy>>>,
    /// Optional fleet-pooled cap on total energy sent per frame.
    pool_cap: Option<Energy>,
}

impl Interconnect {
    fn filled(sites: usize, cap: Energy, pool_cap: Option<Energy>) -> Result<Self, SimError> {
        if sites == 0 {
            return Err(SimError::SiteMismatch {
                site: 0,
                what: "an interconnect needs at least one site",
            });
        }
        validate_cap(cap)?;
        let mut ic = Interconnect {
            sites,
            cap: vec![cap; sites * sites],
            loss: vec![0.0; sites * sites],
            wheel: vec![Price::from_dollars_per_mwh(0.0); sites * sites],
            schedule: vec![None; sites * sites],
            pool_cap,
        };
        for s in 0..sites {
            ic.cap[s * sites + s] = Energy::ZERO;
        }
        Ok(ic)
    }

    /// A topology with no lines at all: every settlement is empty and the
    /// fleet behaves exactly like independent sites.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites == 0`.
    pub fn decoupled(sites: usize) -> Result<Self, SimError> {
        Interconnect::filled(sites, Energy::ZERO, None)
    }

    /// The legacy knob as a topology: lossless, free links between every
    /// pair, with both each pair and the fleet pool capped at `cap` per
    /// frame. Settling this greedily is bit-identical to the old single
    /// `transfer_cap` fold.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites == 0`;
    /// [`SimError::InvalidParameter`] for a non-finite or negative cap.
    pub fn pooled(sites: usize, cap: Energy) -> Result<Self, SimError> {
        Interconnect::filled(sites, cap, Some(cap))
    }

    /// Every ordered pair gets its own directed line with `pair_cap` per
    /// frame; no fleet-pooled cap.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites == 0`;
    /// [`SimError::InvalidParameter`] for a non-finite or negative cap.
    pub fn uniform(sites: usize, pair_cap: Energy) -> Result<Self, SimError> {
        Interconnect::filled(sites, pair_cap, None)
    }

    /// The full-mesh roster name for [`Interconnect::uniform`]: every
    /// ordered pair gets its own directed line with `pair_cap` per frame.
    /// (`mesh` is the spelling the topology sweep axis uses.)
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites == 0`;
    /// [`SimError::InvalidParameter`] for a non-finite or negative cap.
    pub fn mesh(sites: usize, pair_cap: Energy) -> Result<Self, SimError> {
        Interconnect::uniform(sites, pair_cap)
    }

    /// A bidirectional ring: site `i` is linked to its calendar
    /// neighbours `(i + 1) mod n` and `(i − 1) mod n` only, each directed
    /// line capped at `pair_cap` per frame. With fewer than three sites
    /// this degenerates to the full mesh (two sites have only one pair).
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites == 0`;
    /// [`SimError::InvalidParameter`] for a non-finite or negative cap.
    pub fn ring(sites: usize, pair_cap: Energy) -> Result<Self, SimError> {
        validate_cap(pair_cap)?;
        let mut ic = Interconnect::decoupled(sites)?;
        if sites >= 2 {
            for i in 0..sites {
                let next = (i + 1) % sites;
                ic = ic.with_link(i, next, pair_cap)?;
                ic = ic.with_link(next, i, pair_cap)?;
            }
        }
        Ok(ic)
    }

    /// The topology-roster name for [`Interconnect::decoupled`]: every
    /// line severed, so the fleet settles nothing and behaves exactly
    /// like independent sites.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites == 0`.
    pub fn severed(sites: usize) -> Result<Self, SimError> {
        Interconnect::decoupled(sites)
    }

    /// Sets the directed cap of the `from → to` line.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for a bad cap or a diagonal /
    /// out-of-range pair.
    pub fn with_link(mut self, from: usize, to: usize, cap: Energy) -> Result<Self, SimError> {
        validate_cap(cap)?;
        let k = self.pair_index(from, to)?;
        self.cap[k] = cap;
        Ok(self)
    }

    /// Sets the multiplicative loss of the `from → to` line
    /// (`delivered = sent × (1 − loss)`).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] unless `0 ≤ loss < 1` and the pair
    /// is a real directed line.
    pub fn with_loss(mut self, from: usize, to: usize, loss: f64) -> Result<Self, SimError> {
        validate_loss(loss)?;
        let k = self.pair_index(from, to)?;
        self.loss[k] = loss;
        Ok(self)
    }

    /// Sets the per-MWh-sent wheeling price of the `from → to` line.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for a non-finite or negative price
    /// or a bad pair.
    pub fn with_wheeling(mut self, from: usize, to: usize, price: Price) -> Result<Self, SimError> {
        validate_wheel(price)?;
        let k = self.pair_index(from, to)?;
        self.wheel[k] = price;
        Ok(self)
    }

    /// Sets the same loss on every line.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] unless `0 ≤ loss < 1`.
    pub fn with_uniform_loss(mut self, loss: f64) -> Result<Self, SimError> {
        validate_loss(loss)?;
        for l in &mut self.loss {
            *l = loss;
        }
        Ok(self)
    }

    /// Sets the same wheeling price on every line.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for a non-finite or negative price.
    pub fn with_uniform_wheeling(mut self, price: Price) -> Result<Self, SimError> {
        validate_wheel(price)?;
        for w in &mut self.wheel {
            *w = price;
        }
        Ok(self)
    }

    /// Replaces the fleet-pooled per-frame cap (`None` removes it).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for a non-finite or negative cap.
    pub fn with_pool_cap(mut self, cap: Option<Energy>) -> Result<Self, SimError> {
        if let Some(c) = cap {
            validate_cap(c)?;
        }
        self.pool_cap = cap;
        Ok(self)
    }

    /// Gives the `from → to` line a per-frame cap schedule: frame `k`
    /// is capped at `caps[k % caps.len()]` (the schedule cycles), which
    /// overrides the static cap — maintenance windows and congestion
    /// pricing as cheap per-frame bound edits. An all-equal schedule
    /// settles bit-identically to the equivalent static cap.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for an empty schedule, a
    /// non-finite or negative entry, or a diagonal / out-of-range pair.
    pub fn with_cap_schedule(
        mut self,
        from: usize,
        to: usize,
        caps: Vec<Energy>,
    ) -> Result<Self, SimError> {
        if caps.is_empty() {
            return Err(SimError::InvalidParameter {
                what: "interconnect cap schedule",
                requirement: "must contain at least one frame cap",
            });
        }
        for &c in &caps {
            validate_cap(c)?;
        }
        let k = self.pair_index(from, to)?;
        self.schedule[k] = Some(caps);
        Ok(self)
    }

    /// Number of sites the topology spans.
    #[must_use]
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Static directed cap of the `from → to` line (zero for the
    /// diagonal). When the link carries a cap schedule this is only the
    /// template value — use [`cap_at`](Self::cap_at) for the cap that
    /// actually binds a given frame.
    ///
    /// # Panics
    ///
    /// Panics if a site index is out of range.
    #[must_use]
    pub fn cap(&self, from: usize, to: usize) -> Energy {
        assert!(from < self.sites && to < self.sites, "site out of range");
        self.cap[from * self.sites + to]
    }

    /// Directed cap of the `from → to` line *for frame `frame`*: the
    /// schedule entry `frame % len` when the link is scheduled, the
    /// static cap otherwise.
    ///
    /// # Panics
    ///
    /// Panics if a site index is out of range.
    #[must_use]
    pub fn cap_at(&self, from: usize, to: usize, frame: usize) -> Energy {
        assert!(from < self.sites && to < self.sites, "site out of range");
        let k = from * self.sites + to;
        match &self.schedule[k] {
            Some(caps) => caps[frame % caps.len()],
            None => self.cap[k],
        }
    }

    /// The largest cap the `from → to` line can ever carry: the
    /// schedule's maximum when scheduled, the static cap otherwise.
    /// This is what decides whether a link belongs to
    /// [`open_links`](Self::open_links).
    ///
    /// # Panics
    ///
    /// Panics if a site index is out of range.
    #[must_use]
    pub fn cap_ceiling(&self, from: usize, to: usize) -> Energy {
        assert!(from < self.sites && to < self.sites, "site out of range");
        self.ceiling_of(from * self.sites + to)
    }

    fn ceiling_of(&self, k: usize) -> Energy {
        match &self.schedule[k] {
            Some(caps) => caps.iter().fold(Energy::ZERO, |a, &c| a.max(c)),
            None => self.cap[k],
        }
    }

    /// Multiplicative loss of the `from → to` line.
    ///
    /// # Panics
    ///
    /// Panics if a site index is out of range.
    #[must_use]
    pub fn loss(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.sites && to < self.sites, "site out of range");
        self.loss[from * self.sites + to]
    }

    /// Wheeling price of the `from → to` line, per MWh sent.
    ///
    /// # Panics
    ///
    /// Panics if a site index is out of range.
    #[must_use]
    pub fn wheeling(&self, from: usize, to: usize) -> Price {
        assert!(from < self.sites && to < self.sites, "site out of range");
        self.wheel[from * self.sites + to]
    }

    /// The fleet-pooled per-frame cap, if any.
    #[must_use]
    pub fn pool_cap(&self) -> Option<Energy> {
        self.pool_cap
    }

    /// Whether no energy can ever move: every pair cap (including every
    /// schedule entry) is zero, or the pool cap is zero, or there is
    /// only one site.
    #[must_use]
    pub fn is_silent(&self) -> bool {
        self.sites < 2
            || self.pool_cap == Some(Energy::ZERO)
            || (0..self.cap.len()).all(|k| self.ceiling_of(k) <= Energy::ZERO)
    }

    /// The ordered pairs with a usable line (cap ceiling `> 0`, i.e. the
    /// static cap, or any schedule entry, is positive), in row-major
    /// (donor-major) order — the deterministic link roster both
    /// settlement modes iterate.
    pub fn open_links(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.sites;
        (0..n * n).filter_map(move |k| {
            let (i, j) = (k / n, k % n);
            (i != j && self.ceiling_of(k) > Energy::ZERO).then_some((i, j))
        })
    }

    /// One-line human description, used in table titles. A pooled legacy
    /// topology renders exactly as the old knob did; a uniform mesh gets
    /// one compact line; anything mixed (per-link caps, losses, wheeling
    /// or schedules) is spelled out link by link in sorted (row-major)
    /// order, so sweep table titles are deterministic and reviewable.
    #[must_use]
    pub fn describe(&self) -> String {
        let no_schedules = self.schedule.iter().all(Option::is_none);
        let lossless = self.loss.iter().all(|&l| l == 0.0);
        let free = self.wheel.iter().all(|&w| w.dollars_per_mwh() == 0.0);
        if no_schedules {
            if let Some(pool) = self.pool_cap {
                let pooled_caps = (0..self.sites * self.sites).all(|k| {
                    let (i, j) = (k / self.sites, k % self.sites);
                    self.cap[k] == if i == j { Energy::ZERO } else { pool }
                });
                if lossless && free && pooled_caps {
                    return format!("cap {} MWh/frame", pool.mwh());
                }
            }
        }
        let links: Vec<(usize, usize)> = self.open_links().collect();
        if links.is_empty() {
            return "severed (no open links)".to_owned();
        }
        let pool_suffix = match self.pool_cap {
            Some(p) => format!(", pool cap {} MWh/frame", p.mwh()),
            None => String::new(),
        };
        // Uniform mesh: every ordered pair open with one shared
        // (cap, loss, wheeling) triple and no schedule.
        let (i0, j0) = links[0];
        let full_mesh = links.len() == self.sites * (self.sites - 1);
        let shared = no_schedules
            && links.iter().all(|&(i, j)| {
                self.cap(i, j) == self.cap(i0, j0)
                    && self.loss(i, j) == self.loss(i0, j0)
                    && self.wheeling(i, j) == self.wheeling(i0, j0)
            });
        if full_mesh && shared {
            return format!(
                "mesh cap {} MWh/frame{}{}{}",
                self.cap(i0, j0).mwh(),
                describe_loss(self.loss(i0, j0)),
                describe_wheel(self.wheeling(i0, j0)),
                pool_suffix,
            );
        }
        // Fleet-scale topologies (a 100-site ring has 200 open links)
        // summarize instead of spelling every link out: link-by-link
        // titles stop being reviewable long before that, and table titles
        // should stay one line. Small topologies keep the exact per-link
        // wording below, byte for byte.
        if links.len() > DESCRIBE_LINK_LIMIT {
            return self.describe_summary(&links, &pool_suffix);
        }
        let per_link: Vec<String> = links
            .iter()
            .map(|&(i, j)| {
                let k = i * self.sites + j;
                let cap = match &self.schedule[k] {
                    Some(caps) => {
                        let lo = caps
                            .iter()
                            .fold(Energy::from_mwh(f64::MAX), |a, &c| a.min(c));
                        let hi = self.ceiling_of(k);
                        format!(
                            "cap {}..{} MWh/frame ({}-frame sched)",
                            lo.mwh(),
                            hi.mwh(),
                            caps.len()
                        )
                    }
                    None => format!("cap {} MWh/frame", self.cap[k].mwh()),
                };
                format!(
                    "{i}->{j} {cap}{}{}",
                    describe_loss(self.loss[k]),
                    describe_wheel(self.wheel[k]),
                )
            })
            .collect();
        format!("links {}{}", per_link.join("; "), pool_suffix)
    }

    /// The compact fleet-scale description: counts and min..max ranges
    /// over the open links instead of one clause per link. Deterministic
    /// (ranges fold over the row-major roster) and always one short line
    /// regardless of fleet size.
    fn describe_summary(&self, links: &[(usize, usize)], pool_suffix: &str) -> String {
        let range = |vals: &mut dyn Iterator<Item = f64>| -> (f64, f64) {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for v in vals {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (lo, hi)
        };
        let fmt_range = |(lo, hi): (f64, f64)| {
            if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}..{hi}")
            }
        };
        let k_of = |&(i, j): &(usize, usize)| i * self.sites + j;
        let caps = fmt_range(range(
            &mut links.iter().map(|l| self.ceiling_of(k_of(l)).mwh()),
        ));
        let scheduled = links
            .iter()
            .filter(|l| self.schedule[k_of(l)].is_some())
            .count();
        let sched_note = match scheduled {
            0 => String::new(),
            s => format!(" ({s} scheduled)"),
        };
        let (loss_lo, loss_hi) = range(&mut links.iter().map(|l| self.loss[k_of(l)]));
        let loss = if loss_hi == 0.0 {
            String::new()
        } else {
            format!(" loss {}", fmt_range((loss_lo, loss_hi)))
        };
        let (wheel_lo, wheel_hi) =
            range(&mut links.iter().map(|l| self.wheel[k_of(l)].dollars_per_mwh()));
        let wheel = if wheel_hi == 0.0 {
            String::new()
        } else {
            format!(" wheel ${}/MWh", fmt_range((wheel_lo, wheel_hi)))
        };
        format!(
            "{} sites, {} links, cap {caps} MWh/frame{sched_note}{loss}{wheel}{pool_suffix}",
            self.sites,
            links.len(),
        )
    }

    /// The post-hoc greedy settlement of one frame's exchange: donated
    /// curtailment displaces the most expensive realized real-time
    /// purchases first (ties by site index), donors drawn in site order,
    /// respecting pair caps, the pool cap and per-link economics (a link
    /// whose delivered value does not cover its wheeling price moves
    /// nothing). Pure arithmetic — no RNG, no scheduling dependence.
    ///
    /// # Panics
    ///
    /// Panics if the exchange's site rosters do not match the topology.
    #[must_use]
    pub fn settle_greedy(&self, ex: &FrameExchange) -> FrameSettlement {
        let n = self.sites;
        assert!(
            ex.curtailed.len() == n && ex.rt_energy.len() == n && ex.rt_price.len() == n,
            "exchange covers a different site roster than the topology"
        );
        let mut out = FrameSettlement::default();
        if self.is_silent() {
            return out;
        }
        let mut donors = ex.curtailed.clone();
        // Per-frame caps: a scheduled link binds at its entry for this
        // exchange's frame, everything else at the static cap.
        let mut pair_left: Vec<Energy> = (0..n * n)
            .map(|k| match &self.schedule[k] {
                Some(caps) => caps[ex.frame % caps.len()],
                None => self.cap[k],
            })
            .collect();
        let mut pool_left = self.pool_cap.unwrap_or(Energy::from_mwh(f64::INFINITY));
        // (site, displaceable rt energy, frame-average rt price $/MWh),
        // most expensive first, ties by site index.
        let mut recipients: Vec<(usize, Energy, f64)> = (0..n)
            .filter(|&s| ex.rt_energy[s] > Energy::ZERO)
            .map(|s| (s, ex.rt_energy[s], ex.rt_price[s]))
            .collect();
        recipients.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        for (r_site, mut need, price) in recipients {
            for (d_site, avail) in donors.iter_mut().enumerate() {
                if d_site == r_site {
                    continue;
                }
                let k = d_site * n + r_site;
                let loss = self.loss[k];
                let wheel = self.wheel[k].dollars_per_mwh();
                // Per-link economics: moving energy must save money.
                if price * (1.0 - loss) - wheel <= 0.0 {
                    continue;
                }
                let sent_for_need = Energy::from_mwh(need.mwh() / (1.0 - loss));
                let sent = (*avail).min(pair_left[k]).min(pool_left).min(sent_for_need);
                if sent <= Energy::ZERO {
                    continue;
                }
                let delivered = sent * (1.0 - loss);
                *avail -= sent;
                pair_left[k] -= sent;
                pool_left -= sent;
                need -= delivered;
                out.sent += sent;
                out.delivered += delivered;
                out.savings += Money::from_dollars(delivered.mwh() * price);
                out.wheeling += Money::from_dollars(sent.mwh() * wheel);
            }
            if pool_left <= Energy::ZERO {
                break;
            }
        }
        out
    }
    fn pair_index(&self, from: usize, to: usize) -> Result<usize, SimError> {
        if from >= self.sites || to >= self.sites {
            return Err(SimError::InvalidParameter {
                what: "interconnect pair",
                requirement: "site indices must be within the fleet roster",
            });
        }
        if from == to {
            return Err(SimError::InvalidParameter {
                what: "interconnect pair",
                requirement: "lines connect two distinct sites",
            });
        }
        Ok(from * self.sites + to)
    }
}

fn describe_loss(loss: f64) -> String {
    if loss == 0.0 {
        String::new()
    } else {
        format!(" loss {loss}")
    }
}

fn describe_wheel(wheel: Price) -> String {
    if wheel.dollars_per_mwh() == 0.0 {
        String::new()
    } else {
        format!(" wheel ${}/MWh", wheel.dollars_per_mwh())
    }
}

fn validate_cap(cap: Energy) -> Result<(), SimError> {
    if cap.is_finite() && cap.mwh() >= 0.0 {
        Ok(())
    } else {
        Err(SimError::InvalidParameter {
            what: "interconnect cap",
            requirement: "must be finite and non-negative",
        })
    }
}

fn validate_loss(loss: f64) -> Result<(), SimError> {
    if loss.is_finite() && (0.0..1.0).contains(&loss) {
        Ok(())
    } else {
        Err(SimError::InvalidParameter {
            what: "interconnect loss",
            requirement: "must be in [0, 1)",
        })
    }
}

fn validate_wheel(price: Price) -> Result<(), SimError> {
    if price.is_finite() && price.dollars_per_mwh() >= 0.0 {
        Ok(())
    } else {
        Err(SimError::InvalidParameter {
            what: "interconnect wheeling price",
            requirement: "must be finite and non-negative",
        })
    }
}

/// One coarse frame's settle-able quantities, extracted from the per-site
/// reports: what each site curtailed (its export budget) and what it
/// bought in the real-time market (its displaceable imports), with the
/// frame-average realized real-time price.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameExchange {
    /// Which coarse frame.
    pub frame: usize,
    /// Curtailed energy per site — the donors' budgets.
    pub curtailed: Vec<Energy>,
    /// Real-time energy purchased per site — the displaceable need.
    pub rt_energy: Vec<Energy>,
    /// Frame-average realized real-time price per site in $/MWh
    /// (zero when the site bought nothing).
    pub rt_price: Vec<f64>,
}

/// What one frame's settlement moved and what it was worth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameSettlement {
    /// Energy sent by donors (before line losses).
    pub sent: Energy,
    /// Energy delivered to recipients (after line losses).
    pub delivered: Energy,
    /// Real-time purchase cost displaced by the delivered energy.
    pub savings: Money,
    /// Wheeling charges on the energy sent.
    pub wheeling: Money,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(curtailed: &[f64], rt: &[f64], price: &[f64]) -> FrameExchange {
        FrameExchange {
            frame: 0,
            curtailed: curtailed.iter().map(|&e| Energy::from_mwh(e)).collect(),
            rt_energy: rt.iter().map(|&e| Energy::from_mwh(e)).collect(),
            rt_price: price.to_vec(),
        }
    }

    #[test]
    fn constructors_validate() {
        assert!(Interconnect::decoupled(0).is_err());
        assert!(Interconnect::pooled(2, Energy::from_mwh(-1.0)).is_err());
        assert!(Interconnect::uniform(2, Energy::from_mwh(f64::NAN)).is_err());
        let ic = Interconnect::uniform(3, Energy::from_mwh(1.0)).unwrap();
        assert!(ic.clone().with_link(0, 0, Energy::ZERO).is_err());
        assert!(ic.clone().with_link(0, 3, Energy::ZERO).is_err());
        assert!(ic.clone().with_loss(0, 1, 1.0).is_err());
        assert!(ic.clone().with_loss(0, 1, -0.1).is_err());
        assert!(ic
            .clone()
            .with_wheeling(0, 1, Price::from_dollars_per_mwh(-2.0))
            .is_err());
        assert!(ic
            .with_pool_cap(Some(Energy::from_mwh(f64::INFINITY)))
            .is_err());
    }

    #[test]
    fn silence_and_link_roster() {
        assert!(Interconnect::decoupled(3).unwrap().is_silent());
        assert!(Interconnect::pooled(1, Energy::from_mwh(5.0))
            .unwrap()
            .is_silent());
        assert!(Interconnect::pooled(3, Energy::ZERO).unwrap().is_silent());
        let ic = Interconnect::decoupled(3)
            .unwrap()
            .with_link(2, 0, Energy::from_mwh(1.0))
            .unwrap();
        assert!(!ic.is_silent());
        assert_eq!(ic.open_links().collect::<Vec<_>>(), vec![(2, 0)]);
        let full = Interconnect::uniform(3, Energy::from_mwh(1.0)).unwrap();
        assert_eq!(full.open_links().count(), 6);
    }

    #[test]
    fn describe_matches_legacy_for_pooled() {
        let ic = Interconnect::pooled(3, Energy::from_mwh(2.0)).unwrap();
        assert_eq!(ic.describe(), "cap 2 MWh/frame");
        let lossy = ic.with_uniform_loss(0.1).unwrap();
        assert_eq!(
            lossy.describe(),
            "mesh cap 2 MWh/frame loss 0.1, pool cap 2 MWh/frame"
        );
    }

    #[test]
    fn describe_spells_out_mixed_meshes_link_by_link() {
        // The old wording collapsed mixed topologies into one "<=" line;
        // now every open link is listed in sorted (row-major) order so
        // sweep table titles are stable and reviewable.
        let ic = Interconnect::decoupled(3)
            .unwrap()
            .with_link(2, 0, Energy::from_mwh(1.5))
            .unwrap()
            .with_link(0, 1, Energy::from_mwh(0.5))
            .unwrap()
            .with_loss(0, 1, 0.05)
            .unwrap()
            .with_wheeling(2, 0, Price::from_dollars_per_mwh(2.0))
            .unwrap();
        assert_eq!(
            ic.describe(),
            "links 0->1 cap 0.5 MWh/frame loss 0.05; 2->0 cap 1.5 MWh/frame wheel $2/MWh"
        );
        assert_eq!(
            Interconnect::severed(4).unwrap().describe(),
            "severed (no open links)"
        );
        let sched = Interconnect::decoupled(2)
            .unwrap()
            .with_cap_schedule(
                0,
                1,
                vec![Energy::from_mwh(1.0), Energy::ZERO, Energy::from_mwh(3.0)],
            )
            .unwrap();
        assert_eq!(
            sched.describe(),
            "links 0->1 cap 0..3 MWh/frame (3-frame sched)"
        );
        // The uniform compact form still names the mesh in one line.
        let mesh = Interconnect::mesh(3, Energy::from_mwh(1.0))
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
            .unwrap();
        assert_eq!(mesh.describe(), "mesh cap 1 MWh/frame wheel $2/MWh");
    }

    #[test]
    fn describe_summarizes_fleet_scale_topologies() {
        // Above DESCRIBE_LINK_LIMIT open links the title compacts to
        // counts and ranges — a 100-site ring stays one reviewable line.
        let ring = Interconnect::ring(100, Energy::from_mwh(1.0))
            .unwrap()
            .with_uniform_loss(0.05)
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
            .unwrap();
        assert_eq!(
            ring.describe(),
            "100 sites, 200 links, cap 1 MWh/frame loss 0.05 wheel $2/MWh"
        );
        // Mixed caps, schedules and losses render as min..max ranges and
        // a scheduled-link count.
        let mixed = Interconnect::ring(7, Energy::from_mwh(1.0))
            .unwrap()
            .with_link(0, 1, Energy::from_mwh(2.5))
            .unwrap()
            .with_loss(1, 2, 0.1)
            .unwrap()
            .with_cap_schedule(2, 3, vec![Energy::from_mwh(0.5), Energy::from_mwh(4.0)])
            .unwrap();
        assert_eq!(
            mixed.describe(),
            "7 sites, 14 links, cap 1..4 MWh/frame (1 scheduled) loss 0..0.1"
        );
    }

    #[test]
    fn describe_keeps_link_by_link_wording_at_the_limit() {
        // A 4-site ring with one perturbed cap has 8 open links — at or
        // below the limit the exact per-link wording is preserved.
        let ic = Interconnect::ring(4, Energy::from_mwh(1.0))
            .unwrap()
            .with_link(0, 1, Energy::from_mwh(2.0))
            .unwrap();
        let d = ic.describe();
        assert!(
            d.starts_with("links 0->1 cap 2 MWh/frame; 0->3 cap 1 MWh/frame;"),
            "{d}"
        );
        assert_eq!(ic.open_links().count(), 8);
    }

    #[test]
    fn ring_links_only_neighbours() {
        let ic = Interconnect::ring(4, Energy::from_mwh(1.0)).unwrap();
        let links: Vec<(usize, usize)> = ic.open_links().collect();
        assert_eq!(
            links,
            vec![
                (0, 1),
                (0, 3),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 0),
                (3, 2)
            ]
        );
        assert_eq!(ic.cap(0, 2), Energy::ZERO);
        // Degenerate rosters still construct.
        assert!(Interconnect::ring(1, Energy::from_mwh(1.0))
            .unwrap()
            .is_silent());
        assert_eq!(
            Interconnect::ring(2, Energy::from_mwh(1.0))
                .unwrap()
                .open_links()
                .count(),
            2
        );
        assert!(Interconnect::ring(0, Energy::from_mwh(1.0)).is_err());
        assert!(Interconnect::ring(3, Energy::from_mwh(-1.0)).is_err());
    }

    #[test]
    fn cap_schedules_cycle_and_validate() {
        let ic = Interconnect::decoupled(2)
            .unwrap()
            .with_cap_schedule(0, 1, vec![Energy::from_mwh(2.0), Energy::ZERO])
            .unwrap();
        assert_eq!(ic.cap_at(0, 1, 0), Energy::from_mwh(2.0));
        assert_eq!(ic.cap_at(0, 1, 1), Energy::ZERO);
        assert_eq!(ic.cap_at(0, 1, 2), Energy::from_mwh(2.0), "cycles");
        assert_eq!(ic.cap_ceiling(0, 1), Energy::from_mwh(2.0));
        // The schedule overrides the static cap, which stays the
        // template value.
        assert_eq!(ic.cap(0, 1), Energy::ZERO);
        assert!(
            !ic.is_silent(),
            "a schedule with a positive entry opens the link"
        );
        assert_eq!(ic.open_links().collect::<Vec<_>>(), vec![(0, 1)]);
        // Frame 1 is a maintenance window: the greedy settlement moves
        // nothing there but settles frame 0 normally.
        let mut ex = exchange(&[3.0, 0.0], &[0.0, 2.0], &[0.0, 60.0]);
        let open = ic.settle_greedy(&ex);
        assert!((open.sent.mwh() - 2.0).abs() < 1e-12);
        ex.frame = 1;
        assert_eq!(ic.settle_greedy(&ex), FrameSettlement::default());

        let base = Interconnect::decoupled(2).unwrap();
        assert!(base.clone().with_cap_schedule(0, 1, vec![]).is_err());
        assert!(base
            .clone()
            .with_cap_schedule(0, 0, vec![Energy::from_mwh(1.0)])
            .is_err());
        assert!(base
            .with_cap_schedule(0, 1, vec![Energy::from_mwh(-1.0)])
            .is_err());
    }

    #[test]
    fn greedy_prefers_expensive_recipients_and_respects_caps() {
        let ic = Interconnect::pooled(3, Energy::from_mwh(2.0)).unwrap();
        // Site 0 curtails 3 MWh; site 1 pays $80, site 2 pays $40.
        let ex = exchange(&[3.0, 0.0, 0.0], &[0.0, 1.5, 2.0], &[0.0, 80.0, 40.0]);
        let s = ic.settle_greedy(&ex);
        // 1.5 MWh to site 1 first, then 0.5 MWh (pool remainder) to site 2.
        assert!((s.sent.mwh() - 2.0).abs() < 1e-12);
        assert_eq!(s.sent, s.delivered);
        assert!((s.savings.dollars() - (1.5 * 80.0 + 0.5 * 40.0)).abs() < 1e-9);
        assert_eq!(s.wheeling, Money::ZERO);
    }

    #[test]
    fn losses_shrink_delivery_and_wheeling_bills_the_sender() {
        let ic = Interconnect::uniform(2, Energy::from_mwh(10.0))
            .unwrap()
            .with_uniform_loss(0.2)
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(5.0))
            .unwrap();
        let ex = exchange(&[4.0, 0.0], &[0.0, 2.0], &[0.0, 50.0]);
        let s = ic.settle_greedy(&ex);
        // Need 2 delivered → 2.5 sent; donor has 4, caps allow it.
        assert!((s.sent.mwh() - 2.5).abs() < 1e-12);
        assert!((s.delivered.mwh() - 2.0).abs() < 1e-12);
        assert!((s.savings.dollars() - 100.0).abs() < 1e-9);
        assert!((s.wheeling.dollars() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn uneconomic_links_move_nothing() {
        // Delivered value 50 × 0.5 = $25 < $30 wheeling: the link is shut.
        let ic = Interconnect::uniform(2, Energy::from_mwh(10.0))
            .unwrap()
            .with_uniform_loss(0.5)
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(30.0))
            .unwrap();
        let ex = exchange(&[4.0, 0.0], &[0.0, 2.0], &[0.0, 50.0]);
        assert_eq!(ic.settle_greedy(&ex), FrameSettlement::default());
    }

    #[test]
    fn pair_caps_bind_per_directed_line() {
        let ic = Interconnect::decoupled(3)
            .unwrap()
            .with_link(0, 2, Energy::from_mwh(0.5))
            .unwrap()
            .with_link(1, 2, Energy::from_mwh(0.25))
            .unwrap();
        let ex = exchange(&[5.0, 5.0, 0.0], &[0.0, 0.0, 3.0], &[0.0, 0.0, 60.0]);
        let s = ic.settle_greedy(&ex);
        assert!((s.sent.mwh() - 0.75).abs() < 1e-12);
        assert!((s.savings.dollars() - 0.75 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn settlement_is_strictly_inter_site() {
        // One site both curtails and buys: nothing may move to itself.
        let ic = Interconnect::pooled(2, Energy::from_mwh(10.0)).unwrap();
        let ex = exchange(&[3.0, 0.0], &[2.0, 0.0], &[55.0, 0.0]);
        assert_eq!(ic.settle_greedy(&ex), FrameSettlement::default());
    }
}
