use dpss_units::{Energy, Price, SlotId};

use crate::{FrameDirective, SlotOutcome};

/// What a controller sees at the start of a coarse frame (`t = kT`), when
/// the long-term-ahead purchase `g_bef(t)` must be committed.
///
/// Values come from the *observed* trace set — under the Fig. 9 robustness
/// experiment they carry injected estimation errors, while the plant runs
/// on the truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameObservation {
    /// Coarse frame index `k`.
    pub frame: usize,
    /// Absolute fine-slot index of the frame start.
    pub slot: usize,
    /// Number of fine slots `T` in this frame.
    pub slots_in_frame: usize,
    /// Duration of one fine slot in hours.
    pub slot_hours: f64,
    /// Long-term-ahead market price `p_lt(t)` for this frame.
    pub price_lt: Price,
    /// Observed delay-sensitive demand, as a per-slot average over the
    /// previous frame (the paper's "d(t) generated during time slot t",
    /// made causal; frame 0 sees its first slot's value).
    pub demand_ds: Energy,
    /// Observed delay-tolerant demand, per-slot average over the previous
    /// frame (frame 0: first slot's value).
    pub demand_dt: Energy,
    /// Observed renewable production, per-slot average over the previous
    /// frame (frame 0: first slot's value).
    pub renewable: Energy,
}

/// What a controller sees at each fine slot `τ`, when the real-time
/// purchase `g_rt(τ)` and the service fraction `γ(τ)` must be chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotObservation {
    /// Which slot this is.
    pub slot: SlotId,
    /// Duration of one fine slot in hours.
    pub slot_hours: f64,
    /// Real-time market price `p_rt(τ)`.
    pub price_rt: Price,
    /// Long-term price of the enclosing frame (context).
    pub price_lt: Price,
    /// Observed delay-sensitive demand `d_ds(τ)`.
    pub demand_ds: Energy,
    /// Observed delay-tolerant arrival `d_dt(τ)`.
    pub demand_dt: Energy,
    /// Observed renewable production `r(τ)`.
    pub renewable: Energy,
}

/// Plant state exposed to controllers (all of it is honestly observable in
/// a real DPSS: battery telemetry and the operator's own queue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemView {
    /// Battery level `b(τ)`.
    pub battery_level: Energy,
    /// Maximum grid-side charge the battery accepts this slot.
    pub battery_headroom: Energy,
    /// Maximum load-side discharge the battery can deliver this slot.
    pub battery_available: Energy,
    /// Remaining battery operating slots if a cycle budget is configured.
    pub battery_ops_remaining: Option<u64>,
    /// Delay-tolerant backlog `Q(τ)` (pre-arrival for the current slot).
    pub queue_backlog: Energy,
    /// Long-term energy already scheduled for each slot of the current
    /// frame (`g_bef(t)/T`); zero before the first frame decision.
    pub lt_allocation: Energy,
    /// Grid energy still purchasable this slot (`Pgrid·Δh − g_bef/T`).
    pub rt_purchase_cap: Energy,
}

/// The long-term-ahead market decision: total energy `g_bef(t)` bought for
/// the coming frame, delivered evenly as `g_bef(t)/T` per fine slot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameDecision {
    /// Total frame purchase `g_bef(t) ≥ 0`; the engine clamps it to the
    /// interconnect limit `T · Pgrid · Δh`.
    pub purchase_lt: Energy,
}

/// The per-fine-slot decisions of Algorithm 1's real-time balancing step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlotDecision {
    /// Real-time market purchase `g_rt(τ) ≥ 0`; clamped by the engine to
    /// the remaining interconnect capacity (Eq. (5)).
    pub purchase_rt: Energy,
    /// Fraction `γ(τ) ∈ [0, 1]` of the backlog `Q(τ)` to serve.
    pub serve_fraction: f64,
}

/// A DPSS control policy.
///
/// The [`Engine`](crate::Engine) calls [`Controller::plan_frame`] at every
/// coarse-frame start, then [`Controller::plan_slot`] at every fine slot,
/// then [`Controller::end_slot`] with the realized physics so the policy
/// can update internal state (SmartDPSS updates its virtual queues there).
///
/// Implementations must be deterministic given their construction inputs
/// for experiments to be reproducible; all built-in controllers are.
///
/// Controllers must be [`Send`] so fleet harnesses can step sites on
/// worker threads ([`MultiSiteEngine::with_threads`]): each controller is
/// owned by exactly one site and only ever borrowed by one thread at a
/// time, so `Send` (not `Sync`) is the whole requirement.
///
/// [`MultiSiteEngine::with_threads`]: crate::MultiSiteEngine::with_threads
pub trait Controller: Send {
    /// Short machine-friendly policy name used in reports (e.g.
    /// `"smart-dpss"`, `"offline"`, `"impatient"`).
    fn name(&self) -> &str;

    /// Receives a fleet dispatch directive for the coming coarse frame
    /// (default: ignored). A coordinated
    /// [`MultiSiteEngine`](crate::MultiSiteEngine) run delivers one
    /// directive per site immediately before the frame's
    /// [`plan_frame`](Self::plan_frame); export-aware controllers store
    /// it and fold it into that decision (e.g. buy-to-export when the
    /// directive's delivered value beats the local long-term price).
    /// Controllers that never see a directive must behave bit-identically
    /// to ones that only ever see inert directives.
    fn receive_directive(&mut self, directive: &FrameDirective) {
        let _ = directive;
    }

    /// Chooses the long-term-ahead purchase at a frame start.
    fn plan_frame(&mut self, obs: &FrameObservation, view: &SystemView) -> FrameDecision;

    /// Chooses the real-time purchase and backlog service for one slot.
    fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision;

    /// Observes the realized outcome of a slot (default: no-op).
    fn end_slot(&mut self, outcome: &SlotOutcome, view: &SystemView) {
        let _ = (outcome, view);
    }

    /// Captures the controller's internal state for checkpointing
    /// (default: empty — correct for stateless policies). Stateful
    /// controllers must save everything their future decisions depend on,
    /// so that a [`load_state`](Self::load_state)d twin continues the
    /// run byte-for-byte.
    fn save_state(&self) -> crate::ControllerState {
        crate::ControllerState::empty()
    }

    /// Reinstates a state captured by [`save_state`](Self::save_state) on
    /// a freshly constructed controller of the same configuration. The
    /// default accepts only the empty state: a non-empty state landing on
    /// a controller that did not opt in is a checkpoint/controller
    /// mismatch and must fail loudly rather than silently fork the run.
    ///
    /// # Errors
    ///
    /// [`SimError`](crate::SimError)`::InvalidState` if the state does
    /// not belong to this controller type or fails validation.
    fn load_state(&mut self, state: &crate::ControllerState) -> Result<(), crate::SimError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(crate::SimError::InvalidState {
                what: "controller does not support non-empty state restore",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must be object-safe: the engine takes `&mut dyn Controller`.
    #[test]
    fn controller_is_object_safe() {
        struct Noop;
        impl Controller for Noop {
            fn name(&self) -> &str {
                "noop"
            }
            fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
                FrameDecision::default()
            }
            fn plan_slot(&mut self, _: &SlotObservation, _: &SystemView) -> SlotDecision {
                SlotDecision::default()
            }
        }
        let mut c = Noop;
        let dynamic: &mut dyn Controller = &mut c;
        assert_eq!(dynamic.name(), "noop");
    }

    #[test]
    fn default_decisions_are_zero() {
        assert_eq!(FrameDecision::default().purchase_lt, Energy::ZERO);
        let d = SlotDecision::default();
        assert_eq!(d.purchase_rt, Energy::ZERO);
        assert_eq!(d.serve_fraction, 0.0);
    }
}
