//! Multi-datacenter composition: N per-site [`Engine`]s sharing a
//! calendar, with a simple interconnect-coupling knob.
//!
//! Each site is a full DPSS plant running its own traces and controller;
//! the only cross-site physics is an optional *inter-site transfer*
//! settlement applied per coarse frame: energy one site curtailed
//! (`W(τ)`) may displace real-time purchases at another site, up to a
//! configured cap per frame. The settlement is a deterministic fold over
//! the per-site reports in site-index order, so aggregate results are
//! byte-identical no matter how (or on how many threads) the site runs
//! were executed.
//!
//! The model is deliberately a knob, not a grid simulation: transfers are
//! settled after the fact at the recipient's frame-average real-time
//! price, donors still pay their waste penalty (the credit is netted at
//! the fleet level), and transmission is lossless. `cap = 0` decouples
//! the sites entirely while still producing fleet-level aggregates.

use dpss_units::{Energy, Money};

use crate::{Controller, Engine, RunReport, SimError};

/// N per-site [`Engine`]s plus the interconnect-coupling knob.
///
/// # Examples
///
/// ```
/// use dpss_sim::{Controller, Engine, MultiSiteEngine, SimParams};
/// use dpss_traces::ScenarioPack;
/// use dpss_units::{Energy, SlotClock};
/// # use dpss_sim::{FrameDecision, FrameObservation, SlotDecision, SlotObservation, SystemView};
/// # struct Eager;
/// # impl Controller for Eager {
/// #     fn name(&self) -> &str { "eager" }
/// #     fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
/// #         FrameDecision::default()
/// #     }
/// #     fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
/// #         SlotDecision {
/// #             purchase_rt: (obs.demand_ds + view.queue_backlog + obs.demand_dt - obs.renewable)
/// #                 .positive_part(),
/// #             serve_fraction: 1.0,
/// #         }
/// #     }
/// # }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::new(2, 24, 1.0).unwrap();
/// let pack = ScenarioPack::builtin("seasonal-calendar").unwrap();
/// let params = SimParams::icdcs13();
/// let sites: Result<Vec<Engine>, _> = (0..3)
///     .map(|s| Engine::new(params, pack.generate_site(&clock, 42, 0, s)?))
///     .collect();
/// let multi = MultiSiteEngine::new(sites?)?
///     .with_transfer_cap(Energy::from_mwh(2.0))?;
/// let mut ctls: Vec<Box<dyn Controller>> =
///     (0..3).map(|_| Box::new(Eager) as Box<dyn Controller>).collect();
/// let fleet = multi.run(&mut ctls)?;
/// assert_eq!(fleet.site_count(), 3);
/// assert!(fleet.total_cost() <= fleet.cost_before_transfers());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiSiteEngine {
    sites: Vec<Engine>,
    transfer_cap_per_frame: Energy,
}

impl MultiSiteEngine {
    /// Composes per-site engines into a fleet. All sites must share one
    /// calendar. Slot recording is enabled on every site (the coupling
    /// settlement needs per-frame outcome breakdowns).
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites` is empty or a site's
    /// calendar differs from site 0's.
    pub fn new(sites: Vec<Engine>) -> Result<Self, SimError> {
        let first = sites.first().ok_or(SimError::SiteMismatch {
            site: 0,
            what: "fleet needs at least one site",
        })?;
        let clock = first.truth().clock;
        for (i, site) in sites.iter().enumerate() {
            if site.truth().clock != clock {
                return Err(SimError::SiteMismatch {
                    site: i,
                    what: "calendar differs from site 0",
                });
            }
        }
        Ok(MultiSiteEngine {
            sites: sites
                .into_iter()
                .map(|s| s.with_slot_recording(true))
                .collect(),
            transfer_cap_per_frame: Energy::ZERO,
        })
    }

    /// Sets the interconnect-coupling knob: the total inter-site energy
    /// transfer allowed per coarse frame. `0` (the default) decouples the
    /// sites.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for non-finite or negative caps.
    pub fn with_transfer_cap(mut self, cap: Energy) -> Result<Self, SimError> {
        if !(cap.is_finite() && cap.mwh() >= 0.0) {
            return Err(SimError::InvalidParameter {
                what: "transfer_cap_per_frame",
                requirement: "must be finite and non-negative",
            });
        }
        self.transfer_cap_per_frame = cap;
        Ok(self)
    }

    /// The per-site engines, in site-index order.
    #[must_use]
    pub fn sites(&self) -> &[Engine] {
        &self.sites
    }

    /// Number of sites in the fleet.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The configured per-frame transfer cap.
    #[must_use]
    pub fn transfer_cap_per_frame(&self) -> Energy {
        self.transfer_cap_per_frame
    }

    /// Runs one controller per site (serially, in site order) and settles
    /// the interconnect coupling.
    ///
    /// Parallel harnesses can instead run `self.sites()[i]` on worker
    /// threads themselves and hand the collected reports (in site order)
    /// to [`couple`](Self::couple) — the settlement is a deterministic
    /// fold, so both paths produce identical fleet reports.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the controller roster length does not
    /// match the site roster; propagates per-site run failures.
    pub fn run(
        &self,
        controllers: &mut [Box<dyn Controller>],
    ) -> Result<MultiSiteReport, SimError> {
        if controllers.len() != self.sites.len() {
            return Err(SimError::SiteMismatch {
                site: controllers.len(),
                what: "controller roster length differs from site roster",
            });
        }
        let reports = self
            .sites
            .iter()
            .zip(controllers.iter_mut())
            .map(|(site, ctl)| site.run(ctl.as_mut()))
            .collect::<Result<Vec<_>, _>>()?;
        self.couple(reports)
    }

    /// Settles the interconnect coupling over already-computed per-site
    /// reports (in site-index order) and aggregates the fleet report.
    ///
    /// Per frame, each site's curtailed energy may displace real-time
    /// purchases at *other* sites (never its own — transfers are strictly
    /// inter-site), allocated to the most expensive recipients first
    /// (frame-average real-time price, ties broken by site index), from
    /// donors in site order, until the per-frame cap is spent. The fleet
    /// is credited with the displaced cost. Pure arithmetic over the
    /// reports — no RNG, no scheduling dependence.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the report roster length differs from
    /// the site roster or a report lacks slot outcomes.
    pub fn couple(&self, reports: Vec<RunReport>) -> Result<MultiSiteReport, SimError> {
        if reports.len() != self.sites.len() {
            return Err(SimError::SiteMismatch {
                site: reports.len(),
                what: "report roster length differs from site roster",
            });
        }
        let clock = self.sites[0].truth().clock;
        for (i, r) in reports.iter().enumerate() {
            let Some(outcomes) = r.slot_outcomes.as_ref() else {
                return Err(SimError::SiteMismatch {
                    site: i,
                    what: "report lacks slot outcomes (enable slot recording)",
                });
            };
            if outcomes.len() != clock.total_slots() {
                return Err(SimError::SiteMismatch {
                    site: i,
                    what: "report covers a different calendar than the fleet",
                });
            }
        }

        let t = clock.slots_per_frame();
        let cap = self.transfer_cap_per_frame;
        let mut transferred = Energy::ZERO;
        let mut savings = Money::ZERO;
        // A transfer is *inter*-site: a site's own curtailment can never
        // displace its own purchases (that would grant free intra-frame
        // storage), so single-site fleets settle nothing by construction.
        if cap > Energy::ZERO && self.sites.len() > 1 {
            for frame in 0..clock.frames() {
                let range = frame * t..(frame + 1) * t;
                // Per-site donatable curtailment, in site order.
                let mut donors: Vec<Energy> = Vec::with_capacity(reports.len());
                // (site, displaceable rt energy, frame-average rt price $/MWh)
                let mut recipients: Vec<(usize, Energy, f64)> = Vec::new();
                for (s, r) in reports.iter().enumerate() {
                    let outcomes =
                        &r.slot_outcomes.as_ref().expect("validated above")[range.clone()];
                    let waste: Energy = outcomes.iter().map(|o| o.waste).sum();
                    let rt: Energy = outcomes.iter().map(|o| o.purchase_rt).sum();
                    let rt_cost: Money = outcomes.iter().map(|o| o.cost.real_time).sum();
                    donors.push(waste);
                    if rt > Energy::ZERO {
                        recipients.push((s, rt, rt_cost.dollars() / rt.mwh()));
                    }
                }
                // Most expensive recipients first; ties by site index.
                recipients.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
                let mut cap_left = cap;
                for (r_site, mut need, price) in recipients {
                    for (d_site, avail) in donors.iter_mut().enumerate() {
                        if d_site == r_site {
                            continue;
                        }
                        let moved = (*avail).min(need).min(cap_left);
                        if moved <= Energy::ZERO {
                            continue;
                        }
                        *avail -= moved;
                        need -= moved;
                        cap_left -= moved;
                        transferred += moved;
                        savings += Money::from_dollars(moved.mwh() * price);
                    }
                    if cap_left <= Energy::ZERO {
                        break;
                    }
                }
            }
        }

        Ok(MultiSiteReport {
            frames: clock.frames(),
            slots: clock.total_slots(),
            transfer_cap_per_frame: cap,
            energy_transferred: transferred,
            transfer_savings: savings,
            sites: reports,
        })
    }
}

/// Aggregated result of one fleet run: per-site [`RunReport`]s plus the
/// interconnect settlement.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSiteReport {
    /// Per-site reports, in site-index order.
    pub sites: Vec<RunReport>,
    /// Coarse frames in the shared calendar.
    pub frames: usize,
    /// Fine slots in the shared calendar (per site).
    pub slots: usize,
    /// The coupling knob the settlement ran with.
    pub transfer_cap_per_frame: Energy,
    /// Total energy moved between sites over the horizon.
    pub energy_transferred: Energy,
    /// Real-time purchase cost displaced by the transfers.
    pub transfer_savings: Money,
}

impl MultiSiteReport {
    /// Number of sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Fleet cost with the sites fully decoupled (sum of site totals).
    #[must_use]
    pub fn cost_before_transfers(&self) -> Money {
        self.sites.iter().map(RunReport::total_cost).sum()
    }

    /// Fleet cost after the interconnect settlement.
    #[must_use]
    pub fn total_cost(&self) -> Money {
        self.cost_before_transfers() - self.transfer_savings
    }

    /// Fleet cost per fine slot of the shared calendar.
    #[must_use]
    pub fn time_average_cost(&self) -> Money {
        self.total_cost() / self.slots as f64
    }

    /// Total curtailed energy across the fleet (before transfers).
    #[must_use]
    pub fn total_energy_wasted(&self) -> Energy {
        self.sites.iter().map(|r| r.energy_wasted).sum()
    }

    /// Served-energy-weighted mean delay-tolerant service delay (slots).
    #[must_use]
    pub fn average_delay_slots(&self) -> f64 {
        let served: f64 = self.sites.iter().map(|r| r.served_dt.mwh()).sum();
        if served <= 0.0 {
            return 0.0;
        }
        self.sites
            .iter()
            .map(|r| r.average_delay_slots * r.served_dt.mwh())
            .sum::<f64>()
            / served
    }

    /// One-line fleet summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} sites: ${:.2} total (${:.2} saved by {:.2} MWh transfers), \
             ${:.4}/slot, delay {:.2} slots",
            self.site_count(),
            self.total_cost().dollars(),
            self.transfer_savings.dollars(),
            self.energy_transferred.mwh(),
            self.time_average_cost().dollars(),
            self.average_delay_slots(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        FrameDecision, FrameObservation, SimParams, SlotDecision, SlotObservation, SystemView,
    };
    use dpss_traces::ScenarioPack;
    use dpss_units::SlotClock;

    /// Serves everything eagerly from the real-time market.
    struct Eager;
    impl Controller for Eager {
        fn name(&self) -> &str {
            "eager"
        }
        fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
            FrameDecision::default()
        }
        fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
            SlotDecision {
                purchase_rt: (obs.demand_ds + view.queue_backlog + obs.demand_dt - obs.renewable)
                    .positive_part(),
                serve_fraction: 1.0,
            }
        }
    }

    fn fleet(sites: usize, cap: f64) -> MultiSiteEngine {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let pack = ScenarioPack::builtin("seasonal-calendar").unwrap();
        let engines: Vec<Engine> = (0..sites)
            .map(|s| {
                Engine::new(
                    SimParams::icdcs13(),
                    pack.generate_site(&clock, 42, 0, s).unwrap(),
                )
                .unwrap()
            })
            .collect();
        MultiSiteEngine::new(engines)
            .unwrap()
            .with_transfer_cap(Energy::from_mwh(cap))
            .unwrap()
    }

    fn eager_boxes(n: usize) -> Vec<Box<dyn Controller>> {
        (0..n)
            .map(|_| Box::new(Eager) as Box<dyn Controller>)
            .collect()
    }

    #[test]
    fn rejects_empty_and_mismatched_fleets() {
        assert!(matches!(
            MultiSiteEngine::new(Vec::new()),
            Err(SimError::SiteMismatch { site: 0, .. })
        ));
        let a = Engine::new(
            SimParams::icdcs13(),
            dpss_traces::Scenario::icdcs13()
                .generate(&SlotClock::new(2, 24, 1.0).unwrap(), 1)
                .unwrap(),
        )
        .unwrap();
        let b = Engine::new(
            SimParams::icdcs13(),
            dpss_traces::Scenario::icdcs13()
                .generate(&SlotClock::new(3, 24, 1.0).unwrap(), 1)
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            MultiSiteEngine::new(vec![a, b]),
            Err(SimError::SiteMismatch { site: 1, .. })
        ));
        assert!(fleet(1, 0.0)
            .with_transfer_cap(Energy::from_mwh(-1.0))
            .is_err());
    }

    #[test]
    fn run_rejects_wrong_controller_roster() {
        let multi = fleet(2, 0.0);
        assert!(matches!(
            multi.run(&mut eager_boxes(3)),
            Err(SimError::SiteMismatch { site: 3, .. })
        ));
    }

    #[test]
    fn couple_requires_slot_outcomes_in_reports() {
        let multi = fleet(2, 1.0);
        let mut reports: Vec<RunReport> = multi
            .sites()
            .iter()
            .map(|s| s.run(&mut Eager).unwrap())
            .collect();
        reports[1].slot_outcomes = None;
        assert!(matches!(
            multi.couple(reports),
            Err(SimError::SiteMismatch { site: 1, .. })
        ));
    }

    #[test]
    fn zero_cap_decouples_and_positive_cap_only_saves() {
        let multi = fleet(3, 0.0);
        let decoupled = multi.run(&mut eager_boxes(3)).unwrap();
        assert_eq!(decoupled.energy_transferred, Energy::ZERO);
        assert_eq!(decoupled.transfer_savings, Money::ZERO);
        assert_eq!(decoupled.total_cost(), decoupled.cost_before_transfers());

        let coupled = fleet(3, 2.0).run(&mut eager_boxes(3)).unwrap();
        // Same sites, same runs: the settlement can only reduce cost.
        assert_eq!(
            coupled.cost_before_transfers(),
            decoupled.cost_before_transfers()
        );
        assert!(coupled.total_cost() <= decoupled.total_cost());
        // Per-frame cap bounds the total transfer.
        assert!(coupled.energy_transferred.mwh() <= 2.0 * coupled.frames as f64 + 1e-9);
    }

    #[test]
    fn couple_is_independent_of_site_execution_order() {
        let multi = fleet(3, 1.5);
        // Compute the per-site reports back to front, then settle in site
        // order: must equal the serial in-order run exactly.
        let mut reversed: Vec<RunReport> = multi
            .sites()
            .iter()
            .rev()
            .map(|s| s.run(&mut Eager).unwrap())
            .collect();
        reversed.reverse();
        let via_couple = multi.couple(reversed).unwrap();
        let serial = multi.run(&mut eager_boxes(3)).unwrap();
        assert_eq!(via_couple, serial);
    }

    #[test]
    fn transfers_are_bounded_by_fleet_waste() {
        let report = fleet(3, 1e6).run(&mut eager_boxes(3)).unwrap();
        assert!(report.energy_transferred <= report.total_energy_wasted());
        assert!(report.transfer_savings.dollars() >= 0.0);
    }

    #[test]
    fn single_site_fleets_never_transfer_to_themselves() {
        // Transfers are strictly inter-site: one site with an unbounded
        // cap must settle nothing, even when it both curtails and buys
        // real-time energy within the same frame.
        let report = fleet(1, 1e6).run(&mut eager_boxes(1)).unwrap();
        assert!(report.total_energy_wasted() > Energy::ZERO, "test premise");
        assert_eq!(report.energy_transferred, Energy::ZERO);
        assert_eq!(report.transfer_savings, Money::ZERO);
        assert_eq!(report.total_cost(), report.cost_before_transfers());
    }

    #[test]
    fn report_aggregates_and_summary() {
        let report = fleet(2, 1.0).run(&mut eager_boxes(2)).unwrap();
        assert_eq!(report.site_count(), 2);
        assert_eq!(report.frames, 3);
        assert_eq!(report.slots, 72);
        let per_slot = report.time_average_cost().dollars();
        assert!(per_slot > 0.0);
        assert!(report.average_delay_slots() > 0.0);
        let s = report.summary();
        assert!(s.contains("2 sites"), "{s}");
    }
}
