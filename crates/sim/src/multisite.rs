//! Multi-datacenter composition: N per-site [`Engine`]s sharing a
//! calendar, coupled through an [`Interconnect`] topology.
//!
//! Each site is a full DPSS plant running its own traces and controller;
//! the only cross-site physics is the inter-site transfer settlement
//! applied per coarse frame over the configured [`Interconnect`]: energy
//! one site curtailed (`W(τ)`) may displace real-time purchases at
//! another site, bounded by directed per-pair caps (plus an optional
//! fleet-pooled cap), shrunk by line losses and billed per MWh sent at
//! the line's wheeling price. The settlement is a deterministic fold over
//! the per-site reports in site-index order, so aggregate results are
//! byte-identical no matter how (or on how many threads) the site runs
//! were executed.
//!
//! Two settlement modes share the extraction and aggregation here:
//! [`MultiSiteEngine::couple`] settles post-hoc with the greedy fold
//! ([`Interconnect::settle_greedy`]); [`MultiSiteEngine::couple_with`]
//! lets a caller substitute a planner — `dpss-core`'s `FleetPlanner`
//! solves each frame's export flows as a linear program over the same
//! [`FrameExchange`]s.

// `MultiSiteEngine::new` rejects empty rosters and mismatched calendars,
// so `sites[0]` exists and every site shares one validated clock; frame
// slot ranges derive from that clock and the per-site outcome vectors it
// sized.
// audit:allow-file(slice-index): roster is non-empty and calendars match by construction; slot ranges derive from the shared validated clock

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dpss_units::{Energy, Money};

use crate::{
    Controller, Engine, EngineRun, FleetDispatcher, FleetWorkload, FrameExchange, FrameOutlook,
    FrameSettlement, Interconnect, LoadTotals, RoutedDispatcher, RoutingConfig, RunReport,
    SimError, SiteOutlook, SlotOutcome,
};

/// N per-site [`Engine`]s plus the interconnect topology they settle over.
///
/// # Examples
///
/// ```
/// use dpss_sim::{Controller, Engine, Interconnect, MultiSiteEngine, SimParams};
/// use dpss_traces::ScenarioPack;
/// use dpss_units::{Energy, SlotClock};
/// # use dpss_sim::{FrameDecision, FrameObservation, SlotDecision, SlotObservation, SystemView};
/// # struct Eager;
/// # impl Controller for Eager {
/// #     fn name(&self) -> &str { "eager" }
/// #     fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
/// #         FrameDecision::default()
/// #     }
/// #     fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
/// #         SlotDecision {
/// #             purchase_rt: (obs.demand_ds + view.queue_backlog + obs.demand_dt - obs.renewable)
/// #                 .positive_part(),
/// #             serve_fraction: 1.0,
/// #         }
/// #     }
/// # }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let clock = SlotClock::new(2, 24, 1.0).unwrap();
/// let pack = ScenarioPack::builtin("seasonal-calendar").unwrap();
/// let params = SimParams::icdcs13();
/// let sites: Result<Vec<Engine>, _> = (0..3)
///     .map(|s| Engine::new(params, pack.generate_site(&clock, 42, 0, s)?))
///     .collect();
/// let multi = MultiSiteEngine::new(sites?)?
///     .with_interconnect(Interconnect::uniform(3, Energy::from_mwh(1.0))?)?;
/// let mut ctls: Vec<Box<dyn Controller>> =
///     (0..3).map(|_| Box::new(Eager) as Box<dyn Controller>).collect();
/// let fleet = multi.run(&mut ctls)?;
/// assert_eq!(fleet.site_count(), 3);
/// assert!(fleet.total_cost() <= fleet.cost_before_transfers());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiSiteEngine {
    sites: Vec<Engine>,
    interconnect: Interconnect,
    threads: usize,
}

impl MultiSiteEngine {
    /// Composes per-site engines into a fleet. All sites must share one
    /// calendar. Slot recording is enabled on every site (the coupling
    /// settlement needs per-frame outcome breakdowns). The fleet starts
    /// decoupled ([`Interconnect::decoupled`]).
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if `sites` is empty or a site's
    /// calendar differs from site 0's.
    pub fn new(sites: Vec<Engine>) -> Result<Self, SimError> {
        let first = sites.first().ok_or(SimError::SiteMismatch {
            site: 0,
            what: "fleet needs at least one site",
        })?;
        let clock = first.truth().clock;
        for (i, site) in sites.iter().enumerate() {
            if site.truth().clock != clock {
                return Err(SimError::SiteMismatch {
                    site: i,
                    what: "calendar differs from site 0",
                });
            }
        }
        let interconnect = Interconnect::decoupled(sites.len())?;
        Ok(MultiSiteEngine {
            sites: sites
                .into_iter()
                .map(|s| s.with_slot_recording(true))
                .collect(),
            interconnect,
            threads: 1,
        })
    }

    /// Sets the worker-thread budget for stepping sites within a coarse
    /// frame. `1` (the default) steps sites inline on the caller's
    /// thread; `0` resolves to the machine's available parallelism.
    ///
    /// Thread count never changes results: sites do not interact within
    /// a frame, directives are delivered and exchanges settled serially
    /// at the frame barrier, and per-site state lives with its site — so
    /// every aggregate is byte-identical to the serial run at any thread
    /// count (the determinism suite pins this at fleet scale).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        self
    }

    /// The configured worker-thread budget (≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Replaces the interconnect topology.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the topology spans a different
    /// number of sites than the fleet roster.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Result<Self, SimError> {
        if interconnect.sites() != self.sites.len() {
            return Err(SimError::SiteMismatch {
                site: interconnect.sites(),
                what: "interconnect spans a different number of sites than the fleet",
            });
        }
        self.interconnect = interconnect;
        Ok(self)
    }

    /// The legacy coupling knob: the total inter-site energy transfer
    /// allowed per coarse frame, as a lossless, free, fleet-pooled
    /// topology ([`Interconnect::pooled`]). `0` decouples the sites.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] for non-finite or negative caps.
    pub fn with_transfer_cap(self, cap: Energy) -> Result<Self, SimError> {
        let n = self.sites.len();
        self.with_interconnect(Interconnect::pooled(n, cap)?)
    }

    /// The per-site engines, in site-index order.
    #[must_use]
    pub fn sites(&self) -> &[Engine] {
        &self.sites
    }

    /// Number of sites in the fleet.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The configured interconnect topology.
    #[must_use]
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// Runs one controller per site and settles the interconnect
    /// coupling — the fleet runs *frame-synchronously*: every site steps
    /// coarse frame `k` (in site order) before any site starts frame
    /// `k + 1`, and each frame's exchange is settled greedily as soon as
    /// it completes. Sites never interact within a frame, so this is
    /// bit-identical to running every site to completion and settling
    /// post-hoc with [`couple`](Self::couple) — which is still what
    /// parallel harnesses do: run `self.sites()[i]` on worker threads and
    /// hand the collected reports (in site order) to `couple`.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the controller roster length does not
    /// match the site roster; propagates per-site run failures.
    pub fn run(
        &self,
        controllers: &mut [Box<dyn Controller>],
    ) -> Result<MultiSiteReport, SimError> {
        let mut greedy = self.interconnect.clone();
        self.run_with(controllers, &mut greedy)
    }

    /// The frame-synchronous dispatch loop: steps every site through one
    /// coarse frame at a time, letting `dispatcher` direct the sites
    /// between frames and settle each frame's realized exchange.
    ///
    /// Per coarse frame `k`:
    ///
    /// 1. the dispatcher sees the fleet's [`FrameOutlook`] (causal:
    ///    frame `k − 1`'s realization plus current battery state) and
    ///    returns directives — one per site, or none at all;
    /// 2. each site's controller receives its directive
    ///    ([`Controller::receive_directive`]), then every site steps the
    ///    frame ([`EngineRun::step_frame`]) — inline in site-index order
    ///    by default, or fanned out over the
    ///    [`with_threads`](Self::with_threads) worker budget (the order
    ///    is immaterial: sites do not interact within a frame, so the
    ///    aggregates are byte-identical at any thread count);
    /// 3. the realized [`FrameExchange`] is extracted and settled
    ///    ([`FleetDispatcher::settle`]).
    ///
    /// With a dispatcher that never directs (e.g. the topology itself,
    /// or a plain planner) this is exactly the post-hoc/planned
    /// settlement of a conventional run; with a coordinating dispatcher
    /// the directives feed the flow plan back into the sites' physical
    /// dispatch. On a silent topology steps 1 and 3 are skipped
    /// entirely.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the controller roster length does
    /// not match the site roster, the dispatcher's declared topology
    /// differs from the fleet's interconnect, or the dispatcher returns
    /// a directive roster of the wrong length; propagates per-site step
    /// failures.
    pub fn run_with(
        &self,
        controllers: &mut [Box<dyn Controller>],
        dispatcher: &mut dyn FleetDispatcher,
    ) -> Result<MultiSiteReport, SimError> {
        if controllers.len() != self.sites.len() {
            return Err(SimError::SiteMismatch {
                site: controllers.len(),
                what: "controller roster length differs from site roster",
            });
        }
        if let Some(topology) = dispatcher.topology() {
            if topology != &self.interconnect {
                return Err(SimError::SiteMismatch {
                    site: topology.sites(),
                    what: "dispatcher topology differs from the fleet's interconnect",
                });
            }
        }
        let clock = self.sites[0].truth().clock;
        let silent = self.interconnect.is_silent();
        let mut runs = self
            .sites
            .iter()
            .map(Engine::begin)
            .collect::<Result<Vec<_>, _>>()?;
        let mut total = FrameSettlement::default();
        for frame in 0..clock.frames() {
            if !silent {
                let outlook = self.outlook_at(frame, &runs);
                let directives = dispatcher.direct(&outlook);
                if !directives.is_empty() {
                    if directives.len() != self.sites.len() {
                        return Err(SimError::SiteMismatch {
                            site: directives.len(),
                            what: "directive roster length differs from site roster",
                        });
                    }
                    for (ctl, directive) in controllers.iter_mut().zip(&directives) {
                        ctl.receive_directive(directive);
                    }
                }
            }
            step_sites(&mut runs, controllers, self.threads)?;
            if !silent {
                let ex = self.exchange_at(frame, &runs)?;
                let s = dispatcher.settle(&ex);
                total.sent += s.sent;
                total.delivered += s.delivered;
                total.savings += s.savings;
                total.wheeling += s.wheeling;
            }
        }
        let reports = runs
            .into_iter()
            .map(EngineRun::finish)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.assemble(reports, total))
    }

    /// The co-optimized dispatch loop: [`run_with`](Self::run_with) plus
    /// the request layer. A [`FleetWorkload`] ledger (built from each
    /// site's truth arrival stream — zeros for sites without one — and
    /// frame-mean real-time prices) steps in lockstep with the energy
    /// loop; per coarse frame `k`:
    ///
    /// 1. the ledger admits frame `k`'s arrivals
    ///    ([`FleetWorkload::frame_load`]) and its per-site availability
    ///    and due totals are annotated onto the [`FrameOutlook`]
    ///    ([`SiteOutlook::load_backlog`]/[`SiteOutlook::load_due`])
    ///    before the dispatcher directs — energy-only dispatchers ignore
    ///    the annotation, so the energy half of the run is byte-identical
    ///    to [`run_with`](Self::run_with) with the same inner dispatcher;
    /// 2. sites step the frame exactly as in `run_with`;
    /// 3. the dispatcher settles the realized exchange *and* plans
    ///    workload flows ([`RoutedDispatcher::settle_routed`]); the
    ///    ledger applies the (clamped) plan, force-serves due work and
    ///    runs the deferral rule ([`FleetWorkload::settle`]).
    ///
    /// On a silent topology the directive and energy-settlement steps
    /// are skipped exactly as in `run_with` (no transfers exist), but
    /// the workload ledger still steps every frame: local absorption of
    /// a site's own curtailment needs no interconnect.
    ///
    /// The returned report carries the workload totals in
    /// [`MultiSiteReport::load`]; every other field is produced by the
    /// same code paths as `run_with`.
    ///
    /// # Errors
    ///
    /// Everything [`run_with`](Self::run_with) rejects, plus invalid
    /// [`RoutingConfig`]s.
    pub fn run_routed(
        &self,
        controllers: &mut [Box<dyn Controller>],
        dispatcher: &mut dyn RoutedDispatcher,
        config: RoutingConfig,
    ) -> Result<MultiSiteReport, SimError> {
        if controllers.len() != self.sites.len() {
            return Err(SimError::SiteMismatch {
                site: controllers.len(),
                what: "controller roster length differs from site roster",
            });
        }
        if let Some(topology) = dispatcher.topology() {
            if topology != &self.interconnect {
                return Err(SimError::SiteMismatch {
                    site: topology.sites(),
                    what: "dispatcher topology differs from the fleet's interconnect",
                });
            }
        }
        let clock = self.sites[0].truth().clock;
        let silent = self.interconnect.is_silent();
        let mut workload = self.workload_ledger(config)?;
        let mut runs = self
            .sites
            .iter()
            .map(Engine::begin)
            .collect::<Result<Vec<_>, _>>()?;
        let mut total = FrameSettlement::default();
        for frame in 0..clock.frames() {
            let load = workload.frame_load(frame);
            if !silent {
                let mut outlook = self.outlook_at(frame, &runs);
                for (site, (avail, due)) in outlook
                    .sites
                    .iter_mut()
                    .zip(load.available.iter().zip(&load.due))
                {
                    site.load_backlog = *avail;
                    site.load_due = *due;
                }
                let directives = dispatcher.direct(&outlook);
                if !directives.is_empty() {
                    if directives.len() != self.sites.len() {
                        return Err(SimError::SiteMismatch {
                            site: directives.len(),
                            what: "directive roster length differs from site roster",
                        });
                    }
                    for (ctl, directive) in controllers.iter_mut().zip(&directives) {
                        ctl.receive_directive(directive);
                    }
                }
            }
            step_sites(&mut runs, controllers, self.threads)?;
            let ex = self.exchange_at(frame, &runs)?;
            let (s, plan) = dispatcher.settle_routed(&ex, &load);
            if !silent {
                total.sent += s.sent;
                total.delivered += s.delivered;
                total.savings += s.savings;
                total.wheeling += s.wheeling;
            }
            workload.settle(frame, &ex, &plan, &self.interconnect);
        }
        let reports = runs
            .into_iter()
            .map(EngineRun::finish)
            .collect::<Result<Vec<_>, _>>()?;
        let mut report = self.assemble(reports, total);
        report.load = workload.finish();
        Ok(report)
    }

    /// The fleet's workload ledger, built from each site's truth traces:
    /// per-frame arrival totals (summed over the frame's fine slots;
    /// zeros for sites whose traces carry no arrival stream) and
    /// frame-mean real-time prices. This is exactly the ledger
    /// [`run_routed`](Self::run_routed) steps — exposed so harnesses can
    /// compute the serve-on-arrival baseline
    /// ([`FleetWorkload::serve_on_arrival`]) a routing-off run would be
    /// billed for, over identical inputs.
    ///
    /// # Errors
    ///
    /// Propagates [`RoutingConfig::validate`] errors.
    pub fn workload_ledger(&self, config: RoutingConfig) -> Result<FleetWorkload, SimError> {
        let clock = self.sites[0].truth().clock;
        let t = clock.slots_per_frame();
        let arrivals: Vec<Vec<Energy>> = self
            .sites
            .iter()
            .map(|site| {
                (0..clock.frames())
                    .map(|k| match &site.truth().arrivals {
                        Some(a) => a[k * t..(k + 1) * t].iter().copied().sum(),
                        None => Energy::ZERO,
                    })
                    .collect()
            })
            .collect();
        let spot: Vec<Vec<f64>> = self
            .sites
            .iter()
            .map(|site| {
                (0..clock.frames())
                    .map(|k| {
                        site.truth().price_rt[k * t..(k + 1) * t]
                            .iter()
                            .map(|p| p.dollars_per_mwh())
                            .sum::<f64>()
                            / t as f64
                    })
                    .collect()
            })
            .collect();
        FleetWorkload::new(config, arrivals, spot)
    }

    /// The fleet's causal outlook for coarse frame `frame`, built from
    /// the sites' in-flight runs: frame `frame − 1`'s realization
    /// (curtailment, real-time need and average price, grid draw) plus
    /// each site's current battery headroom and the coming frame's
    /// *observed* long-term price. Frame 0 forecasts zeros. Public so
    /// custom harnesses can drive the lockstep loop by hand — the
    /// determinism suite does, to prove within-frame site order is
    /// immaterial.
    ///
    /// # Panics
    ///
    /// Panics if `runs` does not cover the site roster or has not
    /// completed exactly the frames before `frame`.
    #[must_use]
    pub fn outlook_at(&self, frame: usize, runs: &[EngineRun<'_>]) -> FrameOutlook {
        assert_eq!(runs.len(), self.sites.len(), "run roster mismatch");
        let clock = self.sites[0].truth().clock;
        let t = clock.slots_per_frame();
        let sites = self
            .sites
            .iter()
            .zip(runs)
            .map(|(site, run)| {
                assert!(
                    run.frames_completed() >= frame,
                    "outlook for frame {frame} needs the previous frames stepped"
                );
                let params = site.params();
                let frame_budget = params.grid_slot_cap(clock.slot_hours()) * t as f64;
                let procure_cost = site.observed_traces().price_lt[frame].dollars_per_mwh()
                    + params.waste_price.dollars_per_mwh();
                if frame == 0 {
                    return SiteOutlook {
                        expected_surplus: Energy::ZERO,
                        expected_need: Energy::ZERO,
                        expected_price: 0.0,
                        export_headroom: Energy::ZERO,
                        battery_headroom: run.battery_headroom(),
                        procure_cost,
                        load_backlog: Energy::ZERO,
                        load_due: Energy::ZERO,
                    };
                }
                let prev = &run.outcomes()[(frame - 1) * t..frame * t];
                let (rt, _) = realized_rt(prev);
                // Price forecast: the realized average over *all* past
                // frames, not just the last one — real-time spikes are
                // short and mean-reverting, so chasing the previous
                // frame's price buys high after every spike, while the
                // running average prices the regime the settlement will
                // actually book savings at.
                let (_, avg_price) = realized_rt(&run.outcomes()[..frame * t]);
                let draw: Energy = prev.iter().map(SlotOutcome::grid_draw).sum();
                SiteOutlook {
                    expected_surplus: prev.iter().map(|o| o.waste).sum(),
                    expected_need: rt,
                    expected_price: avg_price,
                    export_headroom: (frame_budget - draw).positive_part(),
                    battery_headroom: run.battery_headroom(),
                    procure_cost,
                    load_backlog: Energy::ZERO,
                    load_due: Energy::ZERO,
                }
            })
            .collect();
        FrameOutlook { frame, sites }
    }

    /// The realized [`FrameExchange`] of coarse frame `frame`, extracted
    /// from the sites' in-flight runs — the same extraction
    /// [`couple_with`](Self::couple_with) applies to finished reports,
    /// available mid-run for frame-synchronous settlement.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if a run has not completed `frame` yet
    /// (or is not recording slot outcomes).
    pub fn exchange_at(
        &self,
        frame: usize,
        runs: &[EngineRun<'_>],
    ) -> Result<FrameExchange, SimError> {
        let t = self.sites[0].truth().clock.slots_per_frame();
        let mut ex = empty_exchange(frame, runs.len());
        for (i, run) in runs.iter().enumerate() {
            let outcomes = run.outcomes();
            if outcomes.len() < (frame + 1) * t {
                return Err(SimError::SiteMismatch {
                    site: i,
                    what: "run has not recorded the requested frame yet",
                });
            }
            push_site_exchange(&mut ex, &outcomes[frame * t..(frame + 1) * t]);
        }
        Ok(ex)
    }

    fn assemble(&self, reports: Vec<RunReport>, total: FrameSettlement) -> MultiSiteReport {
        let clock = self.sites[0].truth().clock;
        MultiSiteReport {
            frames: clock.frames(),
            slots: clock.total_slots(),
            interconnect: self.interconnect.clone(),
            energy_transferred: total.sent,
            energy_delivered: total.delivered,
            transfer_savings: total.savings,
            wheeling_cost: total.wheeling,
            load: LoadTotals::default(),
            sites: reports,
        }
    }

    /// Settles the interconnect coupling post-hoc over already-computed
    /// per-site reports (in site-index order) and aggregates the fleet
    /// report, using the greedy per-frame fold
    /// ([`Interconnect::settle_greedy`]): most expensive recipients
    /// first, donors in site order, per-link caps/losses/wheeling
    /// respected. Pure arithmetic over the reports — no RNG, no
    /// scheduling dependence.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the report roster length differs from
    /// the site roster or a report lacks slot outcomes.
    pub fn couple(&self, reports: Vec<RunReport>) -> Result<MultiSiteReport, SimError> {
        self.couple_with(reports, |ex| self.interconnect.settle_greedy(ex))
    }

    /// [`couple`](Self::couple) with a caller-supplied settlement: `settle`
    /// receives each coarse frame's [`FrameExchange`] in frame order and
    /// returns what moved. This is the planner hook — `dpss-core`'s
    /// `FleetPlanner` solves each frame's export flows as an LP over the
    /// same topology instead of folding greedily.
    ///
    /// Determinism contract: the exchanges depend only on the reports (in
    /// site order), so any deterministic `settle` yields fleet aggregates
    /// independent of site-execution order and thread count.
    ///
    /// # Errors
    ///
    /// [`SimError::SiteMismatch`] if the report roster length differs from
    /// the site roster or a report lacks slot outcomes.
    pub fn couple_with<F>(
        &self,
        reports: Vec<RunReport>,
        mut settle: F,
    ) -> Result<MultiSiteReport, SimError>
    where
        F: FnMut(&FrameExchange) -> FrameSettlement,
    {
        if reports.len() != self.sites.len() {
            return Err(SimError::SiteMismatch {
                site: reports.len(),
                what: "report roster length differs from site roster",
            });
        }
        let clock = self.sites[0].truth().clock;
        for (i, r) in reports.iter().enumerate() {
            let Some(outcomes) = r.slot_outcomes.as_ref() else {
                return Err(SimError::SiteMismatch {
                    site: i,
                    what: "report lacks slot outcomes (enable slot recording)",
                });
            };
            if outcomes.len() != clock.total_slots() {
                return Err(SimError::SiteMismatch {
                    site: i,
                    what: "report covers a different calendar than the fleet",
                });
            }
        }

        let t = clock.slots_per_frame();
        let mut total = FrameSettlement::default();
        // A transfer is *inter*-site: a site's own curtailment can never
        // displace its own purchases (that would grant free intra-frame
        // storage), so single-site and silent fleets settle nothing.
        if !self.interconnect.is_silent() {
            for frame in 0..clock.frames() {
                let range = frame * t..(frame + 1) * t;
                let mut ex = empty_exchange(frame, reports.len());
                for r in &reports {
                    push_site_exchange(
                        &mut ex,
                        // audit:allow(panic-unwrap): couple() validated every report has recorded outcomes
                        &r.slot_outcomes.as_ref().expect("validated above")[range.clone()],
                    );
                }
                let s = settle(&ex);
                total.sent += s.sent;
                total.delivered += s.delivered;
                total.savings += s.savings;
                total.wheeling += s.wheeling;
            }
        }

        Ok(self.assemble(reports, total))
    }
}

/// Steps every site through one coarse frame, fanning the sites out over
/// `threads` scoped workers claiming site indices from a shared atomic
/// counter (the `ExperimentRunner` pattern). Each `(run, controller)`
/// pair is owned by exactly one worker at a time, sites share no mutable
/// state, and errors are collected per site and propagated in site-index
/// order — so the outcome (including which error surfaces) is
/// byte-identical to the inline serial loop at any thread count.
fn step_sites(
    runs: &mut [EngineRun<'_>],
    controllers: &mut [Box<dyn Controller>],
    threads: usize,
) -> Result<(), SimError> {
    let n = runs.len();
    let workers = threads.min(n).max(1);
    if workers == 1 {
        for (run, ctl) in runs.iter_mut().zip(controllers.iter_mut()) {
            run.step_frame(ctl.as_mut())?;
        }
        return Ok(());
    }
    let next = AtomicUsize::new(0);
    let cells: Vec<Mutex<(&mut EngineRun<'_>, &mut Box<dyn Controller>)>> = runs
        .iter_mut()
        .zip(controllers.iter_mut())
        .map(Mutex::new)
        .collect();
    let slots: Vec<Mutex<Option<Result<(), SimError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // audit:allow(panic-unwrap): a poisoned cell means a sibling worker already panicked
                let mut cell = cells[i].lock().expect("site cell poisoned");
                let (run, ctl) = &mut *cell;
                let out = run.step_frame(ctl.as_mut());
                // audit:allow(panic-unwrap): a poisoned slot means a sibling worker already panicked
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    for (i, slot) in slots.into_iter().enumerate() {
        slot.into_inner()
            // audit:allow(panic-unwrap): a poisoned slot means a worker already panicked
            .expect("result slot poisoned")
            // audit:allow(panic-explicit): the claim loop covers 0..n, so an empty slot is a scheduler bug
            .unwrap_or_else(|| panic!("site {i} was not stepped"))?;
    }
    Ok(())
}

/// Realized real-time totals of one frame's outcomes: energy purchased
/// and the frame-average realized price (zero when nothing was bought).
fn realized_rt(outcomes: &[SlotOutcome]) -> (Energy, f64) {
    let rt: Energy = outcomes.iter().map(|o| o.purchase_rt).sum();
    let rt_cost: Money = outcomes.iter().map(|o| o.cost.real_time).sum();
    let price = if rt > Energy::ZERO {
        rt_cost.dollars() / rt.mwh()
    } else {
        0.0
    };
    (rt, price)
}

fn empty_exchange(frame: usize, sites: usize) -> FrameExchange {
    FrameExchange {
        frame,
        curtailed: Vec::with_capacity(sites),
        rt_energy: Vec::with_capacity(sites),
        rt_price: Vec::with_capacity(sites),
    }
}

/// Appends one site's frame realization to an exchange — the single
/// extraction both settlement paths (post-hoc [`couple_with`] over
/// finished reports, frame-synchronous [`exchange_at`] mid-run) share,
/// so the two are arithmetically identical by construction.
///
/// [`couple_with`]: MultiSiteEngine::couple_with
/// [`exchange_at`]: MultiSiteEngine::exchange_at
fn push_site_exchange(ex: &mut FrameExchange, outcomes: &[SlotOutcome]) {
    let waste: Energy = outcomes.iter().map(|o| o.waste).sum();
    let (rt, price) = realized_rt(outcomes);
    ex.curtailed.push(waste);
    ex.rt_energy.push(rt);
    ex.rt_price.push(price);
}

/// Aggregated result of one fleet run: per-site [`RunReport`]s plus the
/// interconnect settlement.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSiteReport {
    /// Per-site reports, in site-index order.
    pub sites: Vec<RunReport>,
    /// Coarse frames in the shared calendar.
    pub frames: usize,
    /// Fine slots in the shared calendar (per site).
    pub slots: usize,
    /// The topology the settlement ran over.
    pub interconnect: Interconnect,
    /// Total energy sent by donors over the horizon (before line losses).
    pub energy_transferred: Energy,
    /// Total energy delivered to recipients (after line losses).
    pub energy_delivered: Energy,
    /// Real-time purchase cost displaced by the delivered energy.
    pub transfer_savings: Money,
    /// Wheeling charges on the energy sent, billed to the fleet row.
    pub wheeling_cost: Money,
    /// Workload-routing totals. [`LoadTotals::default`] (all zeros, and
    /// [`LoadTotals::is_inert`]) for every run that did not go through
    /// [`MultiSiteEngine::run_routed`] — the request layer adds nothing
    /// to non-routed reports.
    pub load: LoadTotals,
}

impl MultiSiteReport {
    /// Number of sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Energy lost on the lines (sent − delivered).
    #[must_use]
    pub fn energy_lost(&self) -> Energy {
        self.energy_transferred - self.energy_delivered
    }

    /// Fleet cost with the sites fully decoupled (sum of site totals).
    #[must_use]
    pub fn cost_before_transfers(&self) -> Money {
        self.sites.iter().map(RunReport::total_cost).sum()
    }

    /// Fleet cost after the interconnect settlement: the decoupled sum,
    /// minus the displaced real-time cost, plus the wheeling bill, plus
    /// the workload bill (zero for non-routed runs).
    #[must_use]
    pub fn total_cost(&self) -> Money {
        self.cost_before_transfers() - self.transfer_savings + self.wheeling_cost + self.load.cost
    }

    /// Fleet cost per fine slot of the shared calendar.
    #[must_use]
    pub fn time_average_cost(&self) -> Money {
        self.total_cost() / self.slots as f64
    }

    /// Total curtailed energy across the fleet (before transfers).
    #[must_use]
    pub fn total_energy_wasted(&self) -> Energy {
        self.sites.iter().map(|r| r.energy_wasted).sum()
    }

    /// Served-energy-weighted mean delay-tolerant service delay (slots).
    #[must_use]
    pub fn average_delay_slots(&self) -> f64 {
        let served: f64 = self.sites.iter().map(|r| r.served_dt.mwh()).sum();
        if served <= 0.0 {
            return 0.0;
        }
        self.sites
            .iter()
            .map(|r| r.average_delay_slots * r.served_dt.mwh())
            .sum::<f64>()
            / served
    }

    /// One-line fleet summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} sites: ${:.2} total (${:.2} saved by {:.2} MWh sent, \
             {:.2} MWh lost, ${:.2} wheeling), ${:.4}/slot, delay {:.2} slots",
            self.site_count(),
            self.total_cost().dollars(),
            self.transfer_savings.dollars(),
            self.energy_transferred.mwh(),
            self.energy_lost().mwh(),
            self.wheeling_cost.dollars(),
            self.time_average_cost().dollars(),
            self.average_delay_slots(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        FrameDecision, FrameObservation, SimParams, SlotDecision, SlotObservation, SystemView,
    };
    use dpss_traces::ScenarioPack;
    use dpss_units::{Price, SlotClock};

    /// Serves everything eagerly from the real-time market.
    struct Eager;
    impl Controller for Eager {
        fn name(&self) -> &str {
            "eager"
        }
        fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
            FrameDecision::default()
        }
        fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
            SlotDecision {
                purchase_rt: (obs.demand_ds + view.queue_backlog + obs.demand_dt - obs.renewable)
                    .positive_part(),
                serve_fraction: 1.0,
            }
        }
    }

    fn fleet(sites: usize, cap: f64) -> MultiSiteEngine {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let pack = ScenarioPack::builtin("seasonal-calendar").unwrap();
        let engines: Vec<Engine> = (0..sites)
            .map(|s| {
                Engine::new(
                    SimParams::icdcs13(),
                    pack.generate_site(&clock, 42, 0, s).unwrap(),
                )
                .unwrap()
            })
            .collect();
        MultiSiteEngine::new(engines)
            .unwrap()
            .with_transfer_cap(Energy::from_mwh(cap))
            .unwrap()
    }

    fn eager_boxes(n: usize) -> Vec<Box<dyn Controller>> {
        (0..n)
            .map(|_| Box::new(Eager) as Box<dyn Controller>)
            .collect()
    }

    #[test]
    fn rejects_empty_and_mismatched_fleets() {
        assert!(matches!(
            MultiSiteEngine::new(Vec::new()),
            Err(SimError::SiteMismatch { site: 0, .. })
        ));
        let a = Engine::new(
            SimParams::icdcs13(),
            dpss_traces::Scenario::icdcs13()
                .generate(&SlotClock::new(2, 24, 1.0).unwrap(), 1)
                .unwrap(),
        )
        .unwrap();
        let b = Engine::new(
            SimParams::icdcs13(),
            dpss_traces::Scenario::icdcs13()
                .generate(&SlotClock::new(3, 24, 1.0).unwrap(), 1)
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            MultiSiteEngine::new(vec![a, b]),
            Err(SimError::SiteMismatch { site: 1, .. })
        ));
        assert!(fleet(1, 0.0)
            .with_transfer_cap(Energy::from_mwh(-1.0))
            .is_err());
        // A topology for the wrong roster size is rejected.
        assert!(matches!(
            fleet(2, 0.0).with_interconnect(Interconnect::decoupled(3).unwrap()),
            Err(SimError::SiteMismatch { site: 3, .. })
        ));
    }

    #[test]
    fn run_rejects_wrong_controller_roster() {
        let multi = fleet(2, 0.0);
        assert!(matches!(
            multi.run(&mut eager_boxes(3)),
            Err(SimError::SiteMismatch { site: 3, .. })
        ));
    }

    #[test]
    fn run_with_rejects_mismatched_dispatcher_topology() {
        // A dispatcher that declares a topology must declare the
        // fleet's — settling frames under different lines than the
        // report records would be silently wrong.
        let multi = fleet(2, 1.0);
        let mut wrong_cap = Interconnect::pooled(2, Energy::from_mwh(9.0)).unwrap();
        assert!(matches!(
            multi.run_with(&mut eager_boxes(2), &mut wrong_cap),
            Err(SimError::SiteMismatch { site: 2, .. })
        ));
        let mut wrong_sites = Interconnect::pooled(3, Energy::from_mwh(1.0)).unwrap();
        assert!(matches!(
            multi.run_with(&mut eager_boxes(2), &mut wrong_sites),
            Err(SimError::SiteMismatch { site: 3, .. })
        ));
        // The fleet's own topology passes the guard.
        let mut right = multi.interconnect().clone();
        assert!(multi.run_with(&mut eager_boxes(2), &mut right).is_ok());
    }

    /// Two sites on the flash-crowd variant of the traffic-wave pack —
    /// traces that carry a request-arrival stream.
    fn routed_fleet(sites: usize, cap: f64) -> MultiSiteEngine {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let pack = ScenarioPack::builtin("traffic-wave").unwrap();
        let engines: Vec<Engine> = (0..sites)
            .map(|s| {
                Engine::new(
                    SimParams::icdcs13(),
                    pack.generate_site(&clock, 42, 2, s).unwrap(),
                )
                .unwrap()
            })
            .collect();
        MultiSiteEngine::new(engines)
            .unwrap()
            .with_transfer_cap(Energy::from_mwh(cap))
            .unwrap()
    }

    #[test]
    fn run_routed_conserves_load_and_leaves_the_energy_side_untouched() {
        let multi = routed_fleet(2, 1.0);
        let baseline = multi.run(&mut eager_boxes(2)).unwrap();
        assert!(baseline.load.is_inert(), "non-routed runs carry no load");
        let mut routed = crate::UnroutedDispatcher(multi.interconnect().clone());
        let report = multi
            .run_routed(&mut eager_boxes(2), &mut routed, RoutingConfig::icdcs13())
            .unwrap();
        // Energy side: the adapter settles greedily exactly like run(),
        // and the request layer must not perturb it.
        assert_eq!(report.sites, baseline.sites);
        assert_eq!(report.energy_transferred, baseline.energy_transferred);
        assert_eq!(report.transfer_savings, baseline.transfer_savings);
        // Load side: work arrived, conserved, bounded and fully drained.
        let load = &report.load;
        assert!(load.arrived > Energy::ZERO, "traffic-wave traces arrive");
        let settled = load.served_spot + load.absorbed + load.migrated + load.final_backlog;
        assert!((load.arrived - settled).mwh().abs() < 1e-9);
        assert_eq!(load.final_backlog, Energy::ZERO);
        assert!(load.max_wait_frames <= RoutingConfig::icdcs13().max_queue_age);
        assert_eq!(load.frames.len(), 3);
        // The workload bill lands in the fleet total.
        assert_eq!(
            report.total_cost(),
            baseline.total_cost() + load.cost,
            "total cost = energy total + workload bill"
        );
    }

    #[test]
    fn run_routed_validates_rosters_and_config() {
        let multi = routed_fleet(2, 1.0);
        let mut d = crate::UnroutedDispatcher(multi.interconnect().clone());
        assert!(matches!(
            multi.run_routed(&mut eager_boxes(3), &mut d, RoutingConfig::icdcs13()),
            Err(SimError::SiteMismatch { site: 3, .. })
        ));
        assert!(matches!(
            multi.run_routed(
                &mut eager_boxes(2),
                &mut d,
                RoutingConfig::icdcs13().with_interactive_fraction(7.0),
            ),
            Err(SimError::InvalidParameter { .. })
        ));
        // A mismatched dispatcher topology is rejected like run_with's.
        let mut wrong = crate::UnroutedDispatcher(Interconnect::pooled(3, Energy::ZERO).unwrap());
        assert!(matches!(
            multi.run_routed(&mut eager_boxes(2), &mut wrong, RoutingConfig::icdcs13()),
            Err(SimError::SiteMismatch { site: 3, .. })
        ));
    }

    #[test]
    fn couple_requires_slot_outcomes_in_reports() {
        let multi = fleet(2, 1.0);
        let mut reports: Vec<RunReport> = multi
            .sites()
            .iter()
            .map(|s| s.run(&mut Eager).unwrap())
            .collect();
        reports[1].slot_outcomes = None;
        assert!(matches!(
            multi.couple(reports),
            Err(SimError::SiteMismatch { site: 1, .. })
        ));
    }

    #[test]
    fn zero_cap_decouples_and_positive_cap_only_saves() {
        let multi = fleet(3, 0.0);
        let decoupled = multi.run(&mut eager_boxes(3)).unwrap();
        assert_eq!(decoupled.energy_transferred, Energy::ZERO);
        assert_eq!(decoupled.transfer_savings, Money::ZERO);
        assert_eq!(decoupled.total_cost(), decoupled.cost_before_transfers());

        let coupled = fleet(3, 2.0).run(&mut eager_boxes(3)).unwrap();
        // Same sites, same runs: the lossless free settlement can only
        // reduce cost.
        assert_eq!(
            coupled.cost_before_transfers(),
            decoupled.cost_before_transfers()
        );
        assert!(coupled.total_cost() <= decoupled.total_cost());
        // Per-frame cap bounds the total transfer.
        assert!(coupled.energy_transferred.mwh() <= 2.0 * coupled.frames as f64 + 1e-9);
    }

    #[test]
    fn couple_is_independent_of_site_execution_order() {
        let multi = fleet(3, 1.5);
        // Compute the per-site reports back to front, then settle in site
        // order: must equal the serial in-order run exactly.
        let mut reversed: Vec<RunReport> = multi
            .sites()
            .iter()
            .rev()
            .map(|s| s.run(&mut Eager).unwrap())
            .collect();
        reversed.reverse();
        let via_couple = multi.couple(reversed).unwrap();
        let serial = multi.run(&mut eager_boxes(3)).unwrap();
        assert_eq!(via_couple, serial);
    }

    #[test]
    fn threaded_stepping_is_byte_identical_to_serial() {
        let serial = fleet(3, 1.5).run(&mut eager_boxes(3)).unwrap();
        // 2 < sites, 4 > sites, 0 = available parallelism: every budget
        // must reproduce the serial run exactly (PartialEq covers every
        // slot outcome via the recorded reports).
        for threads in [2, 4, 0] {
            let multi = fleet(3, 1.5).with_threads(threads);
            assert!(multi.threads() >= 1);
            let threaded = multi.run(&mut eager_boxes(3)).unwrap();
            assert_eq!(threaded, serial, "threads = {threads}");
        }
    }

    #[test]
    fn transfers_are_bounded_by_fleet_waste() {
        let report = fleet(3, 1e6).run(&mut eager_boxes(3)).unwrap();
        assert!(report.energy_transferred <= report.total_energy_wasted());
        assert!(report.transfer_savings.dollars() >= 0.0);
    }

    #[test]
    fn single_site_fleets_never_transfer_to_themselves() {
        // Transfers are strictly inter-site: one site with an unbounded
        // cap must settle nothing, even when it both curtails and buys
        // real-time energy within the same frame.
        let report = fleet(1, 1e6).run(&mut eager_boxes(1)).unwrap();
        assert!(report.total_energy_wasted() > Energy::ZERO, "test premise");
        assert_eq!(report.energy_transferred, Energy::ZERO);
        assert_eq!(report.transfer_savings, Money::ZERO);
        assert_eq!(report.total_cost(), report.cost_before_transfers());
    }

    #[test]
    fn lossy_lines_deliver_less_and_wheeling_charges_the_fleet() {
        let lossless = fleet(3, 2.0).run(&mut eager_boxes(3)).unwrap();
        assert!(lossless.energy_transferred > Energy::ZERO, "test premise");
        assert_eq!(lossless.energy_lost(), Energy::ZERO);
        assert_eq!(lossless.wheeling_cost, Money::ZERO);

        let lossy_ic = Interconnect::pooled(3, Energy::from_mwh(2.0))
            .unwrap()
            .with_uniform_loss(0.25)
            .unwrap()
            .with_uniform_wheeling(Price::from_dollars_per_mwh(1.5))
            .unwrap();
        let lossy = fleet(3, 0.0)
            .with_interconnect(lossy_ic)
            .unwrap()
            .run(&mut eager_boxes(3))
            .unwrap();
        // delivered = sent × (1 − loss), exactly.
        let expected = lossy.energy_transferred.mwh() * 0.75;
        assert!(
            (lossy.energy_delivered.mwh() - expected).abs() < 1e-9,
            "delivered {} vs sent {}",
            lossy.energy_delivered,
            lossy.energy_transferred
        );
        assert!(
            (lossy.wheeling_cost.dollars() - lossy.energy_transferred.mwh() * 1.5).abs() < 1e-9
        );
        // Per-site physics identical; only the settlement differs.
        assert_eq!(
            lossy.cost_before_transfers(),
            lossless.cost_before_transfers()
        );
        assert!(lossy.transfer_savings <= lossless.transfer_savings);
        // Economics guard: settling never costs more than decoupling.
        assert!(lossy.total_cost() <= lossy.cost_before_transfers());
    }

    #[test]
    fn couple_with_substitutes_the_settlement() {
        let multi = fleet(2, 1.0);
        let reports: Vec<RunReport> = multi
            .sites()
            .iter()
            .map(|s| s.run(&mut Eager).unwrap())
            .collect();
        let mut frames_seen = Vec::new();
        let report = multi
            .couple_with(reports, |ex| {
                frames_seen.push(ex.frame);
                assert_eq!(ex.curtailed.len(), 2);
                FrameSettlement::default()
            })
            .unwrap();
        assert_eq!(frames_seen, vec![0, 1, 2]);
        assert_eq!(report.energy_transferred, Energy::ZERO);
        assert_eq!(report.total_cost(), report.cost_before_transfers());
    }

    #[test]
    fn report_aggregates_and_summary() {
        let report = fleet(2, 1.0).run(&mut eager_boxes(2)).unwrap();
        assert_eq!(report.site_count(), 2);
        assert_eq!(report.frames, 3);
        assert_eq!(report.slots, 72);
        let per_slot = report.time_average_cost().dollars();
        assert!(per_slot > 0.0);
        assert!(report.average_delay_slots() > 0.0);
        let s = report.summary();
        assert!(s.contains("2 sites"), "{s}");
    }
}
