// The run loop iterates the validated clock of the TraceSet it owns, so
// every slot/frame index it hands out is in bounds for every series and
// for the outcome vectors sized from the same clock.
// audit:allow-file(slice-index): slot/frame indices come from the validated clock that sized every buffer in the run

use dpss_traces::TraceSet;
use dpss_units::Energy;

use crate::plant::{self, SlotInputs};
use crate::{
    Battery, Controller, DemandQueue, FrameObservation, RunReport, SimError, SimParams,
    SlotObservation, SlotOutcome, SystemView,
};

/// The two-timescale simulation driver.
///
/// An engine owns the physical parameters and the *true* traces; optionally
/// it also carries an *observed* trace set (same calendar) that is shown to
/// the controller instead of the truth — this is how the Fig. 9 robustness
/// experiment injects estimation errors without corrupting the physics.
///
/// `run` borrows the engine immutably, so one engine can evaluate many
/// controllers on identical inputs (exactly what the figure sweeps do).
///
/// # Examples
///
/// See the crate-level example; every controller in `dpss-core` runs
/// through this same entry point.
#[derive(Debug, Clone)]
pub struct Engine {
    params: SimParams,
    truth: TraceSet,
    observed: Option<TraceSet>,
    record_slots: bool,
    forecast: crate::ForecastPolicy,
}

impl Engine {
    /// Creates an engine for the given parameters and true traces.
    ///
    /// # Errors
    ///
    /// Propagates parameter and trace validation failures.
    pub fn new(params: SimParams, truth: TraceSet) -> Result<Self, SimError> {
        params.validate()?;
        truth.validate()?;
        Ok(Engine {
            params,
            truth,
            observed: None,
            record_slots: false,
            forecast: crate::ForecastPolicy::default(),
        })
    }

    /// Selects how the frame observations' demand/renewable fields are
    /// produced (default: causal previous-frame averages). See
    /// [`ForecastPolicy`](crate::ForecastPolicy).
    ///
    /// # Errors
    ///
    /// Propagates policy validation.
    pub fn with_forecast(mut self, policy: crate::ForecastPolicy) -> Result<Self, SimError> {
        policy.validate()?;
        self.forecast = policy;
        Ok(self)
    }

    /// Supplies an observed trace set (what controllers see). Must share
    /// the truth's calendar.
    ///
    /// # Errors
    ///
    /// [`SimError::ObservationMismatch`] if the calendars differ, plus
    /// validation failures of the observed set itself.
    pub fn with_observed(mut self, observed: TraceSet) -> Result<Self, SimError> {
        observed.validate()?;
        if observed.clock != self.truth.clock {
            return Err(SimError::ObservationMismatch);
        }
        self.observed = Some(observed);
        Ok(self)
    }

    /// Enables per-slot outcome recording in the report (memory: one record
    /// per fine slot).
    #[must_use]
    pub fn with_slot_recording(mut self, record: bool) -> Self {
        self.record_slots = record;
        self
    }

    /// Derives a sweep-cell engine: identical traces, observations and
    /// forecast policy, but different physical parameters.
    ///
    /// This is the cheap path for parameter sweeps (battery sizing,
    /// interconnect scaling, …): the trace set is reused as-is instead of
    /// being regenerated per cell, so only `params` is re-validated. Runs
    /// on the derived engine are byte-identical to building a fresh
    /// engine from the same seed with the new parameters.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    pub fn with_params(&self, params: SimParams) -> Result<Self, SimError> {
        params.validate()?;
        let mut cell = self.clone();
        cell.params = params;
        Ok(cell)
    }

    /// The physical parameters.
    #[must_use]
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// The true traces.
    #[must_use]
    pub fn truth(&self) -> &TraceSet {
        &self.truth
    }

    /// Runs one controller over the whole horizon and aggregates a report.
    ///
    /// Implemented on top of the resumable stepping API — exactly
    /// [`begin`](Self::begin), [`EngineRun::step_frame`] for every coarse
    /// frame, then [`EngineRun::finish`] — and bit-identical to stepping
    /// by hand (`tests/stepping_equivalence.rs` pins the report JSON).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidDecision`] if the controller emits NaN/negative
    /// decisions; battery errors cannot escape the plant's clamping.
    pub fn run(&self, controller: &mut dyn Controller) -> Result<RunReport, SimError> {
        let mut run = self.begin()?;
        while !run.is_done() {
            run.step_frame(controller)?;
        }
        run.finish()
    }

    /// Starts a resumable run: the returned [`EngineRun`] owns the plant
    /// state (battery, queue, partial report) and advances one coarse
    /// frame at a time through [`EngineRun::step_frame`]. This is the
    /// frame-synchronous entry point
    /// [`MultiSiteEngine`](crate::MultiSiteEngine) uses to run a fleet in
    /// lockstep, delivering a `FrameDirective` to each site's controller
    /// between frames.
    ///
    /// # Errors
    ///
    /// Propagates battery-construction failures (invalid parameters are
    /// normally caught at [`Engine::new`]).
    pub fn begin(&self) -> Result<EngineRun<'_>, SimError> {
        let clock = self.truth.clock;
        Ok(EngineRun {
            engine: self,
            battery: Battery::new(self.params.battery)?,
            queue: DemandQueue::new(),
            lt_alloc: Energy::ZERO,
            report: empty_report("", clock.total_slots()),
            recorded: if self.record_slots {
                Some(Vec::with_capacity(clock.total_slots()))
            } else {
                None
            },
            next_frame: 0,
        })
    }

    /// The observed trace set (what controllers see): the injected
    /// observation set when one was supplied, the truth otherwise.
    pub(crate) fn observed_traces(&self) -> &TraceSet {
        self.observed.as_ref().unwrap_or(&self.truth)
    }

    /// Reinstates a checkpointed run on this engine. The engine must be
    /// configured exactly as the one the state was captured from (same
    /// parameters, traces, forecast policy and slot-recording flag);
    /// continuing the resumed run is then byte-for-byte identical to
    /// continuing the original.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidState`] if the state's progress or recorded
    /// outcomes disagree with this engine's calendar and recording
    /// configuration; plus the per-component validation of
    /// [`Battery::from_state`] and [`DemandQueue::from_state`].
    pub fn resume(&self, state: crate::EngineRunState) -> Result<EngineRun<'_>, SimError> {
        let clock = self.truth.clock;
        if state.next_frame > clock.frames() {
            return Err(SimError::InvalidState {
                what: "resume frame is beyond the calendar",
            });
        }
        if state.recorded.is_some() != self.record_slots {
            return Err(SimError::InvalidState {
                what: "recorded outcomes do not match the engine's slot-recording flag",
            });
        }
        if let Some(rec) = &state.recorded {
            if rec.len() != state.next_frame * clock.slots_per_frame() {
                return Err(SimError::InvalidState {
                    what: "recorded outcome count disagrees with the resume frame",
                });
            }
        }
        if state.report.slots != clock.total_slots() {
            return Err(SimError::InvalidState {
                what: "report slot count disagrees with the calendar",
            });
        }
        if !state.lt_alloc.is_finite() || state.lt_alloc.mwh() < 0.0 {
            return Err(SimError::InvalidState {
                what: "long-term allocation must be finite and non-negative",
            });
        }
        Ok(EngineRun {
            engine: self,
            battery: Battery::from_state(self.params.battery, &state.battery)?,
            queue: DemandQueue::from_state(&state.queue)?,
            lt_alloc: state.lt_alloc,
            report: state.report,
            recorded: state.recorded,
            next_frame: state.next_frame,
        })
    }
}

/// An in-flight [`Engine`] run: plant state plus the partially aggregated
/// report, advanced one coarse frame at a time.
///
/// Produced by [`Engine::begin`]; [`Engine::run`] is exactly
/// `begin` + [`step_frame`](EngineRun::step_frame) × `frames` +
/// [`finish`](EngineRun::finish). Within a frame nothing is externally
/// observable; between frames the accessors expose what a fleet
/// dispatcher needs (recorded outcomes so far, battery headroom).
#[derive(Debug, Clone)]
pub struct EngineRun<'a> {
    engine: &'a Engine,
    battery: Battery,
    queue: DemandQueue,
    lt_alloc: Energy,
    report: RunReport,
    recorded: Option<Vec<SlotOutcome>>,
    next_frame: usize,
}

impl EngineRun<'_> {
    /// The engine this run steps.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Coarse frames completed so far (also the index of the next frame
    /// to step).
    #[must_use]
    pub fn frames_completed(&self) -> usize {
        self.next_frame
    }

    /// Whether every coarse frame of the calendar has been stepped.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.next_frame >= self.engine.truth.clock.frames()
    }

    /// Per-slot outcomes recorded so far (empty unless the engine has
    /// slot recording enabled).
    #[must_use]
    pub fn outcomes(&self) -> &[SlotOutcome] {
        self.recorded.as_deref().unwrap_or(&[])
    }

    /// Grid-side charge the battery currently accepts in one slot — the
    /// export-dispatch planner's "held for a planned send" input.
    #[must_use]
    pub fn battery_headroom(&self) -> Energy {
        self.battery.headroom()
    }

    /// Captures the run's full mutable state (plant + partial report) for
    /// checkpointing; reinstated with [`Engine::resume`]. Only meaningful
    /// at a frame boundary — which is the only time a caller can observe
    /// the run anyway.
    #[must_use]
    pub fn state(&self) -> crate::EngineRunState {
        crate::EngineRunState {
            next_frame: self.next_frame,
            lt_alloc: self.lt_alloc,
            battery: self.battery.state(),
            queue: self.queue.state(),
            report: self.report.clone(),
            recorded: self.recorded.clone(),
        }
    }

    /// Advances the run by one coarse frame: one `plan_frame` decision,
    /// then `plan_slot` / plant step / `end_slot` for each of the frame's
    /// fine slots. No-op when the run [`is_done`](Self::is_done).
    ///
    /// The first call stamps the controller's name into the report; a
    /// fleet harness must keep handing the same controller to the same
    /// run.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidDecision`] if the controller emits NaN/negative
    /// decisions.
    pub fn step_frame(&mut self, controller: &mut dyn Controller) -> Result<(), SimError> {
        if self.is_done() {
            return Ok(());
        }
        let engine = self.engine;
        let clock = engine.truth.clock;
        let obs_traces = engine.observed_traces();
        let slot_hours = clock.slot_hours();
        let t = clock.slots_per_frame();
        let grid_slot_cap = engine.params.grid_slot_cap(slot_hours);
        if self.report.controller.is_empty() {
            self.report.controller = controller.name().to_owned();
        }

        let frame = self.next_frame;
        let view = |battery: &Battery, queue: &DemandQueue, lt_alloc: Energy| SystemView {
            battery_level: battery.level(),
            battery_headroom: battery.headroom(),
            battery_available: battery.available(),
            battery_ops_remaining: battery.operations_remaining(),
            queue_backlog: queue.backlog(),
            lt_allocation: lt_alloc,
            rt_purchase_cap: (grid_slot_cap - lt_alloc).positive_part(),
        };

        for index in frame * t..(frame + 1) * t {
            let id = clock.slot_id(index);

            // ---- Long-term-ahead planning at frame starts. ----------------
            if id.is_frame_start() {
                // The paper observes "the demand d(t) and renewable r(t)
                // generated during time slot t" when committing g_bef(t);
                // causally that is the *previous* frame's realization
                // (frame 0 sees its first slot's values). The forecast
                // policy can substitute (noisy) coming-frame oracles.
                let avg = |series: &[Energy], component: u64| -> Energy {
                    match engine.forecast {
                        crate::ForecastPolicy::PrevFrameAverage => {
                            if id.frame == 0 {
                                series[id.index]
                            } else {
                                let start = (id.frame - 1) * t;
                                series[start..start + t].iter().sum::<Energy>() / t as f64
                            }
                        }
                        crate::ForecastPolicy::Oracle
                        | crate::ForecastPolicy::NoisyOracle { .. } => {
                            let start = id.frame * t;
                            let mean = series[start..start + t].iter().sum::<Energy>() / t as f64;
                            mean * engine.forecast.noise_factor(id.frame, component)
                        }
                    }
                };
                let fobs = FrameObservation {
                    frame: id.frame,
                    slot: id.index,
                    slots_in_frame: t,
                    slot_hours,
                    price_lt: obs_traces.price_lt[id.frame],
                    demand_ds: avg(&obs_traces.demand_ds, 0),
                    demand_dt: avg(&obs_traces.demand_dt, 1),
                    renewable: avg(&obs_traces.renewable, 2),
                };
                let v = view(&self.battery, &self.queue, Energy::ZERO);
                let decision = controller.plan_frame(&fobs, &v);
                if !decision.purchase_lt.is_finite() || decision.purchase_lt.mwh() < 0.0 {
                    return Err(SimError::InvalidDecision {
                        what: "purchase_lt",
                        slot: id.index,
                    });
                }
                let frame_cap = grid_slot_cap * t as f64;
                self.lt_alloc = decision.purchase_lt.min(frame_cap) / t as f64;
            }

            // ---- Real-time balancing. --------------------------------------
            let sobs = SlotObservation {
                slot: id,
                slot_hours,
                price_rt: obs_traces.price_rt[id.index],
                price_lt: obs_traces.price_lt[id.frame],
                demand_ds: obs_traces.demand_ds[id.index],
                demand_dt: obs_traces.demand_dt[id.index],
                renewable: obs_traces.renewable[id.index],
            };
            let v = view(&self.battery, &self.queue, self.lt_alloc);
            let decision = controller.plan_slot(&sobs, &v);

            let inputs = SlotInputs {
                slot: id,
                slot_hours,
                demand_ds: engine.truth.demand_ds[id.index],
                demand_dt: engine.truth.demand_dt[id.index],
                renewable: engine.truth.renewable[id.index],
                price_rt: engine.truth.price_rt[id.index],
                price_lt: engine.truth.price_lt[id.frame],
                lt_alloc: self.lt_alloc,
            };
            let outcome = plant::step(
                &engine.params,
                &inputs,
                &decision,
                &mut self.battery,
                &mut self.queue,
            )?;

            // ---- Aggregate metrics. ----------------------------------------
            let report = &mut self.report;
            report.cost_lt += outcome.cost.long_term;
            report.cost_rt += outcome.cost.real_time;
            report.cost_battery += outcome.cost.battery;
            report.cost_waste += outcome.cost.waste;
            report.energy_lt += outcome.supply_lt;
            report.energy_rt += outcome.purchase_rt;
            report.energy_emergency += outcome.emergency_rt;
            report.energy_renewable += outcome.renewable;
            report.energy_wasted += outcome.waste;
            report.served_ds += outcome.served_ds;
            report.served_dt += outcome.served_dt;
            report.unserved_ds += outcome.unserved_ds;
            if outcome.unserved_ds > Energy::ZERO {
                report.availability_violations += 1;
            }
            report.peak_grid_draw = report.peak_grid_draw.max(outcome.grid_draw());

            let v_after = view(&self.battery, &self.queue, self.lt_alloc);
            controller.end_slot(&outcome, &v_after);
            if let Some(rec) = self.recorded.as_mut() {
                rec.push(outcome);
            }
        }
        self.next_frame = frame + 1;
        Ok(())
    }

    /// Seals the run and produces the final [`RunReport`] (peak demand
    /// charge, queue/battery statistics, recorded outcomes).
    ///
    /// # Errors
    ///
    /// [`SimError::RunIncomplete`] unless every coarse frame has been
    /// stepped — a partial run has no meaningful horizon statistics.
    pub fn finish(mut self) -> Result<RunReport, SimError> {
        let clock = self.engine.truth.clock;
        if !self.is_done() {
            return Err(SimError::RunIncomplete {
                frames_done: self.next_frame,
                frames_total: clock.frames(),
            });
        }
        let slot_hours = clock.slot_hours();

        // ---- Peak demand charge (extension; off by default). -----------------
        if self.engine.params.peak_charge_per_mw > 0.0 {
            let peak_mw = self.report.peak_grid_draw.mwh() / slot_hours;
            self.report.cost_peak =
                dpss_units::Money::from_dollars(peak_mw * self.engine.params.peak_charge_per_mw);
        }

        // ---- Final queue/battery statistics. --------------------------------
        let last = clock.total_slots() - 1;
        self.report.average_delay_slots = self.queue.ledger().average_delay_slots();
        self.report.max_delay_slots = self.queue.ledger().max_delay_slots();
        self.report.oldest_pending_age = self.queue.ledger().oldest_pending_age(last);
        self.report.final_backlog = self.queue.backlog();
        self.report.max_backlog = self.queue.max_backlog_seen();
        self.report.battery_ops = self.battery.operations();
        self.report.battery_min = self.battery.min_level_seen();
        self.report.battery_max = self.battery.max_level_seen();
        self.report.slot_outcomes = self.recorded;
        Ok(self.report)
    }
}

fn empty_report(controller: &str, slots: usize) -> RunReport {
    RunReport {
        controller: controller.to_owned(),
        slots,
        cost_lt: dpss_units::Money::ZERO,
        cost_rt: dpss_units::Money::ZERO,
        cost_battery: dpss_units::Money::ZERO,
        cost_waste: dpss_units::Money::ZERO,
        cost_peak: dpss_units::Money::ZERO,
        energy_lt: Energy::ZERO,
        energy_rt: Energy::ZERO,
        energy_emergency: Energy::ZERO,
        energy_renewable: Energy::ZERO,
        energy_wasted: Energy::ZERO,
        served_ds: Energy::ZERO,
        served_dt: Energy::ZERO,
        unserved_ds: Energy::ZERO,
        availability_violations: 0,
        average_delay_slots: 0.0,
        max_delay_slots: 0,
        oldest_pending_age: None,
        final_backlog: Energy::ZERO,
        max_backlog: Energy::ZERO,
        battery_ops: 0,
        battery_min: Energy::ZERO,
        battery_max: Energy::ZERO,
        peak_grid_draw: Energy::ZERO,
        slot_outcomes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrameDecision, SlotDecision};
    use dpss_traces::{paper_month_traces, Scenario, UniformError};
    use dpss_units::SlotClock;

    /// Serves everything eagerly from the real-time market.
    struct Eager;
    impl Controller for Eager {
        fn name(&self) -> &str {
            "eager"
        }
        fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
            FrameDecision::default()
        }
        fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
            SlotDecision {
                purchase_rt: (obs.demand_ds + view.queue_backlog + obs.demand_dt - obs.renewable)
                    .positive_part(),
                serve_fraction: 1.0,
            }
        }
    }

    /// Buys a fixed long-term block every frame, nothing real-time.
    struct LtOnly(f64);
    impl Controller for LtOnly {
        fn name(&self) -> &str {
            "lt-only"
        }
        fn plan_frame(&mut self, obs: &FrameObservation, _: &SystemView) -> FrameDecision {
            FrameDecision {
                purchase_lt: Energy::from_mwh(self.0 * obs.slots_in_frame as f64),
            }
        }
        fn plan_slot(&mut self, _: &SlotObservation, _: &SystemView) -> SlotDecision {
            SlotDecision {
                purchase_rt: Energy::ZERO,
                serve_fraction: 1.0,
            }
        }
    }

    #[test]
    fn eager_controller_serves_everything() {
        let traces = paper_month_traces(42).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces.clone()).unwrap();
        let r = engine.run(&mut Eager).unwrap();
        assert_eq!(r.unserved_ds, Energy::ZERO);
        assert_eq!(r.availability_violations, 0);
        // All delay-tolerant demand served promptly → tiny final backlog.
        assert!(r.final_backlog.mwh() < 1.0, "backlog {}", r.final_backlog);
        // Eq. (2) serves the *pre-arrival* backlog, so even an eager policy
        // incurs exactly one slot of delay.
        assert!(r.average_delay_slots <= 1.0 + 1e-9);
        assert!(r.average_delay_slots >= 1.0 - 1e-9);
        // Conservation: served ≤ demand.
        assert!(r.served_ds.mwh() <= traces.demand_ds.iter().sum::<Energy>().mwh() + 1e-6);
    }

    #[test]
    fn energy_conservation_across_run() {
        let traces = paper_month_traces(7).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces)
            .unwrap()
            .with_slot_recording(true);
        let r = engine.run(&mut Eager).unwrap();
        // Per-slot balance: supply + discharge = served + charge + waste.
        for o in r.slot_outcomes.as_ref().unwrap() {
            let lhs = o.supply_lt + o.purchase_rt + o.renewable + o.discharge;
            let rhs = o.served_ds + o.served_dt + o.charge + o.waste + o.unserved_ds;
            assert!(
                (lhs.mwh() - rhs.mwh()).abs() < 1e-6,
                "slot {}: {lhs:?} vs {rhs:?}",
                o.slot.index
            );
        }
    }

    #[test]
    fn lt_only_controller_uses_long_term_market() {
        let traces = paper_month_traces(3).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces).unwrap();
        let r = engine.run(&mut LtOnly(1.2)).unwrap();
        assert!(r.cost_lt.dollars() > 0.0);
        assert!(r.energy_lt.mwh() > 0.0);
        // Emergency purchases may exist (tight slots) but the bulk is LT.
        assert!(r.energy_lt > r.energy_rt);
        assert_eq!(r.unserved_ds, Energy::ZERO, "guard keeps availability");
    }

    #[test]
    fn lt_purchase_clamped_to_interconnect() {
        let traces = paper_month_traces(4).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces).unwrap();
        // Ask for an absurd block; per-slot allocation must be ≤ Pgrid·Δh.
        let r = engine.run(&mut LtOnly(1e9)).unwrap();
        assert!(r.energy_lt.mwh() <= 2.0 * 744.0 + 1e-6);
        assert!(r.peak_grid_draw.mwh() <= 2.0 + 1e-9);
    }

    #[test]
    fn battery_level_never_leaves_window() {
        let traces = paper_month_traces(5).unwrap();
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, traces).unwrap();
        let r = engine.run(&mut Eager).unwrap();
        assert!(r.battery_min >= params.battery.min_level - Energy::from_mwh(1e-9));
        assert!(r.battery_max <= params.battery.capacity + Energy::from_mwh(1e-9));
    }

    #[test]
    fn with_params_matches_fresh_engine() {
        let traces = paper_month_traces(21).unwrap();
        let base = Engine::new(SimParams::icdcs13(), traces.clone()).unwrap();
        let mut bigger = SimParams::icdcs13();
        bigger.grid_cap = bigger.grid_cap * 2.0;
        let derived = base.with_params(bigger).unwrap();
        let fresh = Engine::new(bigger, traces).unwrap();
        assert_eq!(
            derived.run(&mut Eager).unwrap(),
            fresh.run(&mut Eager).unwrap(),
            "derived cell engine must behave exactly like a fresh one"
        );
        // Invalid parameters are rejected, not deferred to run time.
        let mut bad = SimParams::icdcs13();
        bad.battery.charge_efficiency = -1.0;
        assert!(base.with_params(bad).is_err());
    }

    #[test]
    fn observed_traces_must_share_calendar() {
        let truth = paper_month_traces(6).unwrap();
        let other = Scenario::icdcs13()
            .generate(&SlotClock::new(2, 24, 1.0).unwrap(), 6)
            .unwrap();
        let engine = Engine::new(SimParams::icdcs13(), truth).unwrap();
        assert!(matches!(
            engine.with_observed(other),
            Err(SimError::ObservationMismatch)
        ));
    }

    #[test]
    fn observation_errors_change_decisions_not_physics() {
        let truth = paper_month_traces(8).unwrap();
        let observed = UniformError::new(0.5).unwrap().perturb(&truth, 99).unwrap();
        let base = Engine::new(SimParams::icdcs13(), truth.clone()).unwrap();
        let noisy = Engine::new(SimParams::icdcs13(), truth)
            .unwrap()
            .with_observed(observed)
            .unwrap();
        let r_base = base.run(&mut Eager).unwrap();
        let r_noisy = noisy.run(&mut Eager).unwrap();
        // Physics identical in total demand served + unserved + backlog...
        let total_base = r_base.served_ds + r_base.unserved_ds;
        let total_noisy = r_noisy.served_ds + r_noisy.unserved_ds;
        assert!((total_base.mwh() - total_noisy.mwh()).abs() < 1e-6);
        // ...but the decisions (and hence costs) differ.
        assert_ne!(r_base.total_cost(), r_noisy.total_cost());
    }

    #[test]
    fn invalid_lt_decision_is_reported() {
        struct BadLt;
        impl Controller for BadLt {
            fn name(&self) -> &str {
                "bad"
            }
            fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
                FrameDecision {
                    purchase_lt: Energy::from_mwh(-1.0),
                }
            }
            fn plan_slot(&mut self, _: &SlotObservation, _: &SystemView) -> SlotDecision {
                SlotDecision::default()
            }
        }
        let traces = paper_month_traces(9).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces).unwrap();
        assert!(matches!(
            engine.run(&mut BadLt),
            Err(SimError::InvalidDecision {
                what: "purchase_lt",
                ..
            })
        ));
    }

    #[test]
    fn run_is_repeatable_and_engine_reusable() {
        let traces = paper_month_traces(10).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces).unwrap();
        let a = engine.run(&mut Eager).unwrap();
        let b = engine.run(&mut Eager).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn forecast_policies_change_frame_observations_only() {
        // An oracle forecast changes lt purchasing decisions (frame obs)
        // but must not touch the physics or the per-slot observations.
        let traces = paper_month_traces(12).unwrap();
        let params = SimParams::icdcs13();
        let base = Engine::new(params, traces.clone()).unwrap();
        let oracle = Engine::new(params, traces)
            .unwrap()
            .with_forecast(crate::ForecastPolicy::Oracle)
            .unwrap();
        let r_base = base.run(&mut LtOnly(1.0)).unwrap();
        let r_oracle = oracle.run(&mut LtOnly(1.0)).unwrap();
        // LtOnly ignores the frame observation content except via its own
        // constant, so outcomes are identical → proves no physics change.
        assert_eq!(r_base.total_cost(), r_oracle.total_cost());

        // Eager uses frame observations? No — it ignores them too; use a
        // controller that buys the observed frame demand ahead.
        struct BuyObserved;
        impl Controller for BuyObserved {
            fn name(&self) -> &str {
                "buy-observed"
            }
            fn plan_frame(&mut self, obs: &FrameObservation, _: &SystemView) -> FrameDecision {
                FrameDecision {
                    purchase_lt: (obs.demand_ds + obs.demand_dt - obs.renewable).positive_part()
                        * obs.slots_in_frame as f64,
                }
            }
            fn plan_slot(&mut self, _: &SlotObservation, _: &SystemView) -> SlotDecision {
                SlotDecision {
                    purchase_rt: Energy::ZERO,
                    serve_fraction: 1.0,
                }
            }
        }
        let r_base = base.run(&mut BuyObserved).unwrap();
        let r_oracle = oracle.run(&mut BuyObserved).unwrap();
        assert_ne!(
            r_base.total_cost(),
            r_oracle.total_cost(),
            "oracle forecast must change frame decisions"
        );
    }

    #[test]
    fn noisy_oracle_validates_and_runs() {
        let traces = paper_month_traces(14).unwrap();
        let params = SimParams::icdcs13();
        assert!(Engine::new(params, traces.clone())
            .unwrap()
            .with_forecast(crate::ForecastPolicy::NoisyOracle {
                rel_std: -1.0,
                seed: 0
            })
            .is_err());
        let engine = Engine::new(params, traces)
            .unwrap()
            .with_forecast(crate::ForecastPolicy::NoisyOracle {
                rel_std: 0.22,
                seed: 7,
            })
            .unwrap();
        let r = engine.run(&mut Eager).unwrap();
        assert_eq!(r.unserved_ds, Energy::ZERO);
    }

    #[test]
    fn peak_charge_prices_the_largest_draw() {
        let traces = paper_month_traces(15).unwrap();
        let mut params = SimParams::icdcs13();
        params.peak_charge_per_mw = 1_000.0;
        let engine = Engine::new(params, traces).unwrap();
        let r = engine.run(&mut Eager).unwrap();
        let expected = r.peak_grid_draw.mwh() / 1.0 * 1_000.0;
        assert!((r.cost_peak.dollars() - expected).abs() < 1e-9);
        assert!(r.total_cost() > r.cost_lt + r.cost_rt + r.cost_battery + r.cost_waste);
        // Default configuration charges nothing.
        let free = Engine::new(SimParams::icdcs13(), paper_month_traces(15).unwrap()).unwrap();
        assert_eq!(free.run(&mut Eager).unwrap().cost_peak.dollars(), 0.0);
    }

    #[test]
    fn state_resume_matches_uninterrupted_run() {
        let traces = paper_month_traces(42).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces)
            .unwrap()
            .with_slot_recording(true);
        let full = engine.run(&mut Eager).unwrap();
        let frames = engine.truth().clock.frames();
        for cut in [1usize, frames / 2, frames - 1] {
            let mut run = engine.begin().unwrap();
            for _ in 0..cut {
                run.step_frame(&mut Eager).unwrap();
            }
            // Serialize the state across a simulated process boundary.
            let json = serde_json::to_string(&run.state()).unwrap();
            drop(run);
            let state: crate::EngineRunState = serde_json::from_str(&json).unwrap();
            let mut resumed = engine.resume(state).unwrap();
            assert_eq!(resumed.frames_completed(), cut);
            while !resumed.is_done() {
                resumed.step_frame(&mut Eager).unwrap();
            }
            let report = resumed.finish().unwrap();
            assert_eq!(
                serde_json::to_string(&report).unwrap(),
                serde_json::to_string(&full).unwrap(),
                "resume at frame {cut} must be byte-identical"
            );
        }
    }

    #[test]
    fn resume_rejects_inconsistent_state() {
        let traces = paper_month_traces(42).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces).unwrap();
        let mut run = engine.begin().unwrap();
        run.step_frame(&mut Eager).unwrap();
        let good = run.state();

        let mut bad = good.clone();
        bad.next_frame = engine.truth().clock.frames() + 1;
        assert!(matches!(
            engine.resume(bad),
            Err(SimError::InvalidState { .. })
        ));

        // Recording flag mismatch: state has no outcomes, engine wants them.
        let recording = engine.clone().with_slot_recording(true);
        assert!(matches!(
            recording.resume(good.clone()),
            Err(SimError::InvalidState { .. })
        ));

        let mut bad = good.clone();
        bad.lt_alloc = Energy::from_mwh(f64::NAN);
        assert!(engine.resume(bad).is_err());

        let mut bad = good.clone();
        bad.battery.level = Energy::from_mwh(1e9);
        assert!(engine.resume(bad).is_err());

        let mut bad = good.clone();
        bad.queue.backlog += Energy::from_mwh(1.0);
        assert!(engine.resume(bad).is_err());

        let mut bad = good;
        bad.report.slots = 3;
        assert!(engine.resume(bad).is_err());
    }

    #[test]
    fn report_names_controller() {
        let traces = paper_month_traces(11).unwrap();
        let engine = Engine::new(SimParams::icdcs13(), traces).unwrap();
        let r = engine.run(&mut Eager).unwrap();
        assert_eq!(r.controller, "eager");
        assert!(r.summary().contains("eager"));
    }
}
