use std::error::Error;
use std::fmt;

use dpss_traces::TraceError;
use dpss_units::UnitsError;

/// Error produced by simulator configuration or execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A parameter violates its documented range.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// Human-readable constraint.
        requirement: &'static str,
    },
    /// A battery operation would violate a physical limit (rate, capacity
    /// window or cycle budget). The plant never triggers this — it clamps
    /// first — but direct [`Battery`](crate::Battery) users can.
    BatteryLimit {
        /// Which operation was attempted.
        operation: &'static str,
        /// Requested amount in MWh.
        requested: f64,
        /// Maximum permitted amount in MWh.
        limit: f64,
    },
    /// A controller returned a NaN or negative decision.
    InvalidDecision {
        /// Which decision field was invalid.
        what: &'static str,
        /// Fine-slot index at which it happened.
        slot: usize,
    },
    /// The observed trace set does not share the true trace set's calendar.
    ObservationMismatch,
    /// Multi-site composition failed: the sites disagree on something they
    /// must share (calendar), or a per-site input is missing or misshapen.
    SiteMismatch {
        /// Which site (index into the engine roster).
        site: usize,
        /// What disagreed or was missing.
        what: &'static str,
    },
    /// A resumable run was finished before every coarse frame was
    /// stepped ([`EngineRun::finish`](crate::EngineRun::finish)).
    RunIncomplete {
        /// Coarse frames stepped so far.
        frames_done: usize,
        /// Coarse frames in the calendar.
        frames_total: usize,
    },
    /// A checkpointed state record failed validation on restore
    /// ([`Engine::resume`](crate::Engine::resume) and the per-component
    /// `from_state` constructors).
    InvalidState {
        /// Description of the inconsistency.
        what: &'static str,
    },
    /// An underlying trace error.
    Trace(TraceError),
    /// An underlying units/calendar error.
    Units(UnitsError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { what, requirement } => {
                write!(f, "parameter {what} {requirement}")
            }
            SimError::BatteryLimit {
                operation,
                requested,
                limit,
            } => write!(
                f,
                "battery {operation} of {requested} MWh exceeds limit {limit} MWh"
            ),
            SimError::InvalidDecision { what, slot } => {
                write!(f, "controller produced invalid {what} at slot {slot}")
            }
            SimError::ObservationMismatch => {
                write!(f, "observed traces use a different calendar than the truth")
            }
            SimError::SiteMismatch { site, what } => {
                write!(f, "site {site}: {what}")
            }
            SimError::RunIncomplete {
                frames_done,
                frames_total,
            } => write!(
                f,
                "run finished after only {frames_done} of {frames_total} frames"
            ),
            SimError::InvalidState { what } => {
                write!(f, "invalid resume state: {what}")
            }
            SimError::Trace(e) => write!(f, "trace error: {e}"),
            SimError::Units(e) => write!(f, "units error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            SimError::Units(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

impl From<UnitsError> for SimError {
    fn from(e: UnitsError) -> Self {
        SimError::Units(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SimError::BatteryLimit {
            operation: "discharge",
            requested: 2.0,
            limit: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("discharge") && s.contains('2') && s.contains("0.5"));

        let e = SimError::InvalidDecision {
            what: "serve_fraction",
            slot: 17,
        };
        assert!(e.to_string().contains("17"));
        assert!(SimError::ObservationMismatch
            .to_string()
            .contains("calendar"));
    }

    #[test]
    fn wraps_sources() {
        let e: SimError = TraceError::InvalidParameter {
            what: "beta",
            requirement: "must be finite",
        }
        .into();
        assert!(Error::source(&e).is_some());
        let e: SimError = UnitsError::ZeroCount { what: "frames" }.into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
