use dpss_units::Energy;

use crate::DelayLedger;

/// The delay-tolerant demand queue `Q(τ)` of Eq. (2), paired with an exact
/// FIFO [`DelayLedger`] so that realized delays are measured, not modeled.
///
/// The update order follows the paper exactly: service `s_dt(τ) = γ(τ)·Q(τ)`
/// draws on the *pre-arrival* backlog, then the slot's arrival `d_dt(τ)` is
/// appended — `Q(τ+1) = max{Q(τ) − s_dt(τ), 0} + d_dt(τ)`.
///
/// # Examples
///
/// ```
/// use dpss_sim::DemandQueue;
/// use dpss_units::Energy;
///
/// let mut q = DemandQueue::new();
/// q.arrive(0, Energy::from_mwh(1.0));
/// let served = q.serve(1, Energy::from_mwh(0.4));
/// assert_eq!(served, Energy::from_mwh(0.4));
/// assert_eq!(q.backlog(), Energy::from_mwh(0.6));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DemandQueue {
    backlog: Energy,
    max_backlog: Energy,
    ledger: DelayLedger,
}

impl DemandQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        DemandQueue::default()
    }

    /// Current backlog `Q(τ)`.
    #[must_use]
    pub fn backlog(&self) -> Energy {
        self.backlog
    }

    /// Largest backlog observed (the Theorem 2(3) `Qmax` audit).
    #[must_use]
    pub fn max_backlog_seen(&self) -> Energy {
        self.max_backlog
    }

    /// Appends `amount` of delay-tolerant demand arriving at `slot`.
    ///
    /// Non-positive amounts are ignored.
    pub fn arrive(&mut self, slot: usize, amount: Energy) {
        if amount <= Energy::ZERO {
            return;
        }
        self.backlog += amount;
        self.max_backlog = self.max_backlog.max(self.backlog);
        self.ledger.arrive(slot, amount);
    }

    /// Serves up to `amount` from the backlog in FIFO order at `slot`,
    /// returning the energy actually served (capped by the backlog).
    pub fn serve(&mut self, slot: usize, amount: Energy) -> Energy {
        let target = amount.max(Energy::ZERO).min(self.backlog);
        let served = self.ledger.serve(slot, target);
        self.backlog = (self.backlog - served).positive_part();
        served
    }

    /// Read access to the delay ledger.
    #[must_use]
    pub fn ledger(&self) -> &DelayLedger {
        &self.ledger
    }

    /// Captures the queue's full state for checkpointing.
    #[must_use]
    pub fn state(&self) -> crate::QueueState {
        crate::QueueState {
            backlog: self.backlog,
            max_backlog: self.max_backlog,
            ledger: self.ledger.state(),
        }
    }

    /// Rebuilds a queue mid-run from a checkpointed state.
    ///
    /// # Errors
    ///
    /// [`SimError`](crate::SimError)`::InvalidState` if the backlog is
    /// not finite and non-negative, disagrees with the embedded ledger's
    /// unserved total, or the ledger state itself is invalid.
    pub fn from_state(state: &crate::QueueState) -> Result<Self, crate::SimError> {
        if !state.backlog.is_finite() || state.backlog.mwh() < 0.0 {
            return Err(crate::SimError::InvalidState {
                what: "queue backlog must be finite and non-negative",
            });
        }
        if !state.max_backlog.is_finite() || state.max_backlog < state.backlog {
            return Err(crate::SimError::InvalidState {
                what: "queue max backlog must be finite and at least the backlog",
            });
        }
        let ledger = DelayLedger::from_state(&state.ledger)?;
        if (state.backlog.mwh() - ledger.unserved().mwh()).abs() > 1e-6 {
            return Err(crate::SimError::InvalidState {
                what: "queue backlog disagrees with the ledger's unserved total",
            });
        }
        Ok(DemandQueue {
            backlog: state.backlog,
            max_backlog: state.max_backlog,
            ledger,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mwh(x: f64) -> Energy {
        Energy::from_mwh(x)
    }

    #[test]
    fn paper_update_order() {
        // Q(0)=0, arrive 1.0 at slot 0; at slot 1 serve γ=0.5·Q then a new
        // arrival lands: Q(2) = max(1.0 − 0.5, 0) + 0.3 = 0.8.
        let mut q = DemandQueue::new();
        q.arrive(0, mwh(1.0));
        assert_eq!(q.backlog(), mwh(1.0));
        let served = q.serve(1, mwh(0.5));
        assert_eq!(served, mwh(0.5));
        q.arrive(1, mwh(0.3));
        assert_eq!(q.backlog(), mwh(0.8));
    }

    #[test]
    fn service_capped_by_backlog() {
        let mut q = DemandQueue::new();
        q.arrive(0, mwh(0.4));
        let served = q.serve(2, mwh(1.0));
        assert_eq!(served, mwh(0.4));
        assert_eq!(q.backlog(), Energy::ZERO);
        // Further service is a no-op.
        assert_eq!(q.serve(3, mwh(1.0)), Energy::ZERO);
    }

    #[test]
    fn max_backlog_tracked() {
        let mut q = DemandQueue::new();
        q.arrive(0, mwh(1.0));
        q.arrive(1, mwh(2.0));
        q.serve(2, mwh(2.5));
        q.arrive(2, mwh(0.1));
        assert_eq!(q.max_backlog_seen(), mwh(3.0));
    }

    #[test]
    fn backlog_and_ledger_stay_consistent() {
        let mut q = DemandQueue::new();
        for slot in 0..50 {
            q.arrive(slot, mwh(0.3));
            if slot % 2 == 1 {
                q.serve(slot, q.backlog() * 0.7);
            }
            assert!(
                (q.backlog().mwh() - q.ledger().unserved().mwh()).abs() < 1e-9,
                "slot {slot}"
            );
        }
        assert!(q.ledger().average_delay_slots() > 0.0);
    }

    #[test]
    fn negative_amounts_ignored() {
        let mut q = DemandQueue::new();
        q.arrive(0, mwh(-1.0));
        assert_eq!(q.backlog(), Energy::ZERO);
        q.arrive(0, mwh(1.0));
        assert_eq!(q.serve(0, mwh(-0.5)), Energy::ZERO);
        assert_eq!(q.backlog(), mwh(1.0));
    }
}
