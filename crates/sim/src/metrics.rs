use dpss_units::{Energy, Money, SlotId};
use serde::{Deserialize, Serialize};

/// Cost components of one fine slot — the paper's
/// `Cost(τ) = g_bef/T·p_lt + g_rt·p_rt + n(τ)·Cb + W(τ)` split out.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotCost {
    /// Long-term-ahead purchase cost `g_bef(t)/T · p_lt(t)`.
    pub long_term: Money,
    /// Real-time purchase cost `g_rt(τ) · p_rt(τ)` (includes emergency
    /// purchases made by the feasibility guard).
    pub real_time: Money,
    /// Battery wear `n(τ) · Cb`.
    pub battery: Money,
    /// Waste penalty `w_pen · W(τ)`.
    pub waste: Money,
}

impl SlotCost {
    /// Total cost of the slot.
    #[must_use]
    pub fn total(&self) -> Money {
        self.long_term + self.real_time + self.battery + self.waste
    }
}

/// Everything that physically happened in one fine slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcome {
    /// Which slot.
    pub slot: SlotId,
    /// Long-term energy delivered this slot (`g_bef(t)/T`).
    pub supply_lt: Energy,
    /// Real-time energy purchased (controller request plus emergency).
    pub purchase_rt: Energy,
    /// Portion of `purchase_rt` forced by the feasibility guard.
    pub emergency_rt: Energy,
    /// Renewable energy fed into the circuit (`r(τ)`, always all of it).
    pub renewable: Energy,
    /// Delay-sensitive demand served.
    pub served_ds: Energy,
    /// Delay-tolerant backlog served (`s_dt(τ)` realized).
    pub served_dt: Energy,
    /// Grid-side battery charge `brc(τ)`.
    pub charge: Energy,
    /// Load-side battery discharge `bdc(τ)`.
    pub discharge: Energy,
    /// Wasted (curtailed) energy `W(τ)`.
    pub waste: Energy,
    /// Delay-sensitive demand that could not be served even after the
    /// feasibility guard — an availability violation.
    pub unserved_ds: Energy,
    /// Battery level after the slot.
    pub battery_level_after: Energy,
    /// Queue backlog after the slot (post-arrival).
    pub queue_after: Energy,
    /// Whether the battery operated this slot (`n(τ)`).
    pub battery_op: bool,
    /// Cost breakdown.
    pub cost: SlotCost,
}

impl SlotOutcome {
    /// Total grid draw this slot (`g_bef/T + g_rt`), for peak audits.
    #[must_use]
    pub fn grid_draw(&self) -> Energy {
        self.supply_lt + self.purchase_rt
    }
}

/// Aggregated result of one simulation run.
///
/// # Examples
///
/// ```no_run
/// # fn report() -> dpss_sim::RunReport { unimplemented!() }
/// let r = report();
/// println!("{}: ${:.2}/slot, delay {:.2} slots",
///          r.controller, r.time_average_cost().dollars(),
///          r.average_delay_slots);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the controller that produced this run.
    pub controller: String,
    /// Number of fine slots simulated.
    pub slots: usize,
    /// Long-term purchase cost total.
    pub cost_lt: Money,
    /// Real-time purchase cost total.
    pub cost_rt: Money,
    /// Battery wear cost total.
    pub cost_battery: Money,
    /// Waste penalty total.
    pub cost_waste: Money,
    /// Demand charge on the horizon's peak grid draw (zero unless
    /// [`SimParams::peak_charge_per_mw`](crate::SimParams) is set).
    pub cost_peak: Money,
    /// Energy bought long-term.
    pub energy_lt: Energy,
    /// Energy bought real-time (incl. emergency).
    pub energy_rt: Energy,
    /// Emergency portion of real-time purchases.
    pub energy_emergency: Energy,
    /// Renewable energy produced.
    pub energy_renewable: Energy,
    /// Energy wasted (curtailed).
    pub energy_wasted: Energy,
    /// Delay-sensitive demand served.
    pub served_ds: Energy,
    /// Delay-tolerant demand served.
    pub served_dt: Energy,
    /// Delay-sensitive demand unserved (availability violations).
    pub unserved_ds: Energy,
    /// Number of slots with an availability violation.
    pub availability_violations: usize,
    /// Energy-weighted mean service delay of delay-tolerant demand (slots).
    pub average_delay_slots: f64,
    /// Worst realized service delay (slots).
    pub max_delay_slots: usize,
    /// Age of the oldest still-queued energy at horizon end (slots).
    pub oldest_pending_age: Option<usize>,
    /// Backlog remaining at horizon end.
    pub final_backlog: Energy,
    /// Largest backlog observed.
    pub max_backlog: Energy,
    /// Battery operating slots (`Σ n(τ)`).
    pub battery_ops: u64,
    /// Lowest battery level observed.
    pub battery_min: Energy,
    /// Highest battery level observed.
    pub battery_max: Energy,
    /// Largest per-slot grid draw observed.
    pub peak_grid_draw: Energy,
    /// Per-slot outcomes, when recording was enabled.
    pub slot_outcomes: Option<Vec<SlotOutcome>>,
}

impl RunReport {
    /// Total operating cost over the horizon (including the peak demand
    /// charge if configured).
    #[must_use]
    pub fn total_cost(&self) -> Money {
        self.cost_lt + self.cost_rt + self.cost_battery + self.cost_waste + self.cost_peak
    }

    /// Time-average cost per fine slot — the paper's `Cost_av` objective
    /// (Eq. (10)).
    #[must_use]
    pub fn time_average_cost(&self) -> Money {
        if self.slots == 0 {
            Money::ZERO
        } else {
            self.total_cost() / self.slots as f64
        }
    }

    /// Delay-sensitive availability: the fraction of delay-sensitive
    /// energy that was actually served (the paper's motivation targets
    /// "more than six 9's" — this is the audit). `1.0` when there was no
    /// demand at all.
    #[must_use]
    pub fn availability(&self) -> f64 {
        let demanded = self.served_ds + self.unserved_ds;
        if demanded <= Energy::ZERO {
            1.0
        } else {
            self.served_ds / demanded
        }
    }

    /// Fraction of served energy that came from renewables (diagnostic).
    #[must_use]
    pub fn renewable_share(&self) -> f64 {
        let served = self.served_ds + self.served_dt;
        if served <= Energy::ZERO {
            0.0
        } else {
            let used = self.energy_renewable - self.energy_wasted;
            (used.max(Energy::ZERO) / served).min(1.0)
        }
    }

    /// One-line human-readable summary (used by the figure regenerators).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:<12} cost/slot ${:8.3} (lt {:7.2} rt {:7.2} bat {:6.2} waste {:6.2}) \
             delay avg {:6.2} max {:4} | unserved {:.4} MWh",
            self.controller,
            self.time_average_cost().dollars(),
            self.cost_lt.dollars(),
            self.cost_rt.dollars(),
            self.cost_battery.dollars(),
            self.cost_waste.dollars(),
            self.average_delay_slots,
            self.max_delay_slots,
            self.unserved_ds.mwh(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_report() -> RunReport {
        RunReport {
            controller: "test".into(),
            slots: 0,
            cost_lt: Money::ZERO,
            cost_rt: Money::ZERO,
            cost_battery: Money::ZERO,
            cost_waste: Money::ZERO,
            cost_peak: Money::ZERO,
            energy_lt: Energy::ZERO,
            energy_rt: Energy::ZERO,
            energy_emergency: Energy::ZERO,
            energy_renewable: Energy::ZERO,
            energy_wasted: Energy::ZERO,
            served_ds: Energy::ZERO,
            served_dt: Energy::ZERO,
            unserved_ds: Energy::ZERO,
            availability_violations: 0,
            average_delay_slots: 0.0,
            max_delay_slots: 0,
            oldest_pending_age: None,
            final_backlog: Energy::ZERO,
            max_backlog: Energy::ZERO,
            battery_ops: 0,
            battery_min: Energy::ZERO,
            battery_max: Energy::ZERO,
            peak_grid_draw: Energy::ZERO,
            slot_outcomes: None,
        }
    }

    #[test]
    fn slot_cost_totals() {
        let c = SlotCost {
            long_term: Money::from_dollars(1.0),
            real_time: Money::from_dollars(2.0),
            battery: Money::from_dollars(0.1),
            waste: Money::from_dollars(0.5),
        };
        assert!((c.total().dollars() - 3.6).abs() < 1e-12);
        assert_eq!(SlotCost::default().total(), Money::ZERO);
    }

    #[test]
    fn empty_report_time_average_is_zero() {
        let r = zero_report();
        assert_eq!(r.time_average_cost(), Money::ZERO);
        assert_eq!(r.renewable_share(), 0.0);
    }

    #[test]
    fn availability_audit() {
        let mut r = zero_report();
        assert_eq!(r.availability(), 1.0, "no demand is perfect availability");
        r.served_ds = Energy::from_mwh(999.0);
        r.unserved_ds = Energy::from_mwh(1.0);
        assert!((r.availability() - 0.999).abs() < 1e-12);
        r.unserved_ds = Energy::ZERO;
        assert_eq!(r.availability(), 1.0);
    }

    #[test]
    fn report_aggregation_math() {
        let mut r = zero_report();
        r.slots = 10;
        r.cost_lt = Money::from_dollars(30.0);
        r.cost_rt = Money::from_dollars(10.0);
        r.cost_battery = Money::from_dollars(1.0);
        r.cost_waste = Money::from_dollars(2.0);
        assert!((r.total_cost().dollars() - 43.0).abs() < 1e-12);
        assert!((r.time_average_cost().dollars() - 4.3).abs() < 1e-12);
        r.served_ds = Energy::from_mwh(8.0);
        r.served_dt = Energy::from_mwh(2.0);
        r.energy_renewable = Energy::from_mwh(4.0);
        r.energy_wasted = Energy::from_mwh(1.0);
        assert!((r.renewable_share() - 0.3).abs() < 1e-12);
        let s = r.summary();
        assert!(s.contains("test"));
    }
}
