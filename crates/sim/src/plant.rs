//! Single-slot physics: applies a controller's decisions to the plant under
//! the paper's balance equation (Eq. (4)) with a feasibility guard.
//!
//! Guard policy (documented in `DESIGN.md` §3): when a decision would
//! require more discharge than the battery can deliver, the plant first
//! buys emergency real-time energy up to the interconnect limit, then
//! reduces delay-tolerant service, and only then — if delay-sensitive
//! demand still cannot be met — records an availability violation. Nothing
//! is ever silently dropped.

use dpss_units::{Energy, Price, SlotId};

use crate::metrics::{SlotCost, SlotOutcome};
use crate::{Battery, DemandQueue, SimError, SimParams, SlotDecision};

/// Numerical dust threshold: flows below this are treated as zero so that
/// float noise does not count as battery operations.
const DUST: f64 = 1e-9;

/// True per-slot inputs (the plant always runs on the truth, regardless of
/// what the controller observed).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotInputs {
    pub slot: SlotId,
    pub slot_hours: f64,
    pub demand_ds: Energy,
    pub demand_dt: Energy,
    pub renewable: Energy,
    pub price_rt: Price,
    pub price_lt: Price,
    /// Long-term energy scheduled for this slot, `g_bef(t)/T`.
    pub lt_alloc: Energy,
}

pub(crate) fn step(
    params: &SimParams,
    inp: &SlotInputs,
    decision: &SlotDecision,
    battery: &mut Battery,
    queue: &mut DemandQueue,
) -> Result<SlotOutcome, SimError> {
    // ---- Decision validation and clamping. ------------------------------
    if !decision.purchase_rt.is_finite() || decision.purchase_rt.mwh() < 0.0 {
        return Err(SimError::InvalidDecision {
            what: "purchase_rt",
            slot: inp.slot.index,
        });
    }
    if !decision.serve_fraction.is_finite() {
        return Err(SimError::InvalidDecision {
            what: "serve_fraction",
            slot: inp.slot.index,
        });
    }
    let gamma = decision.serve_fraction.clamp(0.0, 1.0);

    let grid_cap = params.grid_slot_cap(inp.slot_hours);
    let rt_cap = (grid_cap - inp.lt_alloc).positive_part();
    let mut g_rt = decision.purchase_rt.min(rt_cap);

    // Total-supply cap `Smax` (Eq. (1)): shrink the real-time purchase if
    // the circuit would exceed it.
    if let Some(smax) = params.supply_cap {
        let fixed = inp.lt_alloc + inp.renewable;
        g_rt = g_rt.min((smax - fixed).positive_part());
    }

    // ---- Targeted delay-tolerant service. --------------------------------
    let mut dt_target = queue.backlog() * gamma;
    if let Some(sdt_max) = params.sdt_max {
        dt_target = dt_target.min(sdt_max);
    }

    // ---- Balance, battery and the feasibility guard. ---------------------
    let supplies = inp.lt_alloc + g_rt + inp.renewable;
    let need = inp.demand_ds + dt_target;
    let net = supplies - need;

    let mut emergency = Energy::ZERO;
    let mut unserved_ds = Energy::ZERO;
    let brc: Energy;
    let bdc: Energy;
    let waste: Energy;
    if net.mwh() >= 0.0 {
        let charge = net.min(battery.headroom());
        brc = if charge.mwh() > DUST {
            charge
        } else {
            Energy::ZERO
        };
        waste = net - brc;
        bdc = Energy::ZERO;
    } else {
        brc = Energy::ZERO;
        let deficit = -net;
        let bdc_max = battery.available();
        // Guard stage 1: emergency real-time purchase for whatever the
        // battery cannot cover.
        let uncovered = (deficit - bdc_max).positive_part();
        if uncovered.mwh() > DUST {
            let mut room = (rt_cap - g_rt).positive_part();
            if let Some(smax) = params.supply_cap {
                room = room.min((smax - supplies).positive_part());
            }
            emergency = uncovered.min(room);
            g_rt += emergency;
        }
        let deficit = deficit - emergency;
        let discharge = deficit.min(bdc_max);
        bdc = if discharge.mwh() > DUST {
            discharge
        } else {
            Energy::ZERO
        };
        // Guard stages 2–3: shed delay-tolerant service, then record an
        // availability violation for any remaining delay-sensitive gap.
        let shortfall = (deficit - bdc).positive_part();
        if shortfall.mwh() > DUST {
            let dt_cut = shortfall.min(dt_target);
            dt_target -= dt_cut;
            unserved_ds = shortfall - dt_cut;
        }
        waste = Energy::ZERO;
    }

    // ---- Apply state transitions. -----------------------------------------
    if brc > Energy::ZERO {
        battery.charge(brc.min(battery.headroom()))?;
    } else if bdc > Energy::ZERO {
        battery.discharge(bdc.min(battery.available()))?;
    }
    let served_dt = queue.serve(inp.slot.index, dt_target);
    queue.arrive(inp.slot.index, inp.demand_dt);
    let served_ds = (inp.demand_ds - unserved_ds).positive_part();

    // ---- Costs (Eq. before (10)). ------------------------------------------
    let battery_op = brc.mwh() > DUST || bdc.mwh() > DUST;
    let cost = SlotCost {
        long_term: inp.lt_alloc * inp.price_lt,
        real_time: g_rt * inp.price_rt,
        battery: if battery_op {
            battery.params().op_cost
        } else {
            dpss_units::Money::ZERO
        },
        waste: waste * params.waste_price,
    };

    Ok(SlotOutcome {
        slot: inp.slot,
        supply_lt: inp.lt_alloc,
        purchase_rt: g_rt,
        emergency_rt: emergency,
        renewable: inp.renewable,
        served_ds,
        served_dt,
        charge: brc,
        discharge: bdc,
        waste,
        unserved_ds,
        battery_level_after: battery.level(),
        queue_after: queue.backlog(),
        battery_op,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatteryParams;
    use dpss_units::Money;

    fn setup() -> (SimParams, Battery, DemandQueue) {
        let params = SimParams::icdcs13();
        let battery = Battery::new(params.battery).unwrap();
        (params, battery, DemandQueue::new())
    }

    fn inputs(ds: f64, dt: f64, r: f64, lt: f64) -> SlotInputs {
        SlotInputs {
            slot: SlotId {
                index: 0,
                frame: 0,
                offset: 0,
            },
            slot_hours: 1.0,
            demand_ds: Energy::from_mwh(ds),
            demand_dt: Energy::from_mwh(dt),
            renewable: Energy::from_mwh(r),
            price_rt: Price::from_dollars_per_mwh(50.0),
            price_lt: Price::from_dollars_per_mwh(30.0),
            lt_alloc: Energy::from_mwh(lt),
        }
    }

    #[test]
    fn balance_holds_in_surplus() {
        let (params, mut battery, mut queue) = setup();
        let inp = inputs(0.5, 0.2, 0.4, 1.0); // supply 1.4 vs ds 0.5
        let d = SlotDecision {
            purchase_rt: Energy::ZERO,
            serve_fraction: 0.0,
        };
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        // Surplus 0.9: battery headroom = min(0.5, (0.5−b0)/0.8).
        let headroom = (0.5 - 2.0 / 60.0) / 0.8;
        let expect_charge = 0.9_f64.min(0.5).min(headroom);
        assert!((out.charge.mwh() - expect_charge).abs() < 1e-9);
        assert!((out.waste.mwh() - (0.9 - expect_charge)).abs() < 1e-9);
        assert_eq!(out.discharge, Energy::ZERO);
        assert_eq!(out.unserved_ds, Energy::ZERO);
        assert!(out.battery_op);
        // Eq. (4): s + bdc − brc = served + W.
        let lhs = out.supply_lt + out.purchase_rt + out.renewable + out.discharge - out.charge;
        let rhs = out.served_ds + out.served_dt + out.waste;
        assert!((lhs.mwh() - rhs.mwh()).abs() < 1e-9);
    }

    #[test]
    fn battery_covers_deficit() {
        let (params, _, mut queue) = setup();
        let mut bp = BatteryParams::icdcs13(15.0);
        bp.initial_level = Energy::from_mwh(0.5); // full
        let mut battery = Battery::new(bp).unwrap();
        let inp = inputs(1.0, 0.0, 0.2, 0.5); // deficit 0.3
        let d = SlotDecision::default();
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        assert!((out.discharge.mwh() - 0.3).abs() < 1e-9);
        assert_eq!(out.emergency_rt, Energy::ZERO);
        assert_eq!(out.unserved_ds, Energy::ZERO);
        // Level drops by ηd·bdc.
        assert!((out.battery_level_after.mwh() - (0.5 - 1.25 * 0.3)).abs() < 1e-9);
    }

    #[test]
    fn guard_buys_emergency_before_shedding() {
        let (params, mut battery, mut queue) = setup();
        // Battery nearly empty: available ~ 0. Demand 1.5, supply 0.2.
        let inp = inputs(1.5, 0.0, 0.2, 0.0);
        let d = SlotDecision::default();
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        assert!(out.emergency_rt.mwh() > 1.0, "guard bought energy");
        assert_eq!(out.unserved_ds, Energy::ZERO);
        assert_eq!(out.served_ds, Energy::from_mwh(1.5));
        assert!(out.cost.real_time.dollars() > 0.0);
    }

    #[test]
    fn guard_sheds_dt_before_ds() {
        let mut params = SimParams::icdcs13();
        params.grid_cap = dpss_units::Power::from_mw(1.0); // tight interconnect
        let mut battery = Battery::new(params.battery).unwrap();
        let mut queue = DemandQueue::new();
        queue.arrive(0, Energy::from_mwh(2.0));
        // Demand ds 0.9, serve all backlog (γ=1 → 2.0), supply 0.
        let inp = inputs(0.9, 0.0, 0.0, 0.0);
        let d = SlotDecision {
            purchase_rt: Energy::ZERO,
            serve_fraction: 1.0,
        };
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        // Grid gives at most 1.0; battery a little. dt gets shed first.
        assert!(out.served_dt < Energy::from_mwh(2.0));
        assert_eq!(out.unserved_ds, Energy::ZERO, "ds protected: {out:?}");
    }

    #[test]
    fn availability_violation_when_interconnect_saturated() {
        let mut params = SimParams::icdcs13_with_battery(0.0);
        params.grid_cap = dpss_units::Power::from_mw(1.0);
        let mut battery = Battery::new(params.battery).unwrap();
        let mut queue = DemandQueue::new();
        let inp = inputs(1.5, 0.0, 0.0, 0.0); // no battery, grid caps at 1.0
        let d = SlotDecision::default();
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        assert!((out.unserved_ds.mwh() - 0.5).abs() < 1e-9);
        assert!((out.served_ds.mwh() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rt_purchase_clamped_to_interconnect() {
        let (params, mut battery, mut queue) = setup();
        let inp = inputs(0.0, 0.0, 0.0, 1.5);
        let d = SlotDecision {
            purchase_rt: Energy::from_mwh(5.0), // wants more than Pgrid−lt
            serve_fraction: 0.0,
        };
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        assert!((out.purchase_rt.mwh() - 0.5).abs() < 1e-9, "2.0 − 1.5 cap");
    }

    #[test]
    fn supply_cap_limits_purchases() {
        let mut params = SimParams::icdcs13();
        params.supply_cap = Some(Energy::from_mwh(1.0));
        let mut battery = Battery::new(params.battery).unwrap();
        let mut queue = DemandQueue::new();
        let inp = inputs(0.0, 0.0, 0.8, 0.1);
        let d = SlotDecision {
            purchase_rt: Energy::from_mwh(2.0),
            serve_fraction: 0.0,
        };
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        assert!(out.purchase_rt.mwh() <= 0.1 + 1e-9, "Smax − lt − r = 0.1");
    }

    #[test]
    fn sdt_max_caps_service() {
        let mut params = SimParams::icdcs13();
        params.sdt_max = Some(Energy::from_mwh(0.3));
        let mut battery = Battery::new(params.battery).unwrap();
        let mut queue = DemandQueue::new();
        queue.arrive(0, Energy::from_mwh(2.0));
        let inp = inputs(0.0, 0.0, 1.0, 0.5);
        let d = SlotDecision {
            purchase_rt: Energy::ZERO,
            serve_fraction: 1.0,
        };
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        assert!((out.served_dt.mwh() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn queue_arrival_happens_after_service() {
        let (params, mut battery, mut queue) = setup();
        queue.arrive(0, Energy::from_mwh(1.0));
        let inp = inputs(0.0, 0.7, 2.0, 0.0); // new dt arrival 0.7
        let d = SlotDecision {
            purchase_rt: Energy::ZERO,
            serve_fraction: 1.0,
        };
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        // Serves the pre-arrival backlog 1.0, then 0.7 arrives.
        assert!((out.served_dt.mwh() - 1.0).abs() < 1e-9);
        assert!((out.queue_after.mwh() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn invalid_decisions_rejected() {
        let (params, mut battery, mut queue) = setup();
        let inp = inputs(0.0, 0.0, 0.0, 0.0);
        let bad_rt = SlotDecision {
            purchase_rt: Energy::from_mwh(f64::NAN),
            serve_fraction: 0.0,
        };
        assert!(matches!(
            step(&params, &inp, &bad_rt, &mut battery, &mut queue),
            Err(SimError::InvalidDecision {
                what: "purchase_rt",
                ..
            })
        ));
        let bad_gamma = SlotDecision {
            purchase_rt: Energy::ZERO,
            serve_fraction: f64::NAN,
        };
        assert!(matches!(
            step(&params, &inp, &bad_gamma, &mut battery, &mut queue),
            Err(SimError::InvalidDecision {
                what: "serve_fraction",
                ..
            })
        ));
        // Out-of-range gamma is clamped, not rejected.
        let clamped = SlotDecision {
            purchase_rt: Energy::ZERO,
            serve_fraction: 7.0,
        };
        assert!(step(&params, &inp, &clamped, &mut battery, &mut queue).is_ok());
    }

    #[test]
    fn idle_slot_has_no_battery_cost() {
        let (params, mut battery, mut queue) = setup();
        let inp = inputs(0.5, 0.0, 0.0, 0.5); // exactly balanced
        let d = SlotDecision::default();
        let out = step(&params, &inp, &d, &mut battery, &mut queue).unwrap();
        assert!(!out.battery_op);
        assert_eq!(out.cost.battery, Money::ZERO);
        assert_eq!(out.charge, Energy::ZERO);
        assert_eq!(out.discharge, Energy::ZERO);
    }
}
