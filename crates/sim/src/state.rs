//! Serializable mid-run state: everything a checkpoint must carry to put
//! an [`EngineRun`](crate::EngineRun) back exactly where it was.
//!
//! The stepping API (`Engine::begin` / `step_frame` / `finish`) made runs
//! *pausable*; these records make them *portable*. A streaming control
//! service snapshots [`EngineRunState`] (plus each controller's
//! [`ControllerState`]) to disk between frames, and a restarted process
//! rebuilds the identical run with
//! [`Engine::resume`](crate::Engine::resume) — the continuation is
//! byte-for-byte the run that would have happened without the restart
//! (`crates/serve/tests/resume_equivalence.rs` pins this for every
//! builtin scenario pack).
//!
//! All records have public fields and serde derives; they are *data*, not
//! handles — validation happens at restore time, never at construction.

use dpss_units::Energy;
use serde::{Deserialize, Serialize};

use crate::{RunReport, SlotOutcome};

/// A [`Battery`](crate::Battery)'s full mutable state (level plus the
/// wear/audit counters the final report needs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryState {
    /// Current stored energy `b(τ)`.
    pub level: Energy,
    /// Operating slots so far (`Σ n(τ)`).
    pub operations: u64,
    /// Total grid-side energy ever charged.
    pub total_charged: Energy,
    /// Total load-side energy ever discharged.
    pub total_discharged: Energy,
    /// Lowest level observed so far.
    pub min_seen: Energy,
    /// Highest level observed so far.
    pub max_seen: Energy,
}

/// A [`DelayLedger`](crate::DelayLedger)'s full state: the FIFO of
/// still-pending arrivals plus the served-delay accumulators.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LedgerState {
    /// Pending batches front-to-back as `(arrival_slot, mwh)`; arrival
    /// slots are non-decreasing (FIFO order).
    pub pending: Vec<(usize, f64)>,
    /// Σ served MWh × delay-in-slots.
    pub weighted_delay_mwh_slots: f64,
    /// Total MWh served through the ledger.
    pub served_mwh: f64,
    /// Worst delay of any served energy, in slots.
    pub max_delay: usize,
}

/// A [`DemandQueue`](crate::DemandQueue)'s full state (backlog, high-water
/// mark and the embedded delay ledger).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueState {
    /// Current backlog `Q(τ)`.
    pub backlog: Energy,
    /// Largest backlog observed so far.
    pub max_backlog: Energy,
    /// The delay ledger's state.
    pub ledger: LedgerState,
}

/// Everything an [`EngineRun`](crate::EngineRun) accumulates between
/// frames: plant state plus the partial report. Captured with
/// [`EngineRun::state`](crate::EngineRun::state), reinstated with
/// [`Engine::resume`](crate::Engine::resume) on an engine built from the
/// *same* parameters and traces (the engine itself is immutable
/// configuration and is deliberately not part of this record — the
/// checkpoint layer serializes it separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineRunState {
    /// Coarse frames completed (also the next frame to step).
    pub next_frame: usize,
    /// Per-slot long-term allocation of the most recent frame decision.
    pub lt_alloc: Energy,
    /// Battery state.
    pub battery: BatteryState,
    /// Demand-queue state.
    pub queue: QueueState,
    /// Partially aggregated report.
    pub report: RunReport,
    /// Per-slot outcomes recorded so far; present iff the engine has slot
    /// recording enabled.
    pub recorded: Option<Vec<SlotOutcome>>,
}

/// A controller's internal state as a generic property bag: named scalars,
/// named vectors and one opaque string payload (controllers with
/// structured internals — e.g. a serialized warm-start basis — stash JSON
/// there). The shape is deliberately schema-free so the `Controller`
/// trait stays object-safe and new controllers need no wire changes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerState {
    /// Named scalar state, in insertion order.
    pub scalars: Vec<(String, f64)>,
    /// Named vector state, in insertion order.
    pub vectors: Vec<(String, Vec<f64>)>,
    /// Opaque controller-defined payload (conventionally JSON).
    pub payload: Option<String>,
}

impl ControllerState {
    /// A state with nothing in it (what stateless controllers save).
    #[must_use]
    pub fn empty() -> Self {
        ControllerState::default()
    }

    /// Whether the state carries nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scalars.is_empty() && self.vectors.is_empty() && self.payload.is_none()
    }

    /// Records a named scalar (replacing any previous value of `name`).
    pub fn set_scalar(&mut self, name: &str, value: f64) {
        if let Some(slot) = self.scalars.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.scalars.push((name.to_owned(), value));
        }
    }

    /// Looks up a named scalar.
    #[must_use]
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Records a named vector (replacing any previous value of `name`).
    pub fn set_vector(&mut self, name: &str, value: Vec<f64>) {
        if let Some(slot) = self.vectors.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.vectors.push((name.to_owned(), value));
        }
    }

    /// Looks up a named vector.
    #[must_use]
    pub fn vector(&self, name: &str) -> Option<&[f64]> {
        self.vectors
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_state_bag_semantics() {
        let mut s = ControllerState::empty();
        assert!(s.is_empty());
        s.set_scalar("y", 1.5);
        s.set_scalar("y", 2.5);
        s.set_vector("plan", vec![1.0, 2.0]);
        assert!(!s.is_empty());
        assert_eq!(s.scalar("y"), Some(2.5));
        assert_eq!(s.scalar("missing"), None);
        assert_eq!(s.vector("plan"), Some(&[1.0, 2.0][..]));
        assert_eq!(s.scalars.len(), 1, "set_scalar replaces, not appends");
    }

    #[test]
    fn controller_state_roundtrips_through_json() {
        let mut s = ControllerState::empty();
        s.set_scalar("y", 0.25);
        s.set_vector("plan_grt", vec![0.0, 1.0, 2.0]);
        s.payload = Some("{\"basis\":[1,2]}".to_owned());
        let json = serde_json::to_string(&s).unwrap();
        let back: ControllerState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
