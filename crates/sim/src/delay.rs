use std::collections::VecDeque;

use dpss_units::Energy;

/// Exact FIFO ledger of delay-tolerant demand: tracks when each MWh arrived
/// and when it was served, yielding the realized average and worst-case
/// service delay (the paper's Fig. 6(b)/(d) metric and the Theorem 2(4)
/// `λmax` audit).
///
/// Energy is fluid: arrivals and services are fractional and the ledger
/// splits batches as needed. Delay is measured in *fine slots*: energy that
/// arrives at slot `a` and is served at slot `s` waited `s − a` slots
/// (same-slot service is zero delay).
///
/// # Examples
///
/// ```
/// use dpss_sim::DelayLedger;
/// use dpss_units::Energy;
///
/// let mut ledger = DelayLedger::new();
/// ledger.arrive(0, Energy::from_mwh(2.0));
/// ledger.serve(3, Energy::from_mwh(2.0));
/// assert_eq!(ledger.average_delay_slots(), 3.0);
/// assert_eq!(ledger.max_delay_slots(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DelayLedger {
    pending: VecDeque<(usize, f64)>,
    weighted_delay_mwh_slots: f64,
    served_mwh: f64,
    max_delay: usize,
}

impl DelayLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        DelayLedger::default()
    }

    /// Records `amount` of demand arriving at `slot`.
    ///
    /// Non-positive amounts are ignored.
    pub fn arrive(&mut self, slot: usize, amount: Energy) {
        let mwh = amount.mwh();
        if mwh <= 0.0 {
            return;
        }
        // Merge with the tail if it has the same arrival slot (keeps the
        // deque short when arrivals are recorded piecewise).
        if let Some(back) = self.pending.back_mut() {
            if back.0 == slot {
                back.1 += mwh;
                return;
            }
        }
        self.pending.push_back((slot, mwh));
    }

    /// Serves up to `amount` in FIFO order at `slot`, returning the energy
    /// actually drained (less than `amount` if the ledger runs empty).
    pub fn serve(&mut self, slot: usize, amount: Energy) -> Energy {
        let mut remaining = amount.mwh().max(0.0);
        let mut drained = 0.0;
        while remaining > 1e-12 {
            let Some(front) = self.pending.front_mut() else {
                break;
            };
            let take = front.1.min(remaining);
            let delay = slot.saturating_sub(front.0);
            self.weighted_delay_mwh_slots += take * delay as f64;
            self.served_mwh += take;
            self.max_delay = self.max_delay.max(delay);
            front.1 -= take;
            remaining -= take;
            drained += take;
            if front.1 <= 1e-12 {
                self.pending.pop_front();
            }
        }
        Energy::from_mwh(drained)
    }

    /// Energy-weighted average delay of all *served* demand, in slots.
    /// Zero when nothing has been served yet.
    #[must_use]
    pub fn average_delay_slots(&self) -> f64 {
        if self.served_mwh <= 0.0 {
            0.0
        } else {
            self.weighted_delay_mwh_slots / self.served_mwh
        }
    }

    /// Worst delay of any served energy, in slots.
    #[must_use]
    pub fn max_delay_slots(&self) -> usize {
        self.max_delay
    }

    /// Total energy served through the ledger.
    #[must_use]
    pub fn served(&self) -> Energy {
        Energy::from_mwh(self.served_mwh)
    }

    /// Energy still waiting.
    #[must_use]
    pub fn unserved(&self) -> Energy {
        Energy::from_mwh(self.pending.iter().map(|(_, m)| m).sum())
    }

    /// Age (in slots, relative to `now`) of the oldest pending energy, or
    /// `None` when the ledger is empty. Useful for worst-case-delay audits
    /// that must include still-queued demand.
    #[must_use]
    pub fn oldest_pending_age(&self, now: usize) -> Option<usize> {
        self.pending.front().map(|(a, _)| now.saturating_sub(*a))
    }

    /// Captures the ledger's full state for checkpointing.
    #[must_use]
    pub fn state(&self) -> crate::LedgerState {
        crate::LedgerState {
            pending: self.pending.iter().copied().collect(),
            weighted_delay_mwh_slots: self.weighted_delay_mwh_slots,
            served_mwh: self.served_mwh,
            max_delay: self.max_delay,
        }
    }

    /// Rebuilds a ledger mid-run from a checkpointed state.
    ///
    /// # Errors
    ///
    /// [`SimError`](crate::SimError)`::InvalidState` if a pending amount
    /// is not finite and positive, arrival slots are not FIFO-ordered
    /// (non-decreasing), or the served-delay accumulators are not finite
    /// and non-negative.
    pub fn from_state(state: &crate::LedgerState) -> Result<Self, crate::SimError> {
        let mut prev_slot = 0usize;
        for &(slot, mwh) in &state.pending {
            if !mwh.is_finite() || mwh <= 0.0 {
                return Err(crate::SimError::InvalidState {
                    what: "ledger pending amounts must be finite and positive",
                });
            }
            if slot < prev_slot {
                return Err(crate::SimError::InvalidState {
                    what: "ledger pending arrivals must be in FIFO order",
                });
            }
            prev_slot = slot;
        }
        if !state.weighted_delay_mwh_slots.is_finite()
            || state.weighted_delay_mwh_slots < 0.0
            || !state.served_mwh.is_finite()
            || state.served_mwh < 0.0
        {
            return Err(crate::SimError::InvalidState {
                what: "ledger served-delay accumulators must be finite and non-negative",
            });
        }
        Ok(DelayLedger {
            pending: state.pending.iter().copied().collect(),
            weighted_delay_mwh_slots: state.weighted_delay_mwh_slots,
            served_mwh: state.served_mwh,
            max_delay: state.max_delay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mwh(x: f64) -> Energy {
        Energy::from_mwh(x)
    }

    #[test]
    fn empty_ledger_reports_zeroes() {
        let l = DelayLedger::new();
        assert_eq!(l.average_delay_slots(), 0.0);
        assert_eq!(l.max_delay_slots(), 0);
        assert_eq!(l.served(), Energy::ZERO);
        assert_eq!(l.unserved(), Energy::ZERO);
        assert_eq!(l.oldest_pending_age(10), None);
    }

    #[test]
    fn same_slot_service_is_zero_delay() {
        let mut l = DelayLedger::new();
        l.arrive(5, mwh(1.0));
        let got = l.serve(5, mwh(1.0));
        assert_eq!(got, mwh(1.0));
        assert_eq!(l.average_delay_slots(), 0.0);
    }

    #[test]
    fn fifo_order_and_weighted_average() {
        let mut l = DelayLedger::new();
        l.arrive(0, mwh(1.0));
        l.arrive(2, mwh(3.0));
        // Serve 2 MWh at slot 4: 1 MWh waited 4 slots, 1 MWh waited 2.
        l.serve(4, mwh(2.0));
        assert!((l.average_delay_slots() - 3.0).abs() < 1e-12);
        assert_eq!(l.max_delay_slots(), 4);
        // 2 MWh of the slot-2 batch remains.
        assert_eq!(l.unserved(), mwh(2.0));
        assert_eq!(l.oldest_pending_age(10), Some(8));
    }

    #[test]
    fn partial_service_returns_actual_drain() {
        let mut l = DelayLedger::new();
        l.arrive(0, mwh(0.5));
        let got = l.serve(1, mwh(2.0));
        assert_eq!(got, mwh(0.5));
        assert_eq!(l.unserved(), Energy::ZERO);
    }

    #[test]
    fn arrivals_merge_within_a_slot() {
        let mut l = DelayLedger::new();
        l.arrive(3, mwh(0.25));
        l.arrive(3, mwh(0.25));
        l.arrive(4, mwh(0.1));
        assert_eq!(l.unserved(), mwh(0.6));
        l.serve(3, mwh(0.5));
        assert_eq!(l.average_delay_slots(), 0.0);
        assert_eq!(l.unserved(), mwh(0.1));
    }

    #[test]
    fn negative_and_zero_amounts_ignored() {
        let mut l = DelayLedger::new();
        l.arrive(0, mwh(0.0));
        l.arrive(0, mwh(-1.0));
        assert_eq!(l.unserved(), Energy::ZERO);
        assert_eq!(l.serve(1, mwh(-2.0)), Energy::ZERO);
    }

    #[test]
    fn long_run_conservation() {
        // Energy in = energy served + unserved, across interleavings.
        let mut l = DelayLedger::new();
        let mut arrived = 0.0;
        for slot in 0..100 {
            let a = 0.1 + (slot % 7) as f64 * 0.05;
            l.arrive(slot, mwh(a));
            arrived += a;
            if slot % 3 == 0 {
                l.serve(slot, mwh(0.2));
            }
        }
        let total = l.served().mwh() + l.unserved().mwh();
        assert!((total - arrived).abs() < 1e-9);
        assert!(l.max_delay_slots() > 0);
    }
}
