use dpss_units::{Energy, Money};
use serde::{Deserialize, Serialize};

use crate::SimError;

/// Physical parameters of the UPS battery (paper §II-A3/§II-B4/§II-B5).
///
/// Fields are public — this is a passive parameter record — but consistency
/// is enforced when a [`Battery`] is constructed from it.
///
/// # Examples
///
/// ```
/// use dpss_sim::BatteryParams;
///
/// // The paper's 15-minutes-of-peak configuration.
/// let p = BatteryParams::icdcs13(15.0);
/// assert_eq!(p.capacity.mwh(), 0.5);
/// assert_eq!(p.charge_efficiency, 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryParams {
    /// Maximum stored energy `Bmax`.
    pub capacity: Energy,
    /// Reliability floor `Bmin`: the level reserved for outage ride-through;
    /// normal operation never dips below it (Eq. (7)).
    pub min_level: Energy,
    /// Maximum grid-side energy accepted per slot, `Bcmax` (Eq. (8)).
    pub max_charge: Energy,
    /// Maximum load-side energy delivered per slot, `Bdmax` (Eq. (8)).
    pub max_discharge: Energy,
    /// Charge efficiency `ηc ∈ (0, 1]`: storing `brc` raises the level by
    /// `ηc·brc` (Eq. (3)).
    pub charge_efficiency: f64,
    /// Discharge drain factor `ηd ≥ 1`: delivering `bdc` lowers the level
    /// by `ηd·bdc` (Eq. (3)).
    pub discharge_efficiency: f64,
    /// Wear cost per charging or discharging slot, `Cb = Cbuy/Ccycle`.
    pub op_cost: Money,
    /// Optional cap `Nmax` on the number of operating slots over the
    /// horizon (Eq. (9)). The paper prices wear through `Cb` and keeps the
    /// cycle constraint loose for a one-month run, so the default is
    /// `None`; set it to study hard lifetime budgets.
    pub cycle_budget: Option<u64>,
    /// Level at the start of the horizon.
    pub initial_level: Energy,
}

impl BatteryParams {
    /// The paper's §VI-A battery scaled to `bmax_minutes` of peak demand
    /// (`Pgrid = 2 MW`): `Bmax = 2 MW × minutes`, `Bmin` ≈ one minute of
    /// peak, `Bcmax = Bdmax = 0.5 MWh/slot`, `ηc = 0.8`, `ηd = 1.25`,
    /// `Cb = $0.1`.
    ///
    /// `bmax_minutes = 0` yields a no-battery configuration (the paper's
    /// "NB" case in Fig. 7).
    #[must_use]
    pub fn icdcs13(bmax_minutes: f64) -> Self {
        let peak_mw = 2.0;
        let capacity = Energy::from_mwh(peak_mw * bmax_minutes / 60.0);
        let min_level = if bmax_minutes > 0.0 {
            Energy::from_mwh(peak_mw * 1.0 / 60.0).min(capacity * 0.5)
        } else {
            Energy::ZERO
        };
        BatteryParams {
            capacity,
            min_level,
            max_charge: Energy::from_mwh(0.5),
            max_discharge: Energy::from_mwh(0.5),
            charge_efficiency: 0.8,
            discharge_efficiency: 1.25,
            op_cost: Money::from_dollars(0.1),
            cycle_budget: None,
            initial_level: min_level,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidParameter`] describing the first violated rule.
    pub fn validate(&self) -> Result<(), SimError> {
        let finite_nonneg = |e: Energy| e.is_finite() && e.mwh() >= 0.0;
        if !finite_nonneg(self.capacity) {
            return Err(SimError::InvalidParameter {
                what: "capacity",
                requirement: "must be finite and non-negative",
            });
        }
        if !finite_nonneg(self.min_level) || self.min_level > self.capacity {
            return Err(SimError::InvalidParameter {
                what: "min_level",
                requirement: "must be in [0, capacity]",
            });
        }
        if !finite_nonneg(self.max_charge) || !finite_nonneg(self.max_discharge) {
            return Err(SimError::InvalidParameter {
                what: "rate limits",
                requirement: "must be finite and non-negative",
            });
        }
        if !(self.charge_efficiency > 0.0 && self.charge_efficiency <= 1.0) {
            return Err(SimError::InvalidParameter {
                what: "charge_efficiency",
                requirement: "must be in (0, 1]",
            });
        }
        if !(self.discharge_efficiency >= 1.0 && self.discharge_efficiency.is_finite()) {
            return Err(SimError::InvalidParameter {
                what: "discharge_efficiency",
                requirement: "must be finite and at least 1",
            });
        }
        if !(self.op_cost.is_finite() && self.op_cost.dollars() >= 0.0) {
            return Err(SimError::InvalidParameter {
                what: "op_cost",
                requirement: "must be finite and non-negative",
            });
        }
        if !self.initial_level.is_finite()
            || self.initial_level < self.min_level
            || self.initial_level > self.capacity
        {
            return Err(SimError::InvalidParameter {
                what: "initial_level",
                requirement: "must be in [min_level, capacity]",
            });
        }
        Ok(())
    }
}

/// The stateful UPS battery (Eq. (3) dynamics plus Eqs. (7)–(9) limits).
///
/// Amounts are *grid-side* for charging (`brc`, what the circuit injects)
/// and *load-side* for discharging (`bdc`, what the load receives); the
/// efficiency factors are applied internally. A slot performs at most one
/// of charge/discharge (the plant enforces `brc(τ)·bdc(τ) ≡ 0`).
///
/// # Examples
///
/// ```
/// use dpss_sim::{Battery, BatteryParams};
/// use dpss_units::Energy;
///
/// # fn main() -> Result<(), dpss_sim::SimError> {
/// let mut b = Battery::new(BatteryParams::icdcs13(15.0))?;
/// let stored_before = b.level();
/// let accepted = b.headroom().min(Energy::from_mwh(0.2));
/// b.charge(accepted)?;
/// assert!(b.level() > stored_before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    params: BatteryParams,
    level: Energy,
    operations: u64,
    total_charged: Energy,
    total_discharged: Energy,
    min_seen: Energy,
    max_seen: Energy,
}

impl Battery {
    /// Creates a battery at its configured initial level.
    ///
    /// # Errors
    ///
    /// Propagates [`BatteryParams::validate`].
    pub fn new(params: BatteryParams) -> Result<Self, SimError> {
        params.validate()?;
        Ok(Battery {
            params,
            level: params.initial_level,
            operations: 0,
            total_charged: Energy::ZERO,
            total_discharged: Energy::ZERO,
            min_seen: params.initial_level,
            max_seen: params.initial_level,
        })
    }

    /// Current stored energy `b(τ)`.
    #[must_use]
    pub fn level(&self) -> Energy {
        self.level
    }

    /// The parameter record this battery was built from.
    #[must_use]
    pub fn params(&self) -> &BatteryParams {
        &self.params
    }

    /// Whether the cycle budget `Nmax` is exhausted.
    #[must_use]
    pub fn cycle_budget_exhausted(&self) -> bool {
        self.params
            .cycle_budget
            .is_some_and(|n| self.operations >= n)
    }

    /// Remaining operating slots, if a cycle budget is configured.
    #[must_use]
    pub fn operations_remaining(&self) -> Option<u64> {
        self.params
            .cycle_budget
            .map(|n| n.saturating_sub(self.operations))
    }

    /// Maximum grid-side charge `brc` acceptable *this slot*: the rate cap,
    /// the capacity headroom `(Bmax − b)/ηc` and the cycle budget combined.
    #[must_use]
    pub fn headroom(&self) -> Energy {
        if self.cycle_budget_exhausted() {
            return Energy::ZERO;
        }
        let space = (self.params.capacity - self.level).positive_part();
        self.params
            .max_charge
            .min(space / self.params.charge_efficiency)
    }

    /// Maximum load-side discharge `bdc` deliverable *this slot*: the rate
    /// cap, the reserve window `(b − Bmin)/ηd` and the cycle budget
    /// combined.
    #[must_use]
    pub fn available(&self) -> Energy {
        if self.cycle_budget_exhausted() {
            return Energy::ZERO;
        }
        let above_floor = (self.level - self.params.min_level).positive_part();
        self.params
            .max_discharge
            .min(above_floor / self.params.discharge_efficiency)
    }

    /// Stores `brc` (grid-side); the level rises by `ηc·brc`.
    ///
    /// A zero amount is a no-op and does not count as an operation.
    ///
    /// # Errors
    ///
    /// [`SimError::BatteryLimit`] if `brc` exceeds [`Battery::headroom`]
    /// (beyond a small numerical tolerance) or is not finite/non-negative.
    pub fn charge(&mut self, brc: Energy) -> Result<(), SimError> {
        if !brc.is_finite() || brc.mwh() < 0.0 {
            return Err(SimError::BatteryLimit {
                operation: "charge",
                requested: brc.mwh(),
                limit: self.headroom().mwh(),
            });
        }
        if brc <= Energy::ZERO {
            return Ok(());
        }
        let limit = self.headroom();
        if brc.mwh() > limit.mwh() + 1e-9 {
            return Err(SimError::BatteryLimit {
                operation: "charge",
                requested: brc.mwh(),
                limit: limit.mwh(),
            });
        }
        self.level = (self.level + brc * self.params.charge_efficiency).min(self.params.capacity);
        self.operations += 1;
        self.total_charged += brc;
        self.max_seen = self.max_seen.max(self.level);
        Ok(())
    }

    /// Delivers `bdc` (load-side); the level falls by `ηd·bdc`.
    ///
    /// A zero amount is a no-op and does not count as an operation.
    ///
    /// # Errors
    ///
    /// [`SimError::BatteryLimit`] if `bdc` exceeds [`Battery::available`]
    /// (beyond a small numerical tolerance) or is not finite/non-negative.
    pub fn discharge(&mut self, bdc: Energy) -> Result<(), SimError> {
        if !bdc.is_finite() || bdc.mwh() < 0.0 {
            return Err(SimError::BatteryLimit {
                operation: "discharge",
                requested: bdc.mwh(),
                limit: self.available().mwh(),
            });
        }
        if bdc <= Energy::ZERO {
            return Ok(());
        }
        let limit = self.available();
        if bdc.mwh() > limit.mwh() + 1e-9 {
            return Err(SimError::BatteryLimit {
                operation: "discharge",
                requested: bdc.mwh(),
                limit: limit.mwh(),
            });
        }
        self.level =
            (self.level - bdc * self.params.discharge_efficiency).max(self.params.min_level);
        self.operations += 1;
        self.total_discharged += bdc;
        self.min_seen = self.min_seen.min(self.level);
        Ok(())
    }

    /// Number of operating slots so far (`Σ n(τ)`).
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Total wear cost so far (`Σ n(τ)·Cb`).
    #[must_use]
    pub fn wear_cost(&self) -> Money {
        self.params.op_cost * self.operations as f64
    }

    /// Total grid-side energy ever charged.
    #[must_use]
    pub fn total_charged(&self) -> Energy {
        self.total_charged
    }

    /// Total load-side energy ever discharged.
    #[must_use]
    pub fn total_discharged(&self) -> Energy {
        self.total_discharged
    }

    /// Lowest level observed over the run (availability audit, Thm 2(2)).
    #[must_use]
    pub fn min_level_seen(&self) -> Energy {
        self.min_seen
    }

    /// Highest level observed over the run.
    #[must_use]
    pub fn max_level_seen(&self) -> Energy {
        self.max_seen
    }

    /// Captures the battery's full mutable state for checkpointing.
    #[must_use]
    pub fn state(&self) -> crate::BatteryState {
        crate::BatteryState {
            level: self.level,
            operations: self.operations,
            total_charged: self.total_charged,
            total_discharged: self.total_discharged,
            min_seen: self.min_seen,
            max_seen: self.max_seen,
        }
    }

    /// Rebuilds a battery mid-run from a checkpointed state. The restored
    /// battery behaves exactly like the one that was captured.
    ///
    /// # Errors
    ///
    /// Propagates [`BatteryParams::validate`];
    /// [`SimError::InvalidState`](crate::SimError::InvalidState) if the
    /// state's level lies outside the `[Bmin, Bmax]` window, its counters
    /// are not finite and non-negative, or the observed-level window is
    /// inconsistent.
    pub fn from_state(
        params: BatteryParams,
        state: &crate::BatteryState,
    ) -> Result<Self, SimError> {
        params.validate()?;
        let tol = Energy::from_mwh(1e-9);
        let finite_nonneg = |e: Energy| e.is_finite() && e.mwh() >= 0.0;
        if !state.level.is_finite()
            || state.level < params.min_level - tol
            || state.level > params.capacity + tol
        {
            return Err(SimError::InvalidState {
                what: "battery level outside the [min_level, capacity] window",
            });
        }
        if !finite_nonneg(state.total_charged) || !finite_nonneg(state.total_discharged) {
            return Err(SimError::InvalidState {
                what: "battery throughput totals must be finite and non-negative",
            });
        }
        if !state.min_seen.is_finite()
            || !state.max_seen.is_finite()
            || state.min_seen > state.max_seen + tol
        {
            return Err(SimError::InvalidState {
                what: "battery observed-level window is inconsistent",
            });
        }
        Ok(Battery {
            params,
            level: state.level,
            operations: state.operations,
            total_charged: state.total_charged,
            total_discharged: state.total_discharged,
            min_seen: state.min_seen,
            max_seen: state.max_seen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BatteryParams {
        BatteryParams::icdcs13(15.0)
    }

    #[test]
    fn icdcs13_parameterization() {
        let p = params();
        assert_eq!(p.capacity, Energy::from_mwh(0.5));
        assert!((p.min_level.mwh() - 2.0 / 60.0).abs() < 1e-12);
        assert_eq!(p.max_charge, Energy::from_mwh(0.5));
        assert_eq!(p.discharge_efficiency, 1.25);
        p.validate().unwrap();
        // Zero-minute battery is valid and empty.
        let none = BatteryParams::icdcs13(0.0);
        none.validate().unwrap();
        assert_eq!(none.capacity, Energy::ZERO);
        assert_eq!(none.min_level, Energy::ZERO);
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        let mut p = params();
        p.min_level = Energy::from_mwh(1.0); // above capacity
        assert!(p.validate().is_err());

        let mut p = params();
        p.charge_efficiency = 0.0;
        assert!(p.validate().is_err());

        let mut p = params();
        p.discharge_efficiency = 0.9;
        assert!(p.validate().is_err());

        let mut p = params();
        p.initial_level = Energy::from_mwh(0.01); // below Bmin
        assert!(p.validate().is_err());

        let mut p = params();
        p.capacity = Energy::from_mwh(f64::NAN);
        assert!(p.validate().is_err());

        let mut p = params();
        p.op_cost = Money::from_dollars(-1.0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn charge_applies_efficiency() {
        let mut b = Battery::new(params()).unwrap();
        let before = b.level();
        b.charge(Energy::from_mwh(0.1)).unwrap();
        assert!((b.level().mwh() - (before.mwh() + 0.08)).abs() < 1e-12);
        assert_eq!(b.operations(), 1);
        assert_eq!(b.total_charged(), Energy::from_mwh(0.1));
    }

    #[test]
    fn discharge_applies_efficiency_and_floor() {
        let mut p = params();
        p.initial_level = Energy::from_mwh(0.4);
        let mut b = Battery::new(p).unwrap();
        b.discharge(Energy::from_mwh(0.1)).unwrap();
        assert!((b.level().mwh() - 0.275).abs() < 1e-12); // 0.4 − 1.25·0.1
                                                          // Available is limited by the floor: (0.275 − 0.0333)/1.25.
        let avail = b.available().mwh();
        assert!((avail - (0.275 - 2.0 / 60.0) / 1.25).abs() < 1e-9);
        // Cannot discharge more than available.
        let too_much = Energy::from_mwh(avail + 0.01);
        assert!(matches!(
            b.discharge(too_much),
            Err(SimError::BatteryLimit { .. })
        ));
    }

    #[test]
    fn headroom_respects_capacity_and_rate() {
        let mut p = params();
        p.initial_level = Energy::from_mwh(0.46);
        let b = Battery::new(p).unwrap();
        // Space is 0.04; headroom = 0.04/0.8 = 0.05 < rate cap 0.5.
        assert!((b.headroom().mwh() - 0.05).abs() < 1e-12);
        // Full battery accepts nothing.
        let mut p = params();
        p.initial_level = p.capacity;
        let b = Battery::new(p).unwrap();
        assert_eq!(b.headroom(), Energy::ZERO);
    }

    #[test]
    fn zero_amounts_are_free_noops() {
        let mut b = Battery::new(params()).unwrap();
        b.charge(Energy::ZERO).unwrap();
        b.discharge(Energy::ZERO).unwrap();
        assert_eq!(b.operations(), 0);
        assert_eq!(b.wear_cost(), Money::ZERO);
    }

    #[test]
    fn cycle_budget_locks_battery_out() {
        let mut p = params();
        p.cycle_budget = Some(2);
        let mut b = Battery::new(p).unwrap();
        assert_eq!(b.operations_remaining(), Some(2));
        b.charge(Energy::from_mwh(0.1)).unwrap();
        b.charge(Energy::from_mwh(0.1)).unwrap();
        assert!(b.cycle_budget_exhausted());
        assert_eq!(b.operations_remaining(), Some(0));
        assert_eq!(b.headroom(), Energy::ZERO);
        assert_eq!(b.available(), Energy::ZERO);
        assert!(b.charge(Energy::from_mwh(0.1)).is_err());
    }

    #[test]
    fn level_never_leaves_window() {
        let mut b = Battery::new(params()).unwrap();
        for i in 0..200 {
            if i % 2 == 0 {
                let amt = b.headroom() * 0.9;
                b.charge(amt).unwrap();
            } else {
                let amt = b.available() * 0.9;
                b.discharge(amt).unwrap();
            }
            assert!(b.level() >= b.params().min_level - Energy::from_mwh(1e-12));
            assert!(b.level() <= b.params().capacity + Energy::from_mwh(1e-12));
        }
        assert!(b.min_level_seen() >= b.params().min_level - Energy::from_mwh(1e-12));
        assert!(b.max_level_seen() <= b.params().capacity + Energy::from_mwh(1e-12));
        assert_eq!(b.operations(), 200);
        assert!((b.wear_cost().dollars() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nan_and_negative_amounts() {
        let mut b = Battery::new(params()).unwrap();
        assert!(b.charge(Energy::from_mwh(f64::NAN)).is_err());
        assert!(b.charge(Energy::from_mwh(-0.1)).is_err());
        assert!(b.discharge(Energy::from_mwh(f64::NAN)).is_err());
        assert!(b.discharge(Energy::from_mwh(-0.1)).is_err());
    }
}
