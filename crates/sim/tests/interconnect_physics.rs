//! Physics property suite for the interconnect settlement — the
//! conformance net pinning the multi-site control surface:
//!
//! * **fleet energy conservation** — over random topologies, caps and
//!   losses: total delivered ≤ total sent, and with a uniform line loss
//!   the gap is the loss *exactly* (`delivered = sent × (1 − loss)`);
//! * **loss monotonicity** — a higher line loss never increases the
//!   fleet's `transfer_savings`;
//! * **decoupling identity** — `cap = 0` (or a severed topology) makes
//!   the settlement bit-exactly the decoupled per-site sum;
//! * **planned ≤ post-hoc** — the `FleetPlanner` LP settles at least as
//!   well as the greedy fold on random topologies, and — with zero loss
//!   and zero wheeling — on every built-in scenario-pack variant at
//!   seed 42 (the acceptance property of the planned mode);
//! * **coordinated ≤ planned ≤ post-hoc** — on the contention scenario
//!   (price-spike pack, 3 sites, lossy ring) the frame-synchronous
//!   dispatch loop's buy-to-export directives *measurably* beat the
//!   planned post-hoc settlement (documented dollar margin, not just
//!   `≤ +1e-9`);
//! * **cap-schedule identity** — an all-equal per-frame cap schedule
//!   settles bit-identically to the equivalent static cap, in both
//!   settlement modes.

use dpss_core::{FleetPlanner, SmartDpss, SmartDpssConfig};
use dpss_sim::{
    Controller, Engine, FrameDecision, FrameObservation, Interconnect, MultiSiteEngine,
    MultiSiteReport, RunReport, SimParams, SlotDecision, SlotObservation, SystemView,
};
use dpss_traces::{Scenario, ScenarioPack};
use dpss_units::{Energy, Money, Price, SlotClock};
use proptest::prelude::*;

/// Serves everything eagerly from the real-time market — cheap, and it
/// both curtails (renewable surplus) and buys real-time energy, so the
/// settlement always has donors and recipients to work with.
struct Eager;
impl Controller for Eager {
    fn name(&self) -> &str {
        "eager"
    }
    fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
        FrameDecision::default()
    }
    fn plan_slot(&mut self, obs: &SlotObservation, view: &SystemView) -> SlotDecision {
        SlotDecision {
            purchase_rt: (obs.demand_ds + view.queue_backlog + obs.demand_dt - obs.renewable)
                .positive_part(),
            serve_fraction: 1.0,
        }
    }
}

/// A small fleet (2 frames × 12 slots) with per-site seeds, plus its
/// per-site reports. The reports depend only on the sites, never on the
/// topology, so one run settles under many interconnects.
fn fleet_reports(sites: usize, seed: u64) -> (MultiSiteEngine, Vec<RunReport>) {
    let clock = SlotClock::new(2, 12, 1.0).unwrap();
    let engines: Vec<Engine> = (0..sites)
        .map(|s| {
            let traces = Scenario::icdcs13()
                .generate(&clock, seed ^ (0x9E37 * (s as u64 + 1)))
                .unwrap();
            Engine::new(SimParams::icdcs13(), traces).unwrap()
        })
        .collect();
    let multi = MultiSiteEngine::new(engines).unwrap();
    let reports: Vec<RunReport> = multi
        .sites()
        .iter()
        .map(|s| s.run(&mut Eager).unwrap())
        .collect();
    (multi, reports)
}

fn settle(multi: &MultiSiteEngine, reports: &[RunReport], ic: Interconnect) -> MultiSiteReport {
    multi
        .clone()
        .with_interconnect(ic)
        .unwrap()
        .couple(reports.to_vec())
        .unwrap()
}

fn settle_planned(
    multi: &MultiSiteEngine,
    reports: &[RunReport],
    ic: Interconnect,
) -> MultiSiteReport {
    let coupled = multi.clone().with_interconnect(ic).unwrap();
    FleetPlanner::for_engine(&coupled)
        .couple(&coupled, reports.to_vec())
        .unwrap()
}

/// A random directed topology: per-pair caps in [0, 2.5] MWh/frame, a
/// uniform loss, a uniform wheeling price and an optional pooled cap.
fn random_topology(sites: usize) -> impl Strategy<Value = (Vec<f64>, f64, f64, Option<f64>)> {
    (
        proptest::collection::vec(0.0..2.5f64, sites * sites),
        0.0..0.9f64,
        0.0..8.0f64,
        // Values above 4 mean "no pooled cap" (the vendored proptest has
        // no Option strategy).
        0.0..8.0f64,
    )
        .prop_map(|(caps, loss, wheel, pool)| (caps, loss, wheel, (pool <= 4.0).then_some(pool)))
}

fn build_topology(
    sites: usize,
    caps: &[f64],
    loss: f64,
    wheel: f64,
    pool: Option<f64>,
) -> Interconnect {
    let mut ic = Interconnect::decoupled(sites).unwrap();
    for i in 0..sites {
        for j in 0..sites {
            if i != j {
                ic = ic
                    .with_link(i, j, Energy::from_mwh(caps[i * sites + j]))
                    .unwrap();
            }
        }
    }
    ic.with_uniform_loss(loss)
        .unwrap()
        .with_uniform_wheeling(Price::from_dollars_per_mwh(wheel))
        .unwrap()
        .with_pool_cap(pool.map(Energy::from_mwh))
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fleet energy conservation: delivered ≤ sent always, and with a
    /// uniform loss the gap is the line loss exactly.
    #[test]
    fn energy_is_conserved_up_to_line_losses(
        sites in 2usize..4,
        seed in 0u64..1_000,
        cap in 0.0..3.0f64,
        loss in 0.0..0.9f64,
    ) {
        let (multi, reports) = fleet_reports(sites, seed);
        let ic = Interconnect::uniform(sites, Energy::from_mwh(cap))
            .unwrap()
            .with_uniform_loss(loss)
            .unwrap();
        let r = settle(&multi, &reports, ic);
        prop_assert!(r.energy_delivered <= r.energy_transferred + Energy::from_mwh(1e-12));
        // Uniform loss ⇒ the sent/delivered gap is the loss *exactly*.
        prop_assert!(
            (r.energy_delivered.mwh() - r.energy_transferred.mwh() * (1.0 - loss)).abs() <= 1e-9,
            "sent {} delivered {} loss {loss}", r.energy_transferred, r.energy_delivered
        );
        // Donors can only export what they actually curtailed.
        prop_assert!(r.energy_transferred <= r.total_energy_wasted() + Energy::from_mwh(1e-9));
        // The settlement books balance by definition of the fleet row.
        prop_assert!(r.transfer_savings >= Money::ZERO);
        prop_assert_eq!(
            r.total_cost(),
            r.cost_before_transfers() - r.transfer_savings + r.wheeling_cost
        );
        // The per-link economics guard keeps settling weakly profitable.
        prop_assert!(r.total_cost() <= r.cost_before_transfers() + Money::from_dollars(1e-9));
    }

    /// Loss monotonicity: a lossier grid never saves more.
    #[test]
    fn higher_loss_never_increases_savings(
        sites in 2usize..4,
        seed in 0u64..1_000,
        cap in 0.1..3.0f64,
        loss_lo in 0.0..0.9f64,
        delta in 0.0..0.5f64,
    ) {
        let loss_hi = (loss_lo + delta).min(0.999_999);
        let (multi, reports) = fleet_reports(sites, seed);
        let base = Interconnect::uniform(sites, Energy::from_mwh(cap)).unwrap();
        let lo = settle(&multi, &reports, base.clone().with_uniform_loss(loss_lo).unwrap());
        let hi = settle(&multi, &reports, base.with_uniform_loss(loss_hi).unwrap());
        prop_assert!(
            hi.transfer_savings <= lo.transfer_savings + Money::from_dollars(1e-9),
            "loss {loss_lo} saves ${}, loss {loss_hi} saves ${}",
            lo.transfer_savings.dollars(),
            hi.transfer_savings.dollars()
        );
    }

    /// `cap = 0` ⇔ the settlement is bit-exactly the decoupled per-site
    /// sum, through every zero-capacity spelling of the topology.
    #[test]
    fn zero_capacity_is_bit_exactly_decoupled(
        sites in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let (multi, reports) = fleet_reports(sites, seed);
        let per_site_sum: Money = reports.iter().map(RunReport::total_cost).sum();
        for ic in [
            Interconnect::decoupled(sites).unwrap(),
            Interconnect::pooled(sites, Energy::ZERO).unwrap(),
            Interconnect::uniform(sites, Energy::from_mwh(2.0))
                .unwrap()
                .with_pool_cap(Some(Energy::ZERO))
                .unwrap(),
        ] {
            let r = settle(&multi, &reports, ic);
            prop_assert_eq!(r.energy_transferred, Energy::ZERO);
            prop_assert_eq!(r.transfer_savings, Money::ZERO);
            prop_assert_eq!(r.wheeling_cost, Money::ZERO);
            prop_assert_eq!(r.total_cost(), per_site_sum);
            prop_assert_eq!(r.total_cost(), r.cost_before_transfers());
        }
    }

    /// An all-equal per-frame cap schedule is the static cap: the
    /// settlement is bit-identical through every frame, in both modes.
    #[test]
    fn all_equal_cap_schedule_settles_bit_identically_to_static_cap(
        sites in 2usize..4,
        seed in 0u64..1_000,
        cap in 0.1..3.0f64,
        loss in 0.0..0.5f64,
        schedule_len in 1usize..5,
    ) {
        let (multi, reports) = fleet_reports(sites, seed);
        let static_ic = Interconnect::uniform(sites, Energy::from_mwh(cap))
            .unwrap()
            .with_uniform_loss(loss)
            .unwrap();
        let mut scheduled_ic = static_ic.clone();
        for i in 0..sites {
            for j in 0..sites {
                if i != j {
                    scheduled_ic = scheduled_ic
                        .with_cap_schedule(i, j, vec![Energy::from_mwh(cap); schedule_len])
                        .unwrap();
                }
            }
        }
        let a = settle(&multi, &reports, static_ic.clone());
        let b = settle(&multi, &reports, scheduled_ic.clone());
        prop_assert_eq!(a.energy_transferred, b.energy_transferred);
        prop_assert_eq!(a.energy_delivered, b.energy_delivered);
        prop_assert_eq!(a.transfer_savings, b.transfer_savings);
        prop_assert_eq!(a.wheeling_cost, b.wheeling_cost);
        prop_assert_eq!(a.total_cost(), b.total_cost());
        let pa = settle_planned(&multi, &reports, static_ic);
        let pb = settle_planned(&multi, &reports, scheduled_ic);
        prop_assert_eq!(pa.energy_transferred, pb.energy_transferred);
        prop_assert_eq!(pa.transfer_savings, pb.transfer_savings);
        prop_assert_eq!(pa.total_cost(), pb.total_cost());
    }

    /// The planner's LP is never worse than the greedy fold — on fully
    /// random topologies (directed caps, losses, wheeling, pool caps).
    #[test]
    fn planned_settlement_never_loses_to_post_hoc(
        sites in 2usize..4,
        seed in 0u64..1_000,
        topo in random_topology(3),
    ) {
        let (caps, loss, wheel, pool) = topo;
        let (multi, reports) = fleet_reports(sites, seed);
        let ic = build_topology(sites, &caps, loss, wheel, pool);
        let posthoc = settle(&multi, &reports, ic.clone());
        let planned = settle_planned(&multi, &reports, ic);
        // Identical per-site physics; only the settlement differs.
        prop_assert_eq!(planned.cost_before_transfers(), posthoc.cost_before_transfers());
        prop_assert!(
            planned.total_cost() <= posthoc.total_cost() + Money::from_dollars(1e-9),
            "planned ${} vs post-hoc ${}",
            planned.total_cost().dollars(),
            posthoc.total_cost().dollars()
        );
        // The planner obeys the same physics bounds.
        prop_assert!(planned.energy_delivered <= planned.energy_transferred
            + Energy::from_mwh(1e-12));
        prop_assert!(planned.energy_transferred <= planned.total_energy_wasted()
            + Energy::from_mwh(1e-9));
    }
}

/// The acceptance property of the planned mode: with zero line loss and
/// zero wheeling, the planner's fleet `total_cost` is ≤ the post-hoc
/// settlement on **every built-in pack variant at seed 42** (SmartDPSS
/// per site, two sites of the variant's shared market, pooled default
/// cap — the `dpss sweep --pack` configuration on a 3-day calendar).
#[test]
fn planned_mode_never_costs_more_than_post_hoc_on_builtin_packs() {
    let clock = SlotClock::new(3, 24, 1.0).unwrap();
    let params = SimParams::icdcs13();
    let sites = 2usize;
    for name in ScenarioPack::builtin_names() {
        let pack = ScenarioPack::builtin(name).unwrap();
        for v in 0..pack.len() {
            let engines: Vec<Engine> = (0..sites)
                .map(|s| {
                    Engine::new(params, pack.generate_site(&clock, 42, v, s).unwrap()).unwrap()
                })
                .collect();
            let multi = MultiSiteEngine::new(engines)
                .unwrap()
                .with_transfer_cap(Energy::from_mwh(2.0))
                .unwrap();
            let reports: Vec<RunReport> = multi
                .sites()
                .iter()
                .map(|site| {
                    let mut ctl = dpss_core::SmartDpss::new(
                        dpss_core::SmartDpssConfig::icdcs13(),
                        params,
                        site.truth().clock,
                    )
                    .unwrap();
                    site.run(&mut ctl).unwrap()
                })
                .collect();
            let posthoc = multi.couple(reports.clone()).unwrap();
            let planned = FleetPlanner::for_engine(&multi)
                .couple(&multi, reports)
                .unwrap();
            assert!(
                planned.total_cost() <= posthoc.total_cost() + Money::from_dollars(1e-9),
                "{name}/{}: planned ${} vs post-hoc ${}",
                pack.variant(v).unwrap().0,
                planned.total_cost().dollars(),
                posthoc.total_cost().dollars()
            );
            // Zero loss + zero wheeling: nothing is lost and nothing is
            // billed, in either mode.
            assert_eq!(planned.energy_lost(), Energy::ZERO);
            assert_eq!(planned.wheeling_cost, Money::ZERO);
            assert_eq!(posthoc.energy_lost(), Energy::ZERO);
        }
    }
}

/// Non-vacuity premise of the property tests above: the sampled fleets
/// really do curtail, buy real-time energy and settle nonzero transfers
/// (otherwise conservation/monotonicity would hold trivially).
#[test]
fn sampled_fleets_actually_exchange_energy() {
    let mut settled = 0usize;
    for seed in 0..24u64 {
        let (multi, reports) = fleet_reports(3, seed);
        let r = settle(
            &multi,
            &reports,
            Interconnect::uniform(3, Energy::from_mwh(2.0)).unwrap(),
        );
        assert!(r.total_energy_wasted() >= Energy::ZERO);
        if r.energy_transferred > Energy::ZERO {
            assert!(r.transfer_savings > Money::ZERO);
            settled += 1;
        }
    }
    assert!(
        settled >= 8,
        "only {settled}/24 sampled fleets settled energy — the property \
         suite would be near-vacuous"
    );
}

/// The acceptance property of coordinated dispatch: on the contention
/// scenario — the price-spike pack at seed 42, 3 SmartDPSS sites, a
/// lossy ring (5% line loss, $2/MWh wheeling, 2 MWh/frame pair caps) —
/// the frame-synchronous loop's buy-to-export directives beat the
/// planned post-hoc settlement *measurably* on the stressed variant
/// (persistent real-time elevation, where the causal price forecast is
/// reliable): **at least $500 of fleet cost over the month** (measured
/// ≈ $1236, ~1.7% of fleet cost, at the 0.6 default procure margin).
/// On the calmer variants the running-average forecast never clears the
/// margin, the directives stay inert, and coordinated must not lose to
/// planned anywhere. Planned ≤ post-hoc stays a theorem throughout.
#[test]
fn coordinated_dispatch_measurably_beats_planned_on_the_contention_pack() {
    /// The documented margin: how many dollars of fleet cost coordination
    /// must save on the stressed month for this suite to stay green.
    const COORDINATION_MARGIN: f64 = 500.0;

    let clock = SlotClock::icdcs13_month();
    let params = SimParams::icdcs13();
    let pack = ScenarioPack::builtin("price-spike").unwrap();
    let sites = 3usize;
    let ring = Interconnect::ring(sites, Energy::from_mwh(2.0))
        .unwrap()
        .with_uniform_loss(0.05)
        .unwrap()
        .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
        .unwrap();
    let smart_boxes = || -> Vec<Box<dyn Controller>> {
        (0..sites)
            .map(|_| {
                Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
                    as Box<dyn Controller>
            })
            .collect()
    };

    let mut stressed_gap = None;
    for v in 0..pack.len() {
        let engines: Vec<Engine> = (0..sites)
            .map(|s| Engine::new(params, pack.generate_site(&clock, 42, v, s).unwrap()).unwrap())
            .collect();
        let multi = MultiSiteEngine::new(engines)
            .unwrap()
            .with_interconnect(ring.clone())
            .unwrap();

        // Post-hoc and planned share the sites' physics; only the
        // settlement differs.
        let posthoc = multi.run(&mut smart_boxes()).unwrap();
        let planned = FleetPlanner::for_engine(&multi)
            .couple(&multi, posthoc.sites.clone())
            .unwrap();
        // Coordinated re-dispatches the sites frame-synchronously.
        let mut dispatcher = FleetPlanner::for_engine(&multi).with_coordination(true);
        let coordinated = multi.run_with(&mut smart_boxes(), &mut dispatcher).unwrap();

        let name = pack.variant(v).unwrap().0;
        // Theorem: the greedy settlement is a feasible LP point.
        assert!(
            planned.total_cost() <= posthoc.total_cost() + Money::from_dollars(1e-9),
            "{name}: planned ${} vs post-hoc ${}",
            planned.total_cost().dollars(),
            posthoc.total_cost().dollars()
        );
        // Coordination never loses to planned on any variant of the
        // contention pack at the default margin.
        assert!(
            coordinated.total_cost() <= planned.total_cost() + Money::from_dollars(1e-9),
            "{name}: coordinated ${} vs planned ${}",
            coordinated.total_cost().dollars(),
            planned.total_cost().dollars()
        );
        if name == "stressed" {
            stressed_gap =
                Some(planned.total_cost().dollars() - coordinated.total_cost().dollars());
        }
    }
    let gap = stressed_gap.expect("the pack has a stressed variant");
    assert!(
        gap >= COORDINATION_MARGIN,
        "coordinated dispatch must beat planned settlement by ≥ ${COORDINATION_MARGIN} \
         on the stressed month (measured gap: ${gap:.2})"
    );
}

/// On the legacy pooled lossless topology the greedy fold is optimal, so
/// the planner must *match* it (not just weakly beat it) — the guard
/// that the planned mode introduces no spurious drift on the published
/// post-hoc configuration.
#[test]
fn planner_matches_greedy_value_on_pooled_lossless_fleets() {
    let (multi, reports) = fleet_reports(3, 7);
    let ic = Interconnect::pooled(3, Energy::from_mwh(1.5)).unwrap();
    let posthoc = settle(&multi, &reports, ic.clone());
    let planned = settle_planned(&multi, &reports, ic);
    assert!(
        (planned.transfer_savings.dollars() - posthoc.transfer_savings.dollars()).abs() < 1e-9,
        "planned ${} vs greedy ${}",
        planned.transfer_savings.dollars(),
        posthoc.transfer_savings.dollars()
    );
}
