//! Property-based checks of the plant: for *arbitrary* (even adversarial)
//! controller decisions and random worlds, the engine must preserve the
//! physical invariants — energy balance, battery window, interconnect cap,
//! queue conservation — and never panic or emit NaN.

use dpss_sim::{
    Controller, Engine, FrameDecision, FrameObservation, SimParams, SlotDecision, SlotObservation,
    SystemView,
};
use dpss_traces::Scenario;
use dpss_units::{Energy, SlotClock};
use proptest::prelude::*;

/// A controller that plays back arbitrary fuzzed decisions.
struct Fuzzed {
    lt: Vec<f64>,
    rt: Vec<f64>,
    gamma: Vec<f64>,
    frame: usize,
    slot: usize,
}

impl Controller for Fuzzed {
    fn name(&self) -> &str {
        "fuzzed"
    }
    fn plan_frame(&mut self, _: &FrameObservation, _: &SystemView) -> FrameDecision {
        let x = self.lt[self.frame % self.lt.len()];
        self.frame += 1;
        FrameDecision {
            purchase_lt: Energy::from_mwh(x),
        }
    }
    fn plan_slot(&mut self, _: &SlotObservation, _: &SystemView) -> SlotDecision {
        let i = self.slot;
        self.slot += 1;
        SlotDecision {
            purchase_rt: Energy::from_mwh(self.rt[i % self.rt.len()]),
            serve_fraction: self.gamma[i % self.gamma.len()],
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn physics_invariants_hold_for_arbitrary_decisions(
        seed in 0u64..400,
        lt in proptest::collection::vec(0.0..100.0f64, 1..6),
        rt in proptest::collection::vec(0.0..5.0f64, 1..10),
        gamma in proptest::collection::vec(0.0..1.0f64, 1..10),
        battery_minutes in prop_oneof![Just(0.0), Just(15.0), Just(60.0)],
    ) {
        let clock = SlotClock::new(3, 24, 1.0).unwrap();
        let truth = Scenario::icdcs13().generate(&clock, seed).unwrap();
        let params = SimParams::icdcs13_with_battery(battery_minutes);
        let engine = Engine::new(params, truth.clone())
            .unwrap()
            .with_slot_recording(true);
        let mut ctl = Fuzzed { lt, rt, gamma, frame: 0, slot: 0 };
        let report = engine.run(&mut ctl).unwrap();

        // Battery window (Thm 2(2)).
        prop_assert!(report.battery_min >= params.battery.min_level - Energy::from_mwh(1e-9));
        prop_assert!(report.battery_max <= params.battery.capacity + Energy::from_mwh(1e-9));

        let mut arrivals = 0.0;
        for o in report.slot_outcomes.as_ref().unwrap() {
            // Energy balance (Eq. 4 + unserved slack).
            let lhs = o.supply_lt + o.purchase_rt + o.renewable + o.discharge;
            let rhs = o.served_ds + o.served_dt + o.charge + o.waste + o.unserved_ds;
            prop_assert!((lhs.mwh() - rhs.mwh()).abs() < 1e-6, "slot {}", o.slot.index);
            // Interconnect cap (Eq. 5).
            prop_assert!(o.grid_draw().mwh() <= 2.0 + 1e-9);
            // Exclusive battery operation.
            prop_assert!(o.charge.mwh() == 0.0 || o.discharge.mwh() == 0.0);
            // Nothing is NaN.
            prop_assert!(o.cost.total().is_finite());
            prop_assert!(o.battery_level_after.is_finite());
            arrivals += truth.demand_dt[o.slot.index].mwh();
        }
        // Queue conservation over the horizon.
        let accounted = report.served_dt.mwh() + report.final_backlog.mwh();
        prop_assert!((arrivals - accounted).abs() < 1e-6);
        // Served delay-sensitive energy never exceeds what was demanded.
        let ds_total: f64 = truth.demand_ds.iter().map(|e| e.mwh()).sum();
        prop_assert!(report.served_ds.mwh() <= ds_total + 1e-6);
    }

    #[test]
    fn delay_accounting_is_consistent(
        seed in 0u64..200,
        gamma in 0.0..1.0f64,
    ) {
        let clock = SlotClock::new(2, 24, 1.0).unwrap();
        let truth = Scenario::icdcs13().generate(&clock, seed).unwrap();
        let params = SimParams::icdcs13();
        let engine = Engine::new(params, truth).unwrap();
        let mut ctl = Fuzzed {
            lt: vec![30.0],
            rt: vec![2.0],
            gamma: vec![gamma],
            frame: 0,
            slot: 0,
        };
        let report = engine.run(&mut ctl).unwrap();
        prop_assert!(report.average_delay_slots >= 0.0);
        prop_assert!(report.max_delay_slots as f64 >= report.average_delay_slots - 1e-9);
        if let Some(age) = report.oldest_pending_age {
            prop_assert!(age < 48, "age bounded by horizon");
        }
    }
}
