//! Load-conservation property suite for the workload-routing layer —
//! the conformance net pinning the request layer the way
//! `interconnect_physics` pins the energy layer:
//!
//! * **per-frame and cumulative conservation** — on every builtin pack
//!   variant, every routed frame balances exactly: arrived + carried
//!   backlog = served-at-spot + absorbed + migrated + new backlog, the
//!   per-frame records sum to the run totals, and the horizon-capped
//!   queue drains to zero by the final frame;
//! * **queue-age bound** — no deferrable cohort ever waits more than
//!   `max_queue_age` frames;
//! * **routing-off inertness** — on the 16 pre-existing pack variants
//!   (everything but `traffic-wave`) the plain `run_with` path carries a
//!   byte-inert load ledger, the fleet total-cost identity has no load
//!   term, and a routed run's *energy* side is byte-identical to
//!   `run_with` with the same wrapped planner (the lexicographic
//!   contract: the request layer never perturbs the energy settlement);
//! * **structural dominance** — on every variant (the traffic-wave
//!   arrivals included) the co-optimized fleet total never exceeds the
//!   routing-off total (coordinated energy run + serve-on-arrival
//!   workload bill), because deferral only ever moves work to a
//!   strictly cheaper frame and absorption/migration are free;
//! * **fleet scale** — conservation and thread-determinism hold on a
//!   100-site lossy ring (where the planner's Auto solver path resolves
//!   to the network simplex).

use dpss_core::{FleetPlanner, RoutingPlanner, SmartDpss, SmartDpssConfig};
use dpss_sim::{
    Controller, Engine, Interconnect, LoadTotals, MultiSiteEngine, MultiSiteReport, RoutingConfig,
    SimParams,
};
use dpss_traces::ScenarioPack;
use dpss_units::{Energy, Price, SlotClock};

const SEED: u64 = 42;

/// The acceptance topology: a lossy wheeled ring, so migrations pay
/// capacity, loss and wheeling instead of riding a frictionless pool.
fn lossy_ring(sites: usize) -> Interconnect {
    Interconnect::ring(sites, Energy::from_mwh(2.0))
        .unwrap()
        .with_uniform_loss(0.05)
        .unwrap()
        .with_uniform_wheeling(Price::from_dollars_per_mwh(2.0))
        .unwrap()
}

fn fleet(pack: &ScenarioPack, variant: usize, sites: usize, clock: &SlotClock) -> MultiSiteEngine {
    let params = SimParams::icdcs13();
    let engines: Vec<Engine> = (0..sites)
        .map(|s| Engine::new(params, pack.generate_site(clock, SEED, variant, s).unwrap()).unwrap())
        .collect();
    MultiSiteEngine::new(engines)
        .unwrap()
        .with_interconnect(lossy_ring(sites))
        .unwrap()
}

fn smart_boxes(sites: usize, clock: SlotClock) -> Vec<Box<dyn Controller>> {
    let params = SimParams::icdcs13();
    (0..sites)
        .map(|_| {
            Box::new(SmartDpss::new(SmartDpssConfig::icdcs13(), params, clock).unwrap())
                as Box<dyn Controller>
        })
        .collect()
}

fn run_off(multi: &MultiSiteEngine, clock: SlotClock) -> MultiSiteReport {
    let sites = multi.sites().len();
    let mut planner = FleetPlanner::for_engine(multi).with_coordination(true);
    multi
        .run_with(&mut smart_boxes(sites, clock), &mut planner)
        .unwrap()
}

fn run_coopt(multi: &MultiSiteEngine, clock: SlotClock, config: RoutingConfig) -> MultiSiteReport {
    let sites = multi.sites().len();
    let mut routed = RoutingPlanner::new(
        FleetPlanner::for_engine(multi).with_coordination(true),
        config,
    )
    .unwrap();
    multi
        .run_routed(&mut smart_boxes(sites, clock), &mut routed, config)
        .unwrap()
}

/// Asserts the full conservation law on a routed run's ledger: every
/// frame balances against the backlog it inherited, the records sum to
/// the totals, the queue drains by the horizon, and no cohort outwaits
/// the age bound.
fn assert_conserved(load: &LoadTotals, config: RoutingConfig, label: &str) {
    let mut carried = Energy::ZERO;
    let mut arrived = Energy::ZERO;
    let mut served = Energy::ZERO;
    let mut absorbed = Energy::ZERO;
    let mut migrated = Energy::ZERO;
    for (k, rec) in load.frames.iter().enumerate() {
        let inflow = rec.arrived + carried;
        let outflow = rec.served_spot + rec.absorbed + rec.migrated + rec.backlog;
        assert!(
            (inflow - outflow).mwh().abs() < 1e-9,
            "{label} frame {k}: {} MWh in vs {} MWh out",
            inflow.mwh(),
            outflow.mwh()
        );
        carried = rec.backlog;
        arrived += rec.arrived;
        served += rec.served_spot;
        absorbed += rec.absorbed;
        migrated += rec.migrated;
    }
    // Cumulative: the per-frame records reconstruct the run totals.
    assert!((arrived - load.arrived).mwh().abs() < 1e-9, "{label}");
    assert!((served - load.served_spot).mwh().abs() < 1e-9, "{label}");
    assert!((absorbed - load.absorbed).mwh().abs() < 1e-9, "{label}");
    assert!((migrated - load.migrated).mwh().abs() < 1e-9, "{label}");
    assert_eq!(carried, load.final_backlog, "{label}");
    // The horizon cap drains every cohort by the final frame.
    assert_eq!(
        load.final_backlog,
        Energy::ZERO,
        "{label}: backlog must drain"
    );
    // And nothing ever outwaits the age bound.
    assert!(
        load.max_wait_frames <= config.max_queue_age,
        "{label}: waited {} frames, bound {}",
        load.max_wait_frames,
        config.max_queue_age
    );
}

#[test]
fn conservation_holds_per_frame_and_cumulatively_on_every_builtin_variant() {
    let clock = SlotClock::new(4, 24, 1.0).unwrap();
    let config = RoutingConfig::icdcs13();
    let mut variants_checked = 0usize;
    let mut total_arrived = Energy::ZERO;
    for &name in ScenarioPack::builtin_names() {
        let pack = ScenarioPack::builtin(name).unwrap();
        for v in 0..pack.len() {
            let label = format!("{name}/{}", pack.variant(v).unwrap().0);
            let multi = fleet(&pack, v, 3, &clock);
            let report = run_coopt(&multi, clock, config);
            assert_eq!(report.load.frames.len(), clock.frames(), "{label}");
            assert_conserved(&report.load, config, &label);
            total_arrived += report.load.arrived;
            variants_checked += 1;
        }
    }
    assert_eq!(
        variants_checked, 20,
        "the builtin roster is the 20-variant acceptance matrix"
    );
    assert!(
        total_arrived > Energy::ZERO,
        "test premise: the traffic-wave pack routes real work"
    );
}

#[test]
fn routing_off_is_byte_inert_on_the_pre_existing_roster() {
    let clock = SlotClock::new(3, 24, 1.0).unwrap();
    let config = RoutingConfig::icdcs13();
    let mut variants_checked = 0usize;
    for &name in ScenarioPack::builtin_names() {
        if name == "traffic-wave" {
            continue; // the 16 pre-existing variants
        }
        let pack = ScenarioPack::builtin(name).unwrap();
        for v in 0..pack.len() {
            let label = format!("{name}/{}", pack.variant(v).unwrap().0);
            let multi = fleet(&pack, v, 3, &clock);
            let off = run_off(&multi, clock);
            // 1. The plain path carries a byte-inert ledger …
            assert!(off.load.is_inert(), "{label}: run_with must not route");
            // 2. … so the fleet total has no load term.
            assert_eq!(
                off.total_cost(),
                off.cost_before_transfers() - off.transfer_savings + off.wheeling_cost,
                "{label}: no load term in the routing-off total"
            );
            // 3. The routed run's energy side is byte-identical: zero the
            // ledger and the whole report must compare equal.
            let routed = run_coopt(&multi, clock, config);
            let mut energy_only = routed.clone();
            energy_only.load = LoadTotals::default();
            assert_eq!(
                energy_only, off,
                "{label}: the request layer perturbed the energy settlement"
            );
            // These traces carry no arrival stream, so the routed ledger
            // is all zeros too (records exist, but nothing flows).
            assert_eq!(routed.load.arrived, Energy::ZERO, "{label}");
            assert_eq!(routed.load.cost, dpss_units::Money::ZERO, "{label}");
            variants_checked += 1;
        }
    }
    assert_eq!(variants_checked, 16, "the pre-routing acceptance matrix");
}

#[test]
fn co_optimized_total_never_exceeds_routing_off_on_any_variant() {
    let clock = SlotClock::new(4, 24, 1.0).unwrap();
    let config = RoutingConfig::icdcs13();
    let mut variants_checked = 0usize;
    for &name in ScenarioPack::builtin_names() {
        let pack = ScenarioPack::builtin(name).unwrap();
        for v in 0..pack.len() {
            let label = format!("{name}/{}", pack.variant(v).unwrap().0);
            let multi = fleet(&pack, v, 3, &clock);
            let off_cost = run_off(&multi, clock).total_cost()
                + multi
                    .workload_ledger(config)
                    .unwrap()
                    .serve_on_arrival()
                    .cost;
            let coopt_cost = run_coopt(&multi, clock, config).total_cost();
            assert!(
                coopt_cost.dollars() <= off_cost.dollars() + 1e-9,
                "{label}: co-optimized ${} vs off ${}",
                coopt_cost.dollars(),
                off_cost.dollars()
            );
            variants_checked += 1;
        }
    }
    assert_eq!(variants_checked, 20);
}

#[test]
fn conservation_scales_to_a_hundred_site_ring() {
    // Short calendar, full fleet: 100 sites on the lossy ring with the
    // flash-crowd arrival stream. At this scale the wrapped planner's
    // Auto path resolves to the network simplex, so the routed loop is
    // pinned on the solver configuration the fleet axis actually uses.
    let clock = SlotClock::new(3, 12, 1.0).unwrap();
    let config = RoutingConfig::icdcs13();
    let pack = ScenarioPack::builtin("traffic-wave").unwrap();
    let flash = 2usize;
    let multi = fleet(&pack, flash, 100, &clock);
    let serial = run_coopt(&multi, clock, config);
    assert!(serial.load.arrived > Energy::ZERO, "flash crowd arrives");
    assert_conserved(&serial.load, config, "traffic-wave/flash-crowd@100");
    // Thread scheduling must not move a byte — ledger included.
    let threaded_engine = multi.clone().with_threads(8);
    let threaded = run_coopt(&threaded_engine, clock, config);
    assert_eq!(serial, threaded, "threads = 8 must not move a byte");
}
