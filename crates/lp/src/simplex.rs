//! Dense two-phase simplex on an explicit tableau.
//!
//! The tableau stores `B⁻¹A` row-major together with `B⁻¹b`; reduced costs
//! are maintained incrementally through pivots. Pricing is Dantzig's rule
//! (most negative reduced cost) with an automatic switch to Bland's rule
//! after a streak of degenerate pivots, which guarantees termination.

// Dense kernel: every index is a row/column below the `rows`/`cols` the
// tableau buffers were allocated with, and `basis` always holds exactly
// `rows` in-range columns (established by `standard::build_tableau`,
// preserved by every pivot). Runtime bound checks here would be pure
// hot-loop overhead.
// audit:allow-file(slice-index): tableau indices are bounded by rows/cols by construction; see module note
#![allow(clippy::indexing_slicing)]

use crate::{LpError, TOLERANCE};

/// How many consecutive degenerate pivots trigger the Bland's-rule
/// fallback. Dantzig pricing can cycle forever on degenerate vertices
/// (Beale's example); Bland's rule provably terminates, so after this
/// many zero-progress pivots the phase switches pricing rules until the
/// objective moves again.
pub(crate) const DEGENERATE_STREAK_LIMIT: usize = 24;

/// Dense tableau: `rows × cols` coefficient matrix, right-hand side, and the
/// index of the basic column for each row.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tableau {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Row-major `rows × cols`.
    pub(crate) a: Vec<f64>,
    /// `B⁻¹b`, kept non-negative by the ratio test.
    pub(crate) b: Vec<f64>,
    /// Basic column per row.
    pub(crate) basis: Vec<usize>,
}

impl Tableau {
    #[cfg(test)]
    pub(crate) fn new(rows: usize, cols: usize) -> Self {
        let mut t = Tableau::default();
        t.reset(rows, cols);
        t
    }

    /// Re-dimensions the tableau to an all-zero `rows × cols` system,
    /// reusing the existing allocations (the workspace hot path).
    pub(crate) fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.a.clear();
        self.a.resize(rows * cols, 0.0);
        self.b.clear();
        self.b.resize(rows, 0.0);
        self.basis.clear();
        self.basis.resize(rows, usize::MAX);
    }

    #[inline]
    pub(crate) fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    #[inline]
    pub(crate) fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.cols + c] = v;
    }

    /// Gauss-Jordan pivot on `(prow, pcol)`: normalizes the pivot row and
    /// eliminates `pcol` from every other row and from `cost`. Also used
    /// by the warm-start rebuild in `standard`, which re-reduces a fresh
    /// tableau onto a saved basis one pivot per basic column.
    pub(crate) fn pivot(&mut self, prow: usize, pcol: usize, cost: &mut CostRow) {
        let cols = self.cols;
        let pivot_val = self.at(prow, pcol);
        debug_assert!(pivot_val.abs() > TOLERANCE, "pivot element too small");

        let inv = 1.0 / pivot_val;
        for j in 0..cols {
            self.a[prow * cols + j] *= inv;
        }
        self.b[prow] *= inv;
        // Clean the pivot column entry to exactly 1 to limit drift.
        self.set(prow, pcol, 1.0);

        for r in 0..self.rows {
            if r == prow {
                continue;
            }
            let factor = self.at(r, pcol);
            if factor == 0.0 {
                continue;
            }
            for j in 0..cols {
                let upd = self.a[prow * cols + j] * factor;
                self.a[r * cols + j] -= upd;
            }
            self.b[r] -= self.b[prow] * factor;
            self.set(r, pcol, 0.0);
            if self.b[r].abs() < TOLERANCE {
                self.b[r] = self.b[r].max(0.0);
            }
        }

        self.eliminate_cost(prow, pcol, cost);
        self.basis[prow] = pcol;
    }

    /// Eliminates `pcol` from a cost row against the (already pivoted)
    /// row `prow`. Factored out of [`pivot`](Self::pivot) so warm starts
    /// can keep a *second* cost row (the saved solve's objective, which
    /// guides the dual feasibility-restore phase) in sync with the same
    /// pivots.
    pub(crate) fn eliminate_cost(&self, prow: usize, pcol: usize, cost: &mut CostRow) {
        let cols = self.cols;
        let factor = cost.reduced[pcol];
        if factor != 0.0 {
            for j in 0..cols {
                cost.reduced[j] -= self.a[prow * cols + j] * factor;
            }
            // Entering variable rises to θ = b̄[prow]; objective moves by
            // its reduced cost times θ.
            cost.objective += self.b[prow] * factor;
            cost.reduced[pcol] = 0.0;
        }
    }

    /// Extracts the current basic solution as a dense vector over all
    /// columns.
    pub(crate) fn solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.cols];
        for (r, &bc) in self.basis.iter().enumerate() {
            x[bc] = self.b[r];
        }
        x
    }
}

/// Reduced-cost row plus the (negated-offset) objective value at the current
/// basic solution.
#[derive(Debug, Clone)]
pub(crate) struct CostRow {
    pub(crate) reduced: Vec<f64>,
    pub(crate) objective: f64,
}

impl CostRow {
    /// Builds the reduced costs `c_j − c_Bᵀ (B⁻¹A)_j` for an already
    /// basis-reduced tableau.
    pub(crate) fn from_costs(tab: &Tableau, costs: &[f64]) -> Self {
        debug_assert_eq!(costs.len(), tab.cols);
        let mut reduced = costs.to_vec();
        let mut objective = 0.0;
        for (r, &bc) in tab.basis.iter().enumerate() {
            let cb = costs[bc];
            if cb == 0.0 {
                continue;
            }
            for (j, red) in reduced.iter_mut().enumerate() {
                *red -= cb * tab.at(r, j);
            }
            objective += cb * tab.b[r];
        }
        // Basic columns have exactly zero reduced cost by construction.
        for &bc in &tab.basis {
            reduced[bc] = 0.0;
        }
        CostRow { reduced, objective }
    }
}

/// Outcome of a single simplex phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PhaseOutcome {
    Optimal,
    Unbounded,
}

/// Runs primal simplex pivots until optimality, unboundedness or pivot
/// exhaustion. `allowed` masks which columns may *enter* the basis (used to
/// keep artificials out during phase 2). `bland_after` is the degenerate
/// streak that triggers the Bland's-rule fallback (`0` forces Bland from
/// the first pivot; production callers pass
/// [`DEGENERATE_STREAK_LIMIT`]).
pub(crate) fn run_phase(
    tab: &mut Tableau,
    cost: &mut CostRow,
    allowed: &[bool],
    budget: &mut usize,
    bland_after: usize,
) -> Result<PhaseOutcome, LpError> {
    let mut degenerate_streak = 0usize;
    let mut pivots_done = 0usize;
    loop {
        let use_bland = degenerate_streak >= bland_after;
        let Some(pcol) = choose_entering(cost, allowed, use_bland) else {
            return Ok(PhaseOutcome::Optimal);
        };
        let Some(prow) = choose_leaving(tab, pcol) else {
            return Ok(PhaseOutcome::Unbounded);
        };
        if *budget == 0 {
            return Err(LpError::IterationLimit {
                pivots: pivots_done,
            });
        }
        *budget -= 1;
        pivots_done += 1;
        let ratio_zero = tab.b[prow] <= TOLERANCE;
        tab.pivot(prow, pcol, cost);
        if ratio_zero {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }
    }
}

/// Outcome of the dual simplex feasibility-restore phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DualOutcome {
    /// All right-hand sides are now non-negative (primal feasible).
    Feasible,
    /// A negative row has no negative coefficient: the constraint system
    /// itself is infeasible (costs play no role in that certificate).
    NoPivot,
}

/// Dual simplex pivots until primal feasibility, guided by the
/// dual-feasible cost row `guide` (all reduced costs `≥ 0`, e.g. the
/// objective of the previous solve whose optimal basis we warm-started
/// from). `extra` is a second cost row kept in sync with the pivots (the
/// *current* objective, which the subsequent primal phase optimizes).
///
/// Used exclusively by warm starts: after a right-hand-side change the
/// saved basis stays dual-feasible w.r.t. its own costs, so a handful of
/// dual pivots restores feasibility without re-running phase 1.
pub(crate) fn run_dual_phase(
    tab: &mut Tableau,
    guide: &mut CostRow,
    extra: &mut CostRow,
    budget: &mut usize,
) -> Result<DualOutcome, LpError> {
    let mut pivots_done = 0usize;
    loop {
        // Leaving row: most negative b̄ (ties → smallest row index).
        let mut leaving: Option<(usize, f64)> = None;
        for (r, &b) in tab.b.iter().enumerate() {
            if b < -TOLERANCE && leaving.is_none_or(|(_, best)| b < best) {
                leaving = Some((r, b));
            }
        }
        let Some((prow, _)) = leaving else {
            return Ok(DualOutcome::Feasible);
        };
        // Entering column: dual ratio test over negative row entries
        // (ties → smallest column index, Bland-style, for termination).
        let mut entering: Option<(usize, f64)> = None;
        for j in 0..tab.cols {
            let a = tab.at(prow, j);
            if a < -TOLERANCE {
                let ratio = guide.reduced[j] / -a;
                if entering.is_none_or(|(_, best)| ratio < best - TOLERANCE) {
                    entering = Some((j, ratio));
                }
            }
        }
        let Some((pcol, _)) = entering else {
            return Ok(DualOutcome::NoPivot);
        };
        if *budget == 0 {
            return Err(LpError::IterationLimit {
                pivots: pivots_done,
            });
        }
        *budget -= 1;
        pivots_done += 1;
        tab.pivot(prow, pcol, guide);
        tab.eliminate_cost(prow, pcol, extra);
    }
}

#[allow(clippy::needless_range_loop)] // index loops keep the dense hot path branch-free
fn choose_entering(cost: &CostRow, allowed: &[bool], bland: bool) -> Option<usize> {
    if bland {
        // Bland's rule: smallest-index column with negative reduced cost.
        (0..cost.reduced.len()).find(|&j| allowed[j] && cost.reduced[j] < -TOLERANCE)
    } else {
        // Dantzig's rule: most negative reduced cost.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..cost.reduced.len() {
            if !allowed[j] {
                continue;
            }
            let rc = cost.reduced[j];
            if rc < -TOLERANCE && best.is_none_or(|(_, b)| rc < b) {
                best = Some((j, rc));
            }
        }
        best.map(|(j, _)| j)
    }
}

fn choose_leaving(tab: &Tableau, pcol: usize) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for r in 0..tab.rows {
        let a = tab.at(r, pcol);
        if a <= TOLERANCE {
            continue;
        }
        let ratio = tab.b[r] / a;
        let better = match best {
            None => true,
            Some((br, bratio)) => {
                ratio < bratio - TOLERANCE
                    || ((ratio - bratio).abs() <= TOLERANCE && tab.basis[r] < tab.basis[br])
            }
        };
        if better {
            best = Some((r, ratio));
        }
    }
    best.map(|(r, _)| r)
}

/// Drives basic artificial variables out of the basis after phase 1.
///
/// Rows where an artificial remains basic at level ~0 are either pivoted
/// onto a structural column or marked redundant (returned as `true` in the
/// mask) when the whole structural part of the row has been eliminated.
#[allow(clippy::needless_range_loop)] // row/col index loops mirror the tableau layout
pub(crate) fn expel_artificials(
    tab: &mut Tableau,
    cost: &mut CostRow,
    n_structural: usize,
) -> Vec<bool> {
    let mut redundant = vec![false; tab.rows];
    for r in 0..tab.rows {
        if tab.basis[r] < n_structural {
            continue;
        }
        // Find any structural column with a usable pivot in this row.
        let mut pivot_col = None;
        for j in 0..n_structural {
            if tab.at(r, j).abs() > 1e-7 {
                pivot_col = Some(j);
                break;
            }
        }
        match pivot_col {
            Some(j) => tab.pivot(r, j, cost),
            None => redundant[r] = true,
        }
    }
    redundant
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a tableau for `x + y ≤ 4`, `x + 3y ≤ 6` with slack columns 2,3
    /// already basic.
    fn small_tableau() -> Tableau {
        let mut t = Tableau::new(2, 4);
        t.set(0, 0, 1.0);
        t.set(0, 1, 1.0);
        t.set(0, 2, 1.0);
        t.set(1, 0, 1.0);
        t.set(1, 1, 3.0);
        t.set(1, 3, 1.0);
        t.b = vec![4.0, 6.0];
        t.basis = vec![2, 3];
        t
    }

    #[test]
    fn phase_solves_small_maximization() {
        // max 3x + 2y ≡ min −3x − 2y.
        let mut tab = small_tableau();
        let mut cost = CostRow::from_costs(&tab, &[-3.0, -2.0, 0.0, 0.0]);
        let allowed = vec![true; 4];
        let mut budget = 100;
        let out = run_phase(
            &mut tab,
            &mut cost,
            &allowed,
            &mut budget,
            DEGENERATE_STREAK_LIMIT,
        )
        .unwrap();
        assert_eq!(out, PhaseOutcome::Optimal);
        let x = tab.solution();
        assert!((x[0] - 4.0).abs() < 1e-9);
        assert!(x[1].abs() < 1e-9);
        assert!((cost.objective - (-12.0)).abs() < 1e-9);
    }

    #[test]
    fn phase_detects_unbounded() {
        // min −x with x unconstrained above: single row y slack only on x2.
        let mut t = Tableau::new(1, 2);
        t.set(0, 0, -1.0); // row: −x + s = 1 → x can grow without bound
        t.set(0, 1, 1.0);
        t.b = vec![1.0];
        t.basis = vec![1];
        let mut cost = CostRow::from_costs(&t, &[-1.0, 0.0]);
        let allowed = vec![true; 2];
        let mut budget = 50;
        let out = run_phase(
            &mut t,
            &mut cost,
            &allowed,
            &mut budget,
            DEGENERATE_STREAK_LIMIT,
        )
        .unwrap();
        assert_eq!(out, PhaseOutcome::Unbounded);
    }

    #[test]
    fn forced_bland_rule_reaches_the_same_optimum() {
        // `bland_after = 0` runs pure Bland's rule from the first pivot —
        // the anti-cycling fallback must be a correct solver on its own,
        // not just a termination hack.
        let mut tab = small_tableau();
        let mut cost = CostRow::from_costs(&tab, &[-3.0, -2.0, 0.0, 0.0]);
        let allowed = vec![true; 4];
        let mut budget = 100;
        let out = run_phase(&mut tab, &mut cost, &allowed, &mut budget, 0).unwrap();
        assert_eq!(out, PhaseOutcome::Optimal);
        let x = tab.solution();
        assert!((x[0] - 4.0).abs() < 1e-9);
        assert!((cost.objective - (-12.0)).abs() < 1e-9);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut tab = small_tableau();
        let mut cost = CostRow::from_costs(&tab, &[-3.0, -2.0, 0.0, 0.0]);
        let allowed = vec![true; 4];
        let mut budget = 0;
        let err = run_phase(
            &mut tab,
            &mut cost,
            &allowed,
            &mut budget,
            DEGENERATE_STREAK_LIMIT,
        )
        .unwrap_err();
        assert!(matches!(err, LpError::IterationLimit { .. }));
    }

    #[test]
    fn cost_row_zeroes_basic_columns() {
        let tab = small_tableau();
        let cost = CostRow::from_costs(&tab, &[1.0, 1.0, 5.0, -5.0]);
        assert_eq!(cost.reduced[2], 0.0);
        assert_eq!(cost.reduced[3], 0.0);
    }

    #[test]
    fn expel_artificials_pivots_or_marks_redundant() {
        // Two rows, one structural column; row 1 duplicates row 0 so one of
        // them becomes redundant once the structural column is basic.
        let mut t = Tableau::new(2, 3); // col0 structural, col1..2 artificial
        t.set(0, 0, 1.0);
        t.set(0, 1, 1.0);
        t.set(1, 0, 1.0);
        t.set(1, 2, 1.0);
        t.b = vec![2.0, 2.0];
        t.basis = vec![1, 2];
        let mut cost = CostRow::from_costs(&t, &[0.0, 1.0, 1.0]);
        let allowed = vec![true; 3];
        let mut budget = 50;
        // Phase 1 drives artificial sum to zero.
        run_phase(
            &mut t,
            &mut cost,
            &allowed,
            &mut budget,
            DEGENERATE_STREAK_LIMIT,
        )
        .unwrap();
        assert!(cost.objective.abs() < 1e-9);
        let redundant = expel_artificials(&mut t, &mut cost, 1);
        // Exactly one row ends up redundant, the other has col 0 basic.
        assert_eq!(redundant.iter().filter(|&&r| r).count(), 1);
        assert!(t.basis.contains(&0));
    }
}
