//! Reusable solver state for repeated, structurally similar solves.
//!
//! The DPSS controllers solve one frame LP per coarse frame; consecutive
//! frames share the constraint structure and differ only in right-hand
//! sides (demands, battery/queue state) and objective coefficients
//! (prices). A [`LpWorkspace`] makes that loop cheap twice over:
//!
//! * **allocation reuse** — the dense tableau (the dominant allocation:
//!   `rows × cols` of `f64`, hundreds of kilobytes for a day-long frame)
//!   and the auxiliary masks are owned by the workspace and recycled;
//! * **warm starts** — the optimal basis of the previous solve is saved
//!   and, when the next problem has the same standard-form shape, phase 1
//!   is skipped entirely: the tableau is re-reduced onto the saved basis
//!   and phase 2 starts from there. If the saved basis is singular or
//!   primal-infeasible for the new data, the solver falls back to the
//!   cold two-phase path — results are always identical in objective and
//!   feasibility status to a cold solve.
//!
//! # Examples
//!
//! ```
//! use dpss_lp::{LpWorkspace, Problem, Relation, Sense};
//!
//! # fn main() -> Result<(), dpss_lp::LpError> {
//! let mut ws = LpWorkspace::new();
//! for demand in [1.0, 1.2, 0.9] {
//!     let mut p = Problem::new(Sense::Minimize);
//!     let g = p.add_var("g", 0.0, 2.0, 40.0)?;
//!     p.add_constraint(&[(g, 1.0)], Relation::Ge, demand)?;
//!     let sol = p.solve_with(&mut ws)?;
//!     assert!((sol.value(g) - demand).abs() < 1e-9);
//! }
//! assert_eq!(ws.cold_solves(), 1); // first solve primes the basis
//! assert_eq!(ws.warm_solves(), 2); // later solves reuse it
//! # Ok(())
//! # }
//! ```

use crate::network::NetworkBasis;
use crate::simplex::Tableau;

/// The basis of the last successful solve, keyed by standard-form shape.
#[derive(Debug, Clone)]
pub(crate) struct SavedBasis {
    /// Constraint rows of the phase-2 system the basis belongs to.
    pub(crate) rows: usize,
    /// Non-artificial columns (structural + slack) of that system.
    pub(crate) cols: usize,
    /// Basic column per row, all `< cols`.
    pub(crate) basis: Vec<usize>,
    /// The phase-2 objective the basis is optimal (hence dual-feasible)
    /// for — the guide row of the warm start's dual feasibility restore.
    pub(crate) costs: Vec<f64>,
}

/// Reusable buffers and warm-start state for [`Problem::solve_with`]
/// (see the module docs for the full story).
///
/// [`Problem::solve_with`]: crate::Problem::solve_with
#[derive(Debug, Clone, Default)]
pub struct LpWorkspace {
    /// Primary tableau storage, recycled across solves.
    pub(crate) tab: Tableau,
    /// Secondary tableau used when redundant rows are compacted away.
    pub(crate) aux: Tableau,
    /// Scratch cost vector (phase-1 and phase-2 objective rows).
    pub(crate) costs: Vec<f64>,
    /// Scratch entering-column mask.
    pub(crate) allowed: Vec<bool>,
    /// Basis of the previous successful solve, if any.
    pub(crate) saved: Option<SavedBasis>,
    /// Basis + inverse of the previous successful *network-path* solve
    /// ([`Problem::solve_network_with`]), if any. Kept separately from
    /// `saved` because the two paths key on different shapes.
    ///
    /// [`Problem::solve_network_with`]: crate::Problem::solve_network_with
    pub(crate) net_saved: Option<NetworkBasis>,
    warm_solves: u64,
    cold_solves: u64,
    warm_rejects: u64,
    last_was_warm: bool,
}

impl LpWorkspace {
    /// Creates an empty workspace (first solve is necessarily cold).
    #[must_use]
    pub fn new() -> Self {
        LpWorkspace::default()
    }

    /// Number of solves that started from a saved basis.
    #[must_use]
    pub fn warm_solves(&self) -> u64 {
        self.warm_solves
    }

    /// Number of solves that went through the cold two-phase path.
    #[must_use]
    pub fn cold_solves(&self) -> u64 {
        self.cold_solves
    }

    /// Number of warm attempts abandoned because the saved basis was
    /// singular or primal-infeasible for the new data (each such solve is
    /// also counted in [`cold_solves`](Self::cold_solves)).
    #[must_use]
    pub fn warm_rejects(&self) -> u64 {
        self.warm_rejects
    }

    /// Whether the most recent solve completed on the warm path.
    #[must_use]
    pub fn last_was_warm(&self) -> bool {
        self.last_was_warm
    }

    /// Drops the saved bases (dense and network path) so the next solve
    /// is forced cold (the buffers remain allocated).
    pub fn clear_basis(&mut self) {
        self.saved = None;
        self.net_saved = None;
    }

    /// Takes the saved basis if it matches the given phase-2 shape.
    pub(crate) fn take_matching_basis(&mut self, rows: usize, cols: usize) -> Option<SavedBasis> {
        match &self.saved {
            Some(s) if s.rows == rows && s.cols == cols => self.saved.take(),
            _ => None,
        }
    }

    /// Records the basis (and the objective it is optimal for) of a
    /// successful solve, for the next warm start.
    pub(crate) fn save_basis(&mut self, rows: usize, cols: usize, basis: &[usize], costs: &[f64]) {
        debug_assert_eq!(basis.len(), rows);
        debug_assert_eq!(costs.len(), cols);
        match &mut self.saved {
            Some(s) => {
                s.rows = rows;
                s.cols = cols;
                s.basis.clear();
                s.basis.extend_from_slice(basis);
                s.costs.clear();
                s.costs.extend_from_slice(costs);
            }
            None => {
                self.saved = Some(SavedBasis {
                    rows,
                    cols,
                    basis: basis.to_vec(),
                    costs: costs.to_vec(),
                });
            }
        }
    }

    /// Takes the saved network-path basis if it matches shape `n × m`.
    pub(crate) fn take_matching_network_basis(
        &mut self,
        n: usize,
        m: usize,
    ) -> Option<NetworkBasis> {
        match &self.net_saved {
            Some(s) if s.n == n && s.m == m => self.net_saved.take(),
            _ => None,
        }
    }

    /// Records the final basis of a successful network-path solve.
    pub(crate) fn save_network_basis(&mut self, basis: NetworkBasis) {
        self.net_saved = Some(basis);
    }

    pub(crate) fn note_warm(&mut self) {
        self.warm_solves += 1;
        self.last_was_warm = true;
    }

    pub(crate) fn note_cold(&mut self) {
        self.cold_solves += 1;
        self.last_was_warm = false;
    }

    pub(crate) fn note_warm_reject(&mut self) {
        self.warm_rejects += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense};

    fn cover_lp(demand: f64, price: f64) -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let g = p.add_var("g", 0.0, 5.0, price).unwrap();
        let w = p.add_var("w", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(g, 1.0), (w, -1.0)], Relation::Ge, demand)
            .unwrap();
        p
    }

    #[test]
    fn warm_path_engages_on_repeat_solves() {
        let mut ws = LpWorkspace::new();
        for (d, pr) in [(1.0, 40.0), (2.0, 45.0), (0.5, 38.0), (3.0, 41.0)] {
            let sol = cover_lp(d, pr).solve_with(&mut ws).unwrap();
            assert!((sol.objective() - d * pr).abs() < 1e-9);
        }
        assert_eq!(ws.cold_solves(), 1);
        assert_eq!(ws.warm_solves(), 3);
        assert!(ws.last_was_warm());
    }

    #[test]
    fn shape_change_falls_back_to_cold() {
        let mut ws = LpWorkspace::new();
        cover_lp(1.0, 40.0).solve_with(&mut ws).unwrap();
        // Different shape: one more variable and row.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0).unwrap();
        let y = p.add_var("y", 0.0, 1.0, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 0.4).unwrap();
        let sol = p.solve_with(&mut ws).unwrap();
        assert!((sol.objective() - (0.4 + 2.0 * 0.6)).abs() < 1e-9);
        assert_eq!(ws.cold_solves(), 2);
        assert!(!ws.last_was_warm());
    }

    #[test]
    fn clear_basis_forces_cold() {
        let mut ws = LpWorkspace::new();
        cover_lp(1.0, 40.0).solve_with(&mut ws).unwrap();
        ws.clear_basis();
        cover_lp(1.5, 40.0).solve_with(&mut ws).unwrap();
        assert_eq!(ws.cold_solves(), 2);
        assert_eq!(ws.warm_solves(), 0);
    }
}
