//! Reusable solver state for repeated, structurally similar solves.
//!
//! The DPSS controllers solve one frame LP per coarse frame; consecutive
//! frames share the constraint structure and differ only in right-hand
//! sides (demands, battery/queue state) and objective coefficients
//! (prices). A [`LpWorkspace`] makes that loop cheap twice over:
//!
//! * **allocation reuse** — the dense tableau (the dominant allocation:
//!   `rows × cols` of `f64`, hundreds of kilobytes for a day-long frame)
//!   and the auxiliary masks are owned by the workspace and recycled;
//! * **warm starts** — the optimal basis of the previous solve is saved
//!   and, when the next problem has the same standard-form shape, phase 1
//!   is skipped entirely: the tableau is re-reduced onto the saved basis
//!   and phase 2 starts from there. If the saved basis is singular or
//!   primal-infeasible for the new data, the solver falls back to the
//!   cold two-phase path — results are always identical in objective and
//!   feasibility status to a cold solve.
//!
//! # Examples
//!
//! ```
//! use dpss_lp::{LpWorkspace, Problem, Relation, Sense};
//!
//! # fn main() -> Result<(), dpss_lp::LpError> {
//! let mut ws = LpWorkspace::new();
//! for demand in [1.0, 1.2, 0.9] {
//!     let mut p = Problem::new(Sense::Minimize);
//!     let g = p.add_var("g", 0.0, 2.0, 40.0)?;
//!     p.add_constraint(&[(g, 1.0)], Relation::Ge, demand)?;
//!     let sol = p.solve_with(&mut ws)?;
//!     assert!((sol.value(g) - demand).abs() < 1e-9);
//! }
//! assert_eq!(ws.cold_solves(), 1); // first solve primes the basis
//! assert_eq!(ws.warm_solves(), 2); // later solves reuse it
//! # Ok(())
//! # }
//! ```

use serde::Serialize;

use crate::network::{NetState, NetworkBasis};
use crate::simplex::Tableau;
use crate::solution::Solution;

/// Cumulative solver telemetry for one workspace (one solve template).
///
/// The warm/cold/reject counters cover every solve through the
/// workspace, dense or network path; the kernel counters (`pivots`,
/// `refactorizations`, eta length, scratch bytes, nanoseconds) cover the
/// factorized network kernel only — `kernel_solves` says how many solves
/// they aggregate over. Obtained from [`LpWorkspace::stats`], merged
/// across a fleet's workspaces by the planner layers, and serialized
/// into the `solver_stats.json` bench artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SolverStats {
    /// Total solves through the workspace (warm + cold).
    pub solves: u64,
    /// Solves that resumed from a saved basis.
    pub warm_solves: u64,
    /// Solves that ran the cold path from scratch.
    pub cold_solves: u64,
    /// Warm attempts abandoned (each also counted in `cold_solves`).
    pub warm_rejects: u64,
    /// Solves that went through the factorized network kernel.
    pub kernel_solves: u64,
    /// Simplex pivots performed by the network kernel.
    pub pivots: u64,
    /// Eta-file rebuilds triggered by the cap or drift guard.
    pub refactorizations: u64,
    /// Peak off-pivot eta entries held in any one solve's file.
    pub eta_len_peak: usize,
    /// Peak bytes of heap capacity pinned by the kernel arenas.
    pub peak_scratch_bytes: usize,
    /// Wall-clock nanoseconds spent inside the network kernel.
    pub solve_ns: u64,
}

impl SolverStats {
    /// Folds another workspace's counters into this one (sums for the
    /// tallies, maxima for the peaks).
    pub fn merge(&mut self, other: &SolverStats) {
        self.solves += other.solves;
        self.warm_solves += other.warm_solves;
        self.cold_solves += other.cold_solves;
        self.warm_rejects += other.warm_rejects;
        self.kernel_solves += other.kernel_solves;
        self.pivots += other.pivots;
        self.refactorizations += other.refactorizations;
        self.eta_len_peak = self.eta_len_peak.max(other.eta_len_peak);
        self.peak_scratch_bytes = self.peak_scratch_bytes.max(other.peak_scratch_bytes);
        self.solve_ns += other.solve_ns;
    }

    /// Refactorizations per kernel solve — the headline drift-control
    /// telemetry (`solver_refactor_rate` in `BENCH_sweep.json`).
    #[must_use]
    pub fn refactor_rate(&self) -> f64 {
        if self.kernel_solves == 0 {
            0.0
        } else {
            self.refactorizations as f64 / self.kernel_solves as f64
        }
    }
}

/// The basis of the last successful solve, keyed by standard-form shape.
#[derive(Debug, Clone)]
pub(crate) struct SavedBasis {
    /// Constraint rows of the phase-2 system the basis belongs to.
    pub(crate) rows: usize,
    /// Non-artificial columns (structural + slack) of that system.
    pub(crate) cols: usize,
    /// Basic column per row, all `< cols`.
    pub(crate) basis: Vec<usize>,
    /// The phase-2 objective the basis is optimal (hence dual-feasible)
    /// for — the guide row of the warm start's dual feasibility restore.
    pub(crate) costs: Vec<f64>,
}

/// Reusable buffers and warm-start state for [`Problem::solve_with`]
/// (see the module docs for the full story).
///
/// [`Problem::solve_with`]: crate::Problem::solve_with
#[derive(Debug, Clone, Default)]
pub struct LpWorkspace {
    /// Primary tableau storage, recycled across solves.
    pub(crate) tab: Tableau,
    /// Secondary tableau used when redundant rows are compacted away.
    pub(crate) aux: Tableau,
    /// Scratch cost vector (phase-1 and phase-2 objective rows).
    pub(crate) costs: Vec<f64>,
    /// Scratch entering-column mask.
    pub(crate) allowed: Vec<bool>,
    /// Basis of the previous successful solve, if any.
    pub(crate) saved: Option<SavedBasis>,
    /// Basis of the previous successful *network-path* solve
    /// ([`Problem::solve_network_with`]) — `live` when reusable. Kept
    /// separately from `saved` because the two paths key on different
    /// shapes, and in place (not an `Option`) so warm chains rewrite it
    /// without allocating.
    ///
    /// [`Problem::solve_network_with`]: crate::Problem::solve_network_with
    pub(crate) net_saved: NetworkBasis,
    /// Arenas and persistent state of the factorized network kernel.
    pub(crate) net: NetState,
    /// Recycled [`Solution`] value buffer (see [`recycle`](Self::recycle)).
    pub(crate) sol_pool: Vec<f64>,
    warm_solves: u64,
    cold_solves: u64,
    warm_rejects: u64,
    last_was_warm: bool,
    kernel_solves: u64,
    kernel_pivots: u64,
    kernel_refactorizations: u64,
    kernel_eta_len_peak: usize,
    kernel_scratch_peak: usize,
    kernel_solve_ns: u64,
}

impl LpWorkspace {
    /// Creates an empty workspace (first solve is necessarily cold).
    #[must_use]
    pub fn new() -> Self {
        LpWorkspace::default()
    }

    /// Number of solves that started from a saved basis.
    #[must_use]
    pub fn warm_solves(&self) -> u64 {
        self.warm_solves
    }

    /// Number of solves that went through the cold two-phase path.
    #[must_use]
    pub fn cold_solves(&self) -> u64 {
        self.cold_solves
    }

    /// Number of warm attempts abandoned because the saved basis was
    /// singular or primal-infeasible for the new data (each such solve is
    /// also counted in [`cold_solves`](Self::cold_solves)).
    #[must_use]
    pub fn warm_rejects(&self) -> u64 {
        self.warm_rejects
    }

    /// Whether the most recent solve completed on the warm path.
    #[must_use]
    pub fn last_was_warm(&self) -> bool {
        self.last_was_warm
    }

    /// Cumulative solver telemetry for this workspace — warm/cold
    /// counters plus the factorized network kernel's pivot,
    /// refactorization, eta-length, scratch and timing counters.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            solves: self.warm_solves + self.cold_solves,
            warm_solves: self.warm_solves,
            cold_solves: self.cold_solves,
            warm_rejects: self.warm_rejects,
            kernel_solves: self.kernel_solves,
            pivots: self.kernel_pivots,
            refactorizations: self.kernel_refactorizations,
            eta_len_peak: self.kernel_eta_len_peak,
            peak_scratch_bytes: self.kernel_scratch_peak,
            solve_ns: self.kernel_solve_ns,
        }
    }

    /// Sets the network kernel's eta-file cap: the file is refactorized
    /// once it holds `cap` etas (clamped to ≥ 1; the default is
    /// restored by passing `0`). `cap = 1` forces a refactorization
    /// after every basis exchange — useful for stress tests; production
    /// callers should leave the default.
    pub fn set_network_refactor_cap(&mut self, cap: usize) {
        self.net.refactor_eta_cap = cap;
    }

    /// Returns a finished [`Solution`]'s value buffer to the workspace
    /// pool. The next network-path solve reuses it for its own values,
    /// which makes steady-state warm re-solve chains allocation-free
    /// (asserted by a counting-allocator gate in the bench harness).
    pub fn recycle(&mut self, sol: Solution) {
        let values = sol.into_values();
        if values.capacity() > self.sol_pool.capacity() {
            self.sol_pool = values;
        }
    }

    /// Drops the saved bases (dense and network path) so the next solve
    /// is forced cold (the buffers remain allocated).
    pub fn clear_basis(&mut self) {
        self.saved = None;
        self.net_saved.live = false;
    }

    /// Takes the saved basis if it matches the given phase-2 shape.
    pub(crate) fn take_matching_basis(&mut self, rows: usize, cols: usize) -> Option<SavedBasis> {
        match &self.saved {
            Some(s) if s.rows == rows && s.cols == cols => self.saved.take(),
            _ => None,
        }
    }

    /// Records the basis (and the objective it is optimal for) of a
    /// successful solve, for the next warm start.
    pub(crate) fn save_basis(&mut self, rows: usize, cols: usize, basis: &[usize], costs: &[f64]) {
        debug_assert_eq!(basis.len(), rows);
        debug_assert_eq!(costs.len(), cols);
        match &mut self.saved {
            Some(s) => {
                s.rows = rows;
                s.cols = cols;
                s.basis.clear();
                s.basis.extend_from_slice(basis);
                s.costs.clear();
                s.costs.extend_from_slice(costs);
            }
            None => {
                self.saved = Some(SavedBasis {
                    rows,
                    cols,
                    basis: basis.to_vec(),
                    costs: costs.to_vec(),
                });
            }
        }
    }

    /// Accumulates one network-kernel solve's telemetry.
    pub(crate) fn note_kernel_solve(
        &mut self,
        pivots: u64,
        refactorizations: u64,
        eta_entry_peak: usize,
        scratch_bytes: usize,
        ns: u64,
    ) {
        self.kernel_solves += 1;
        self.kernel_pivots += pivots;
        self.kernel_refactorizations += refactorizations;
        self.kernel_eta_len_peak = self.kernel_eta_len_peak.max(eta_entry_peak);
        self.kernel_scratch_peak = self.kernel_scratch_peak.max(scratch_bytes);
        self.kernel_solve_ns += ns;
    }

    pub(crate) fn note_warm(&mut self) {
        self.warm_solves += 1;
        self.last_was_warm = true;
    }

    pub(crate) fn note_cold(&mut self) {
        self.cold_solves += 1;
        self.last_was_warm = false;
    }

    pub(crate) fn note_warm_reject(&mut self) {
        self.warm_rejects += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense};

    fn cover_lp(demand: f64, price: f64) -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let g = p.add_var("g", 0.0, 5.0, price).unwrap();
        let w = p.add_var("w", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(g, 1.0), (w, -1.0)], Relation::Ge, demand)
            .unwrap();
        p
    }

    #[test]
    fn warm_path_engages_on_repeat_solves() {
        let mut ws = LpWorkspace::new();
        for (d, pr) in [(1.0, 40.0), (2.0, 45.0), (0.5, 38.0), (3.0, 41.0)] {
            let sol = cover_lp(d, pr).solve_with(&mut ws).unwrap();
            assert!((sol.objective() - d * pr).abs() < 1e-9);
        }
        assert_eq!(ws.cold_solves(), 1);
        assert_eq!(ws.warm_solves(), 3);
        assert!(ws.last_was_warm());
    }

    #[test]
    fn shape_change_falls_back_to_cold() {
        let mut ws = LpWorkspace::new();
        cover_lp(1.0, 40.0).solve_with(&mut ws).unwrap();
        // Different shape: one more variable and row.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 1.0).unwrap();
        let y = p.add_var("y", 0.0, 1.0, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 0.4).unwrap();
        let sol = p.solve_with(&mut ws).unwrap();
        assert!((sol.objective() - (0.4 + 2.0 * 0.6)).abs() < 1e-9);
        assert_eq!(ws.cold_solves(), 2);
        assert!(!ws.last_was_warm());
    }

    #[test]
    fn clear_basis_forces_cold() {
        let mut ws = LpWorkspace::new();
        cover_lp(1.0, 40.0).solve_with(&mut ws).unwrap();
        ws.clear_basis();
        cover_lp(1.5, 40.0).solve_with(&mut ws).unwrap();
        assert_eq!(ws.cold_solves(), 2);
        assert_eq!(ws.warm_solves(), 0);
    }
}
