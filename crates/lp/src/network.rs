//! Sparse revised simplex for network-structured ("packing-form") LPs.
//!
//! The fleet flow problems — per-frame export settlement and the
//! prospective directive LP — share one shape: every constraint is
//! `Σ aᵢⱼ·xⱼ ≤ bᵢ` with `bᵢ ≥ 0`, and every variable is box-bounded
//! `0 ≤ xⱼ ≤ uⱼ` with `uⱼ` finite. That shape has two consequences the
//! dense two-phase tableau cannot exploit:
//!
//! * **the all-slack basis is feasible** (`x = 0`, `s = b ≥ 0`), so
//!   phase 1 never runs — the solver starts pricing immediately;
//! * **columns are sparse** (a flow variable touches its donor row, its
//!   need row and maybe a pool row), so the revised method — a dense
//!   `m × m` basis inverse plus column-wise sparse pricing — does
//!   `O(m²)` work per pivot instead of the tableau's `O(m·(n+m))`,
//!   and never materializes the `m × (n+m)` matrix at all. For an
//!   `n`-site mesh (`O(n²)` flow variables over `O(n)` rows) that is
//!   the difference between quadratic and linear memory.
//!
//! Bounded variables are handled natively (nonbasic-at-upper status and
//! bound-flip ratio tests) rather than through the standard-form split,
//! so the system never grows beyond `m` rows. Pricing is Dantzig's rule
//! with the same degenerate-streak fallback to Bland's rule as the dense
//! kernel.
//!
//! Warm re-solves: [`Problem::set_objective`] / [`set_bounds`] /
//! [`set_rhs`] leave the coefficient matrix untouched, so the previous
//! optimal basis *and its inverse* are still exact. A re-solve checks
//! the saved basis for primal feasibility under the new data and, when
//! it holds (the common frame-to-frame case), resumes pricing from
//! there — typically zero or a handful of pivots. A basis that went
//! primal-infeasible is discarded for the cold all-slack start, so the
//! objective and feasibility verdict never depend on workspace history.
//!
//! Entry point: [`Problem::solve_network_with`], which transparently
//! falls back to the dense path ([`Problem::solve_with`]) for problems
//! outside packing form. Results agree with the dense solver's
//! objective to [`TOLERANCE`] — property-tested over randomized flow
//! instances in `tests/network_equivalence.rs`.
//!
//! [`Problem::set_objective`]: crate::Problem::set_objective
//! [`set_bounds`]: crate::Problem::set_bounds
//! [`set_rhs`]: crate::Problem::set_rhs
//! [`Problem::solve_network_with`]: crate::Problem::solve_network_with
//! [`Problem::solve_with`]: crate::Problem::solve_with

// Revised-simplex kernel: every index is a row below `m` or a column
// below `n + m`, minted in one construction pass (columns from the
// problem's validated terms, rows from its constraint count) and
// preserved by every pivot. Runtime bound checks in the `O(m²)` inner
// loops would be pure overhead, exactly as in the dense kernel.
// audit:allow-file(slice-index): kernel indices are bounded by the n/m the buffers were sized with; see module note
#![allow(clippy::indexing_slicing)]

use crate::model::{Problem, Relation, Sense};
use crate::simplex::DEGENERATE_STREAK_LIMIT;
use crate::solution::Solution;
use crate::workspace::LpWorkspace;
use crate::{LpError, TOLERANCE};

/// Feasibility slack allowed when deciding whether a saved basis is
/// still primal-feasible for re-solved data (looser than the pricing
/// tolerance: a basic value overshooting its bound by rounding noise is
/// repaired by the ratio test, not worth a cold restart).
const WARM_FEAS_TOL: f64 = 1e-7;

/// Whether `p` is in packing form: every constraint `≤` with a
/// non-negative right-hand side and every variable bounded `[0, u]`
/// with `u` finite. Exactly the problems [`solve`] handles natively.
pub(crate) fn is_network_form(p: &Problem) -> bool {
    p.vars.iter().all(|v| v.lo == 0.0 && v.up.is_finite())
        && p.constraints
            .iter()
            .all(|c| c.relation == Relation::Le && c.rhs >= 0.0)
}

/// The saved state of a successful network solve: the optimal basis,
/// the nonbasic bound statuses, and the basis inverse (still exact
/// after `set_objective`/`set_bounds`/`set_rhs` edits, which never
/// touch the coefficient matrix).
#[derive(Debug, Clone)]
pub(crate) struct NetworkBasis {
    /// Structural variable count the basis was built for.
    pub(crate) n: usize,
    /// Constraint row count the basis was built for.
    pub(crate) m: usize,
    /// Basic column per row, each `< n + m`.
    pub(crate) basis: Vec<usize>,
    /// Nonbasic-at-upper-bound flags, one per column (`n + m`).
    pub(crate) at_upper: Vec<bool>,
    /// Row-major `m × m` basis inverse.
    pub(crate) binv: Vec<f64>,
}

/// Solver state for one packing-form solve.
struct Net {
    n: usize,
    m: usize,
    /// Column-wise sparse structural matrix: `cols[j]` holds the
    /// `(row, coeff)` entries of variable `j`. Slack columns (`n + i`)
    /// are the implicit identity.
    cols: Vec<Vec<(usize, f64)>>,
    /// Minimization-sense costs of the structural columns.
    cost: Vec<f64>,
    /// Upper bounds of the structural columns (slacks are unbounded).
    upper: Vec<f64>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    at_upper: Vec<bool>,
    in_basis: Vec<bool>,
    /// Row-major `m × m` basis inverse.
    binv: Vec<f64>,
    /// Values of the basic variables, row-aligned with `basis`.
    xb: Vec<f64>,
}

impl Net {
    fn from_problem(p: &Problem) -> Self {
        let n = p.vars.len();
        let m = p.constraints.len();
        let sign = match p.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (i, c) in p.constraints.iter().enumerate() {
            for &(j, a) in &c.terms {
                if a != 0.0 {
                    cols[j].push((i, a));
                }
            }
        }
        Net {
            n,
            m,
            cols,
            cost: p.vars.iter().map(|v| sign * v.obj).collect(),
            upper: p.vars.iter().map(|v| v.up).collect(),
            rhs: p.constraints.iter().map(|c| c.rhs).collect(),
            basis: Vec::new(),
            at_upper: vec![false; n + m],
            in_basis: vec![false; n + m],
            binv: Vec::new(),
            xb: vec![0.0; m],
        }
    }

    fn col_upper(&self, j: usize) -> f64 {
        if j < self.n {
            self.upper[j]
        } else {
            f64::INFINITY
        }
    }

    fn col_cost(&self, j: usize) -> f64 {
        if j < self.n {
            self.cost[j]
        } else {
            0.0
        }
    }

    /// Installs the cold all-slack basis (`x = 0`, `s = b`), feasible by
    /// packing form (`b ≥ 0`).
    fn install_slack_basis(&mut self) {
        let m = self.m;
        self.basis.clear();
        self.basis.extend(self.n..self.n + m);
        self.at_upper.iter_mut().for_each(|f| *f = false);
        self.in_basis.iter_mut().for_each(|f| *f = false);
        for i in 0..m {
            self.in_basis[self.n + i] = true;
        }
        self.binv.clear();
        self.binv.resize(m * m, 0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        self.compute_xb();
    }

    /// Installs a saved basis; returns whether it is primal-feasible for
    /// the current bounds and right-hand sides.
    fn install_saved(&mut self, saved: NetworkBasis) -> bool {
        self.basis = saved.basis;
        self.at_upper = saved.at_upper;
        self.binv = saved.binv;
        self.in_basis.iter_mut().for_each(|f| *f = false);
        for &j in &self.basis {
            self.in_basis[j] = true;
            self.at_upper[j] = false;
        }
        // A nonbasic structural pinned at its (possibly re-bounded)
        // upper must still have one; zero-width boxes are fine either
        // way.
        for j in 0..self.n {
            if self.at_upper[j] && !self.upper[j].is_finite() {
                return false;
            }
        }
        self.compute_xb();
        self.basis
            .iter()
            .zip(&self.xb)
            .all(|(&j, &x)| x >= -WARM_FEAS_TOL && x <= self.col_upper(j) + WARM_FEAS_TOL)
    }

    /// Recomputes the basic values `x_B = B⁻¹·(b − Σ_{j at upper} Aⱼuⱼ)`
    /// from the current inverse (fresh product, not the incremental
    /// pivot updates — also the accuracy refresh before extraction).
    fn compute_xb(&mut self) {
        let m = self.m;
        let mut reduced = self.rhs.clone();
        for j in 0..self.n {
            if self.at_upper[j] && !self.in_basis[j] {
                let u = self.upper[j];
                if u != 0.0 {
                    for &(r, a) in &self.cols[j] {
                        reduced[r] -= a * u;
                    }
                }
            }
        }
        for i in 0..m {
            let row = &self.binv[i * m..(i + 1) * m];
            self.xb[i] = row.iter().zip(&reduced).map(|(&b, &r)| b * r).sum();
        }
    }

    /// `y = c_Bᵀ B⁻¹`, the simplex multipliers.
    fn multipliers(&self, y: &mut Vec<f64>) {
        let m = self.m;
        y.clear();
        y.resize(m, 0.0);
        for (k, &j) in self.basis.iter().enumerate() {
            let cb = self.col_cost(j);
            if cb != 0.0 {
                let row = &self.binv[k * m..(k + 1) * m];
                for (yi, &b) in y.iter_mut().zip(row) {
                    *yi += cb * b;
                }
            }
        }
    }

    /// Reduced cost of column `j` given multipliers `y`.
    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            let dot: f64 = self.cols[j].iter().map(|&(r, a)| y[r] * a).sum();
            self.cost[j] - dot
        } else {
            -y[j - self.n]
        }
    }

    /// `w = B⁻¹ Aⱼ`, the entering column in the basis frame.
    fn direction(&self, j: usize, w: &mut Vec<f64>) {
        let m = self.m;
        w.clear();
        w.resize(m, 0.0);
        if j < self.n {
            for &(r, a) in &self.cols[j] {
                for (i, wi) in w.iter_mut().enumerate() {
                    *wi += self.binv[i * m + r] * a;
                }
            }
        } else {
            let r = j - self.n;
            for (i, wi) in w.iter_mut().enumerate() {
                *wi = self.binv[i * m + r];
            }
        }
    }

    /// Runs primal simplex from the installed feasible basis to
    /// optimality. Returns the pivot count.
    fn optimize(&mut self, budget: usize) -> Result<usize, LpError> {
        let m = self.m;
        let mut y: Vec<f64> = Vec::new();
        let mut w: Vec<f64> = Vec::new();
        let mut pivots = 0usize;
        let mut bland = false;
        let mut degenerate_streak = 0usize;
        loop {
            self.multipliers(&mut y);
            // Pricing: an at-lower column improves when its reduced cost
            // is negative, an at-upper column when it is positive.
            let mut enter: Option<usize> = None;
            let mut best = TOLERANCE;
            for j in 0..self.n + m {
                if self.in_basis[j] {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let violation = if self.at_upper[j] { d } else { -d };
                if violation > TOLERANCE {
                    if bland {
                        enter = Some(j);
                        break;
                    }
                    if violation > best {
                        best = violation;
                        enter = Some(j);
                    }
                }
            }
            let Some(j) = enter else {
                return Ok(pivots);
            };
            if pivots >= budget {
                return Err(LpError::IterationLimit { pivots });
            }
            pivots += 1;

            self.direction(j, &mut w);
            // The entering variable moves away from its current bound by
            // `t ≥ 0`: up from lower (σ = +1) or down from upper (σ = −1);
            // basic values respond as `x_B −= σ·t·w`.
            let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };
            let mut t = self.col_upper(j); // bound-flip limit: box width
            let mut leave: Option<(usize, bool)> = None;
            for (r, &wr0) in w.iter().enumerate() {
                let wr = sigma * wr0;
                if wr > TOLERANCE {
                    let ratio = (self.xb[r] / wr).max(0.0);
                    if ratio < t {
                        t = ratio;
                        leave = Some((r, false));
                    }
                } else if wr < -TOLERANCE {
                    let ub = self.col_upper(self.basis[r]);
                    if ub.is_finite() {
                        let ratio = ((ub - self.xb[r]) / -wr).max(0.0);
                        if ratio < t {
                            t = ratio;
                            leave = Some((r, true));
                        }
                    }
                }
            }
            if t.is_infinite() {
                return Err(LpError::Unbounded);
            }

            if t <= TOLERANCE {
                degenerate_streak += 1;
                if degenerate_streak >= DEGENERATE_STREAK_LIMIT {
                    bland = true;
                }
            } else {
                degenerate_streak = 0;
                bland = false;
            }

            for (xb, &wr) in self.xb.iter_mut().zip(&w) {
                *xb -= sigma * t * wr;
            }
            match leave {
                None => {
                    // The entering variable crossed its box without any
                    // basic variable blocking: a bound flip, no basis
                    // change and no inverse update.
                    self.at_upper[j] = !self.at_upper[j];
                }
                Some((r, leaves_at_upper)) => {
                    let out = self.basis[r];
                    self.in_basis[out] = false;
                    self.at_upper[out] = leaves_at_upper;
                    self.basis[r] = j;
                    self.in_basis[j] = true;
                    self.at_upper[j] = false;
                    self.xb[r] = if sigma > 0.0 {
                        t
                    } else {
                        self.col_upper(j) - t
                    };
                    // Rank-one inverse update: pivot the r-th row on w_r.
                    let piv = w[r];
                    for k in 0..m {
                        self.binv[r * m + k] /= piv;
                    }
                    for (i, &f) in w.iter().enumerate() {
                        if i == r || f == 0.0 {
                            continue;
                        }
                        for k in 0..m {
                            self.binv[i * m + k] -= f * self.binv[r * m + k];
                        }
                    }
                }
            }
        }
    }

    /// Maps the optimal basis back to model space, snapping values onto
    /// their box within [`TOLERANCE`].
    fn extract(&mut self, p: &Problem, pivots: usize) -> Solution {
        self.compute_xb();
        let mut x = vec![0.0; self.n];
        for (j, xj) in x.iter_mut().enumerate() {
            if !self.in_basis[j] && self.at_upper[j] {
                *xj = self.upper[j];
            }
        }
        for (r, &j) in self.basis.iter().enumerate() {
            if j < self.n {
                x[j] = self.xb[r];
            }
        }
        for (j, v) in x.iter_mut().enumerate() {
            if v.abs() < TOLERANCE {
                *v = 0.0;
            } else if (*v - self.upper[j]).abs() < TOLERANCE {
                *v = self.upper[j];
            }
        }
        let objective = p.objective_at(&x);
        Solution::new(x, objective, pivots)
    }

    /// Packages the final basis for the workspace's next warm start.
    fn into_saved(self) -> NetworkBasis {
        NetworkBasis {
            n: self.n,
            m: self.m,
            basis: self.basis,
            at_upper: self.at_upper,
            binv: self.binv,
        }
    }
}

/// Solves `p` on the sparse revised-simplex path when it is in packing
/// form, otherwise via the dense two-phase solver. See the module docs.
pub(crate) fn solve(p: &Problem, ws: &mut LpWorkspace) -> Result<Solution, LpError> {
    if !is_network_form(p) {
        return crate::standard::solve(p, ws);
    }
    let mut net = Net::from_problem(p);
    let warm = match ws.take_matching_network_basis(net.n, net.m) {
        Some(saved) => {
            if net.install_saved(saved) {
                true
            } else {
                ws.note_warm_reject();
                net.install_slack_basis();
                false
            }
        }
        None => {
            net.install_slack_basis();
            false
        }
    };
    let budget = p.pivot_budget(net.m, net.n + net.m);
    let outcome = net.optimize(budget);
    if warm {
        ws.note_warm();
    } else {
        ws.note_cold();
    }
    let pivots = outcome?;
    let sol = net.extract(p, pivots);
    ws.save_network_basis(net.into_saved());
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn detects_packing_form() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 2.0, 3.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.5).unwrap();
        assert!(p.is_network_form());
        // A Ge row breaks the form.
        let mut q = p.clone();
        q.add_constraint(&[(x, 1.0)], Relation::Ge, 0.5).unwrap();
        assert!(!q.is_network_form());
        // A negative rhs breaks the form.
        let mut r = p.clone();
        r.add_constraint(&[(x, -1.0)], Relation::Le, -0.5).unwrap();
        assert!(!r.is_network_form());
        // An unbounded or shifted variable breaks the form.
        let mut s = p.clone();
        s.add_var("free", 0.0, f64::INFINITY, 1.0).unwrap();
        assert!(!s.is_network_form());
        let mut t = p.clone();
        t.add_var("lo", 1.0, 2.0, 1.0).unwrap();
        assert!(!t.is_network_form());
    }

    #[test]
    fn solves_a_small_packing_lp() {
        // max 3x + 2y  s.t.  x + y ≤ 4, x + 3y ≤ 6, x ≤ 3, y ≤ 5.
        // Optimum at x = 3, y = 1: objective 11.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 3.0, 3.0).unwrap();
        let y = p.add_var("y", 0.0, 5.0, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0)
            .unwrap();
        let mut ws = LpWorkspace::new();
        let sol = p.solve_network_with(&mut ws).unwrap();
        assert_close(sol.objective(), 11.0);
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), 1.0);
        assert_eq!(ws.cold_solves(), 1);
        // The dense path agrees.
        assert_close(p.solve().unwrap().objective(), 11.0);
    }

    #[test]
    fn bound_flips_handle_unconstrained_columns() {
        // No rows at all: profitable variables flip straight to their
        // upper bound, costly ones stay at zero.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 2.0, -1.5).unwrap();
        let y = p.add_var("y", 0.0, 3.0, 2.0).unwrap();
        let sol = p.solve_network_with(&mut LpWorkspace::new()).unwrap();
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 0.0);
        assert_close(sol.objective(), -3.0);
    }

    #[test]
    fn warm_resolve_reuses_the_basis() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 3.0, 3.0).unwrap();
        let y = p.add_var("y", 0.0, 5.0, 2.0).unwrap();
        let cap = p
            .add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0)
            .unwrap();
        let mut ws = LpWorkspace::new();
        let first = p.solve_network_with(&mut ws).unwrap();
        assert_close(first.objective(), 11.0);
        // Re-price: the old vertex stays feasible, the warm path resumes
        // from it and pivots to the new optimum (y = 2 now dominates).
        p.set_objective(y, 10.0).unwrap();
        let second = p.solve_network_with(&mut ws).unwrap();
        assert_close(second.objective(), 20.0);
        assert_eq!(ws.cold_solves(), 1);
        assert_eq!(ws.warm_solves(), 1);
        assert!(ws.last_was_warm());
        // Tighten it below the warm vertex: the saved basis goes primal-
        // infeasible and the solver falls back cold, same answer as a
        // fresh workspace.
        p.set_rhs(cap, 1.0).unwrap();
        let third = p.solve_network_with(&mut ws).unwrap();
        let cold = p.solve_network_with(&mut LpWorkspace::new()).unwrap();
        assert_close(third.objective(), cold.objective());
        assert_eq!(ws.warm_rejects(), 1);
        assert_eq!(ws.cold_solves(), 2);
    }

    #[test]
    fn falls_back_to_dense_outside_packing_form() {
        // A Ge row forces the dense path; the answer still comes back.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 4.0).unwrap();
        let mut ws = LpWorkspace::new();
        let sol = p.solve_network_with(&mut ws).unwrap();
        assert_close(sol.value(x), 4.0);
        assert_eq!(ws.cold_solves(), 1);
    }

    #[test]
    fn degenerate_rows_terminate() {
        // Several zero-rhs rows force degenerate pivots; the Bland
        // fallback guarantees termination.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 1.0, 1.0).unwrap();
        let y = p.add_var("y", 0.0, 1.0, 1.0).unwrap();
        let z = p.add_var("z", 0.0, 1.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 0.0)
            .unwrap();
        p.add_constraint(&[(y, 1.0), (z, -1.0)], Relation::Le, 0.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Le, 2.0)
            .unwrap();
        let sol = p.solve_network_with(&mut LpWorkspace::new()).unwrap();
        assert_close(sol.objective(), p.solve().unwrap().objective());
    }

    #[test]
    fn zero_width_boxes_stay_pinned() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 0.0, 5.0).unwrap();
        let y = p.add_var("y", 0.0, 2.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 3.0)
            .unwrap();
        let sol = p.solve_network_with(&mut LpWorkspace::new()).unwrap();
        assert_close(sol.value(x), 0.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn infeasibility_is_impossible_but_bounds_still_validate() {
        // Packing form is always feasible (x = 0); a malformed box is
        // caught at model build time, not here.
        let mut p = Problem::minimize();
        assert!(p.add_var("x", 2.0, 1.0, 0.0).is_err());
    }
}
