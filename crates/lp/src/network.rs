//! Sparse revised simplex for network-structured ("packing-form") LPs,
//! on a **factorized basis** with allocation-free warm re-solves.
//!
//! The fleet flow problems — per-frame export settlement, the
//! prospective directive LP, and the routing transportation LP — share
//! one shape: every constraint is `Σ aᵢⱼ·xⱼ ≤ bᵢ` with `bᵢ ≥ 0`, and
//! every variable is box-bounded `0 ≤ xⱼ ≤ uⱼ` with `uⱼ` finite. That
//! shape has two consequences the dense two-phase tableau cannot
//! exploit: **the all-slack basis is feasible** (`x = 0`, `s = b ≥ 0`),
//! so phase 1 never runs, and **columns are sparse** (a flow variable
//! touches its donor row, its need row and maybe a pool row).
//!
//! # The factorized basis
//!
//! Instead of an explicit dense `m × m` basis inverse with `O(m²)`
//! rank-one pivot updates, the kernel holds `B⁻¹` in **product form**
//! (an eta file, [`crate::factor::Factorization`]): each pivot appends
//! one elementary eta matrix built from the entering direction —
//! `O(nnz)` work — and the two solves per pivot become sparse
//! FTRAN/BTRAN passes over the file. The file is rebuilt from the basis
//! columns (*refactorization*) whenever it grows past the workspace's
//! eta cap ([`LpWorkspace::set_network_refactor_cap`], default
//! [`DEFAULT_REFACTOR_ETA_CAP`]) or a pivot element falls below
//! [`SMALL_PIVOT_TOL`] — the drift trigger. Refactorization processes
//! slack columns first (free identity etas) and structural columns in
//! ascending-sparsity order with largest-pivot row selection, so it is
//! deterministic and near-linear on the fleet bases.
//!
//! # Allocation-free warm re-solves
//!
//! All solver state — the column-major problem image, the basis and its
//! factorization, every scratch vector (`y`, `w`, right-hand-side work,
//! the pricing candidate list) — lives in arenas owned by the
//! [`LpWorkspace`] and is reused across solves with `clear()` +
//! `extend()`. After a first priming solve of a given shape, re-solves
//! along a [`Problem::set_objective`] / [`set_bounds`] / [`set_rhs`]
//! edit chain perform **zero heap allocations** when the caller returns
//! the previous [`Solution`]'s buffer via [`LpWorkspace::recycle`]
//! (gated by a counting-allocator test in the bench harness).
//!
//! # Pricing
//!
//! Dantzig pricing is upgraded to a **candidate-list partial-pricing**
//! scheme: a cyclic sweep refills a bounded list of attractive columns,
//! later iterations re-price only that list, and optimality is declared
//! only after a full sweep finds nothing attractive. The same
//! degenerate-streak fallback to Bland's rule (full lowest-index scans)
//! as the dense kernel guarantees termination.
//!
//! # Warm re-solves
//!
//! [`Problem::set_objective`] / [`set_bounds`] / [`set_rhs`] leave the
//! coefficient matrix untouched, so the previous optimal basis is still
//! meaningful. A re-solve refactorizes that basis from the current
//! columns (deterministic, so a checkpoint-restored workspace continues
//! bit-identically), checks it for primal feasibility under the new
//! data and, when it holds (the common frame-to-frame case), resumes
//! pricing from there — typically zero or a handful of pivots. A basis
//! that went primal-infeasible or singular is discarded for the cold
//! all-slack start, so the objective and feasibility verdict never
//! depend on workspace history.
//!
//! Entry point: [`Problem::solve_network_with`], which transparently
//! falls back to the dense path ([`Problem::solve_with`]) for problems
//! outside packing form. Results agree with the dense solver's
//! objective to [`TOLERANCE`] — property-tested over randomized flow
//! instances and ≥200-edit warm chains in `tests/network_equivalence.rs`
//! and `tests/factorized_warm_chain.rs`. Kernel telemetry (pivots, eta
//! length, refactorizations, peak scratch bytes, ns per solve) is
//! recorded on the workspace ([`LpWorkspace::stats`]).
//!
//! [`Problem::set_objective`]: crate::Problem::set_objective
//! [`set_bounds`]: crate::Problem::set_bounds
//! [`set_rhs`]: crate::Problem::set_rhs
//! [`Problem::solve_network_with`]: crate::Problem::solve_network_with
//! [`Problem::solve_with`]: crate::Problem::solve_with
//! [`Solution`]: crate::Solution

// Revised-simplex kernel: every index is a row below `m` or a column
// below `n + m`, minted in one construction pass (columns from the
// problem's validated terms, rows from its constraint count) and
// preserved by every pivot. Runtime bound checks in the sparse inner
// loops would be pure overhead, exactly as in the dense kernel.
// audit:allow-file(slice-index): kernel indices are bounded by the n/m the buffers were sized with; see module note
#![allow(clippy::indexing_slicing)]
// Timing here is telemetry only: the measured nanoseconds land in
// `SolverStats::solve_ns` for perf artifacts and are never read back
// into pricing, pivoting, or any other result-producing decision.
// audit:allow-file(wall-clock): solve timing is write-only telemetry, never steers the solve

use std::time::Instant;

use crate::factor::Factorization;
use crate::model::{Problem, Relation, Sense};
use crate::simplex::DEGENERATE_STREAK_LIMIT;
use crate::solution::Solution;
use crate::workspace::LpWorkspace;
use crate::{LpError, TOLERANCE};

/// Feasibility slack allowed when deciding whether a saved basis is
/// still primal-feasible for re-solved data (looser than the pricing
/// tolerance: a basic value overshooting its bound by rounding noise is
/// repaired by the ratio test, not worth a cold restart).
const WARM_FEAS_TOL: f64 = 1e-7;

/// Eta-file length at which the kernel refactorizes by default. Long
/// files slow FTRAN/BTRAN and accumulate rounding drift; rebuilding
/// every ~64 pivots keeps both bounded at negligible rebuild cost.
pub(crate) const DEFAULT_REFACTOR_ETA_CAP: usize = 64;

/// Pivot magnitudes below this trigger an immediate refactorization
/// after the exchange — the drift guard: a near-singular eta amplifies
/// rounding in every later solve against the file.
const SMALL_PIVOT_TOL: f64 = 1e-7;

/// Partial-pricing candidate list size: a refill sweep stops once this
/// many attractive columns are in hand, and later pivots price only the
/// list until it runs dry.
const CANDIDATE_TARGET: usize = 32;

/// Pivots smaller than this are refused outright during
/// refactorization — the basis is treated as numerically singular.
const SINGULAR_TOL: f64 = 1e-9;

/// Whether `p` is in packing form: every constraint `≤` with a
/// non-negative right-hand side and every variable bounded `[0, u]`
/// with `u` finite. Exactly the problems [`solve`] handles natively.
pub(crate) fn is_network_form(p: &Problem) -> bool {
    p.vars.iter().all(|v| v.lo == 0.0 && v.up.is_finite())
        && p.constraints
            .iter()
            .all(|c| c.relation == Relation::Le && c.rhs >= 0.0)
}

/// The saved state of a successful network solve: the optimal basis and
/// the nonbasic bound statuses. The factorization is *not* saved — it
/// is rebuilt deterministically from the current problem's columns on
/// the next warm install, which keeps checkpoints small and makes a
/// restored workspace continue bit-identically to the donor.
///
/// Lives in-place inside the workspace (the `live` flag plays the role
/// an `Option` used to) so warm chains never reallocate it.
#[derive(Debug, Clone, Default)]
pub(crate) struct NetworkBasis {
    /// Whether the stored basis is valid for reuse. Cleared when the
    /// basis is consumed by a solve attempt and re-set on success.
    pub(crate) live: bool,
    /// Structural variable count the basis was built for.
    pub(crate) n: usize,
    /// Constraint row count the basis was built for.
    pub(crate) m: usize,
    /// Basic column per row, each `< n + m`.
    pub(crate) basis: Vec<usize>,
    /// Nonbasic-at-upper-bound flags, one per column (`n + m`).
    pub(crate) at_upper: Vec<bool>,
}

impl NetworkBasis {
    /// Overwrites this saved basis from the solver state, reusing the
    /// existing buffers.
    fn store_from(&mut self, state: &NetState) {
        self.live = true;
        self.n = state.n;
        self.m = state.m;
        self.basis.clear();
        self.basis.extend_from_slice(&state.basis);
        self.at_upper.clear();
        self.at_upper.extend_from_slice(&state.at_upper);
    }
}

/// Persistent solver state for the packing-form kernel: the column-major
/// problem image, basis, factorization and every scratch vector, all
/// owned by the [`LpWorkspace`] and recycled across solves.
#[derive(Debug, Clone, Default)]
pub(crate) struct NetState {
    n: usize,
    m: usize,
    /// Column-major sparse structural matrix in CSC form: column `j`
    /// owns `col_row/col_val[col_off[j]..col_off[j + 1]]`, rows
    /// ascending. Slack columns (`n + i`) are the implicit identity.
    col_off: Vec<u32>,
    col_row: Vec<u32>,
    col_val: Vec<f64>,
    /// Cursor scratch for the CSC fill pass.
    col_cursor: Vec<u32>,
    /// Minimization-sense costs of the structural columns.
    cost: Vec<f64>,
    /// Upper bounds of the structural columns (slacks are unbounded).
    upper: Vec<f64>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    at_upper: Vec<bool>,
    in_basis: Vec<bool>,
    /// Values of the basic variables, row-aligned with `basis`.
    xb: Vec<f64>,
    /// The basis inverse in product (eta-file) form.
    factor: Factorization,
    /// BTRAN scratch: the simplex multipliers.
    y: Vec<f64>,
    /// FTRAN scratch: the entering direction.
    w: Vec<f64>,
    /// Right-hand-side work vector for `compute_xb`.
    rhs_work: Vec<f64>,
    /// Partial-pricing candidate list (column indices).
    candidates: Vec<u32>,
    /// Cyclic pricing cursor — reset at every solve so results never
    /// depend on workspace history.
    cursor: usize,
    /// Refactorization scratch: processing order, pivoted-row marks and
    /// the reordered basis under construction.
    order: Vec<u32>,
    row_pivoted: Vec<bool>,
    new_basis: Vec<usize>,
    /// Eta cap before a refactorization is forced; `0` means
    /// [`DEFAULT_REFACTOR_ETA_CAP`]. Set via
    /// [`LpWorkspace::set_network_refactor_cap`].
    pub(crate) refactor_eta_cap: usize,
    /// Eta-file length right after the last (re)factorization. The cap
    /// bounds *update* etas appended since then — the base factorization
    /// itself can legitimately hold one eta per structural column, far
    /// past the cap on large bases.
    base_etas: usize,
    /// Per-solve telemetry, reset by [`load`](Self::load) and drained
    /// into the workspace counters by [`solve`].
    solve_pivots: u64,
    solve_refactorizations: u64,
    eta_entry_peak: usize,
}

impl NetState {
    /// Rebuilds the problem image in place (no allocation once the
    /// arenas have grown to the template's working set) and resets the
    /// per-solve scratch so results never depend on workspace history.
    fn load(&mut self, p: &Problem) {
        let n = p.vars.len();
        let m = p.constraints.len();
        self.n = n;
        self.m = m;
        let sign = match p.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        self.cost.clear();
        self.cost.extend(p.vars.iter().map(|v| sign * v.obj));
        self.upper.clear();
        self.upper.extend(p.vars.iter().map(|v| v.up));
        self.rhs.clear();
        self.rhs.extend(p.constraints.iter().map(|c| c.rhs));

        // CSC fill: count per column, prefix-sum, scatter.
        self.col_off.clear();
        self.col_off.resize(n + 1, 0);
        for c in &p.constraints {
            for &(j, a) in &c.terms {
                if a != 0.0 {
                    self.col_off[j + 1] += 1;
                }
            }
        }
        for j in 0..n {
            self.col_off[j + 1] += self.col_off[j];
        }
        let nnz = self.col_off[n] as usize;
        self.col_row.clear();
        self.col_row.resize(nnz, 0);
        self.col_val.clear();
        self.col_val.resize(nnz, 0.0);
        self.col_cursor.clear();
        self.col_cursor.extend_from_slice(&self.col_off[..n]);
        for (i, c) in p.constraints.iter().enumerate() {
            for &(j, a) in &c.terms {
                if a != 0.0 {
                    let k = self.col_cursor[j] as usize;
                    self.col_row[k] = i as u32;
                    self.col_val[k] = a;
                    self.col_cursor[j] += 1;
                }
            }
        }

        self.xb.clear();
        self.xb.resize(m, 0.0);
        self.candidates.clear();
        self.cursor = 0;
        self.solve_pivots = 0;
        self.solve_refactorizations = 0;
        self.eta_entry_peak = 0;
    }

    fn col_upper(&self, j: usize) -> f64 {
        if j < self.n {
            self.upper[j]
        } else {
            f64::INFINITY
        }
    }

    fn col_cost(&self, j: usize) -> f64 {
        if j < self.n {
            self.cost[j]
        } else {
            0.0
        }
    }

    fn eta_cap(&self) -> usize {
        if self.refactor_eta_cap == 0 {
            DEFAULT_REFACTOR_ETA_CAP
        } else {
            self.refactor_eta_cap
        }
    }

    /// Installs the cold all-slack basis (`x = 0`, `s = b`), feasible by
    /// packing form (`b ≥ 0`). The factorization is the identity.
    fn install_slack_basis(&mut self) {
        let (n, m) = (self.n, self.m);
        self.basis.clear();
        self.basis.extend(n..n + m);
        self.at_upper.clear();
        self.at_upper.resize(n + m, false);
        self.in_basis.clear();
        self.in_basis.resize(n + m, false);
        for i in 0..m {
            self.in_basis[n + i] = true;
        }
        self.factor.reset(m);
        self.base_etas = 0;
        self.compute_xb();
    }

    /// Installs a saved basis: copies it in, refactorizes it against the
    /// *current* columns, and returns whether it is both nonsingular and
    /// primal-feasible for the current bounds and right-hand sides.
    fn install_saved(&mut self, basis: &[usize], at_upper: &[bool]) -> bool {
        let (n, m) = (self.n, self.m);
        debug_assert_eq!(basis.len(), m);
        debug_assert_eq!(at_upper.len(), n + m);
        self.basis.clear();
        self.basis.extend_from_slice(basis);
        self.at_upper.clear();
        self.at_upper.extend_from_slice(at_upper);
        self.in_basis.clear();
        self.in_basis.resize(n + m, false);
        for &j in &self.basis {
            if j >= n + m {
                return false;
            }
            self.in_basis[j] = true;
        }
        for (j, f) in self.in_basis.iter().enumerate() {
            if *f {
                self.at_upper[j] = false;
            }
        }
        if !self.refactorize() {
            return false;
        }
        self.compute_xb();
        self.basis
            .iter()
            .zip(&self.xb)
            .all(|(&j, &x)| x >= -WARM_FEAS_TOL && x <= self.col_upper(j) + WARM_FEAS_TOL)
    }

    /// Rebuilds the eta file from the basis columns: slack columns first
    /// (identity etas, skipped), then structural columns in ascending
    /// nnz order (ties by column index), each pivoting on its
    /// largest-magnitude entry over the still-unpivoted rows (ties by
    /// lowest row). Deterministic by construction. Returns `false` if
    /// the basis is numerically singular; the file is then unusable and
    /// the caller must fall back to the slack basis.
    fn refactorize(&mut self) -> bool {
        let (n, m) = (self.n, self.m);
        self.factor.reset(m);
        self.row_pivoted.clear();
        self.row_pivoted.resize(m, false);
        self.new_basis.clear();
        self.new_basis.resize(m, usize::MAX);
        // Slack columns: e_r pivots on its own row for free.
        for pos in 0..m {
            let j = self.basis[pos];
            if j >= n {
                let r = j - n;
                if self.row_pivoted[r] {
                    return false; // duplicate slack
                }
                self.row_pivoted[r] = true;
                self.new_basis[r] = j;
            }
        }
        // Structural columns, sparsest first (sort_unstable is in-place;
        // the (nnz, column) key is a total order, so the result is
        // deterministic).
        self.order.clear();
        for pos in 0..m {
            let j = self.basis[pos];
            if j < n {
                self.order.push(j as u32);
            }
        }
        let (col_off, order) = (&self.col_off, &mut self.order);
        order.sort_unstable_by_key(|&j| (col_off[j as usize + 1] - col_off[j as usize], j));
        for k in 0..self.order.len() {
            let j = self.order[k] as usize;
            self.w.clear();
            self.w.resize(m, 0.0);
            let (s, e) = (self.col_off[j] as usize, self.col_off[j + 1] as usize);
            for t in s..e {
                self.w[self.col_row[t] as usize] += self.col_val[t];
            }
            self.factor.ftran(&mut self.w);
            let mut r_best = usize::MAX;
            let mut v_best = SINGULAR_TOL;
            for (r, &wr) in self.w.iter().enumerate() {
                if !self.row_pivoted[r] && wr.abs() > v_best {
                    v_best = wr.abs();
                    r_best = r;
                }
            }
            if r_best == usize::MAX {
                return false; // singular (or a duplicate structural column)
            }
            if !self.factor.push_eta(r_best, &self.w) {
                return false;
            }
            self.row_pivoted[r_best] = true;
            self.new_basis[r_best] = j;
        }
        if self.new_basis.contains(&usize::MAX) {
            return false;
        }
        std::mem::swap(&mut self.basis, &mut self.new_basis);
        self.base_etas = self.factor.eta_count();
        true
    }

    /// Recomputes the basic values `x_B = B⁻¹·(b − Σ_{j at upper} Aⱼuⱼ)`
    /// through a fresh FTRAN (not the incremental pivot updates — also
    /// the accuracy refresh after each refactorization and before
    /// extraction).
    fn compute_xb(&mut self) {
        self.rhs_work.clear();
        self.rhs_work.extend_from_slice(&self.rhs);
        for j in 0..self.n {
            if self.at_upper[j] && !self.in_basis[j] {
                let u = self.upper[j];
                if u != 0.0 {
                    let (s, e) = (self.col_off[j] as usize, self.col_off[j + 1] as usize);
                    for t in s..e {
                        self.rhs_work[self.col_row[t] as usize] -= self.col_val[t] * u;
                    }
                }
            }
        }
        self.factor.ftran(&mut self.rhs_work);
        self.xb.clear();
        self.xb.extend_from_slice(&self.rhs_work);
    }

    /// `y = c_Bᵀ B⁻¹`, the simplex multipliers, via BTRAN.
    fn multipliers(&mut self) {
        self.y.clear();
        self.y.resize(self.m, 0.0);
        for (i, &j) in self.basis.iter().enumerate() {
            self.y[i] = self.col_cost(j);
        }
        self.factor.btran(&mut self.y);
    }

    /// Reduced cost of column `j` under the current multipliers.
    fn reduced_cost(&self, j: usize) -> f64 {
        if j < self.n {
            let (s, e) = (self.col_off[j] as usize, self.col_off[j + 1] as usize);
            let mut dot = 0.0;
            for t in s..e {
                dot += self.y[self.col_row[t] as usize] * self.col_val[t];
            }
            self.cost[j] - dot
        } else {
            -self.y[j - self.n]
        }
    }

    /// How much the objective improves per unit move of nonbasic column
    /// `j` off its current bound (positive = attractive).
    fn violation(&self, j: usize) -> f64 {
        let d = self.reduced_cost(j);
        if self.at_upper[j] {
            d
        } else {
            -d
        }
    }

    /// `w = B⁻¹ Aⱼ`, the entering column in the basis frame, via FTRAN.
    fn direction(&mut self, j: usize) {
        self.w.clear();
        self.w.resize(self.m, 0.0);
        if j < self.n {
            let (s, e) = (self.col_off[j] as usize, self.col_off[j + 1] as usize);
            for t in s..e {
                self.w[self.col_row[t] as usize] += self.col_val[t];
            }
        } else {
            self.w[j - self.n] = 1.0;
        }
        self.factor.ftran(&mut self.w);
    }

    /// Bland's rule: the lowest-index attractive column, by a full scan.
    /// Used only on degenerate streaks — it guarantees termination.
    fn price_bland(&self) -> Option<usize> {
        (0..self.n + self.m).find(|&j| !self.in_basis[j] && self.violation(j) > TOLERANCE)
    }

    /// Candidate-list partial pricing: re-price the standing list under
    /// the fresh multipliers and return its best column; when the list
    /// runs dry, refill it with a cyclic sweep. Returns `None` — the
    /// optimality verdict — only after a full sweep finds nothing
    /// attractive.
    fn price(&mut self) -> Option<usize> {
        let mut cands = std::mem::take(&mut self.candidates);
        let mut best: Option<usize> = None;
        let mut best_v = TOLERANCE;
        cands.retain(|&jc| {
            let j = jc as usize;
            if self.in_basis[j] {
                return false;
            }
            let v = self.violation(j);
            if v > TOLERANCE {
                if v > best_v {
                    best_v = v;
                    best = Some(j);
                }
                true
            } else {
                false
            }
        });
        self.candidates = cands;
        if best.is_some() {
            return best;
        }
        self.refill_candidates()
    }

    /// One cyclic sweep from the pricing cursor, collecting up to
    /// [`CANDIDATE_TARGET`] attractive columns; scans the entire column
    /// range before concluding nothing is attractive.
    fn refill_candidates(&mut self) -> Option<usize> {
        let total = self.n + self.m;
        if total == 0 {
            return None;
        }
        let mut cands = std::mem::take(&mut self.candidates);
        cands.clear();
        let mut best: Option<usize> = None;
        let mut best_v = TOLERANCE;
        let mut j = self.cursor % total;
        for _ in 0..total {
            if !self.in_basis[j] {
                let v = self.violation(j);
                if v > TOLERANCE {
                    cands.push(j as u32);
                    if v > best_v {
                        best_v = v;
                        best = Some(j);
                    }
                    if cands.len() >= CANDIDATE_TARGET {
                        j = (j + 1) % total;
                        break;
                    }
                }
            }
            j = (j + 1) % total;
        }
        self.cursor = j;
        self.candidates = cands;
        best
    }

    /// Runs primal simplex from the installed feasible basis to
    /// optimality. Returns the pivot count.
    fn optimize(&mut self, budget: usize) -> Result<usize, LpError> {
        let eta_cap = self.eta_cap();
        let mut pivots = 0usize;
        let mut bland = false;
        let mut degenerate_streak = 0usize;
        loop {
            self.multipliers();
            let enter = if bland {
                self.price_bland()
            } else {
                self.price()
            };
            let Some(j) = enter else {
                self.solve_pivots = pivots as u64;
                return Ok(pivots);
            };
            if pivots >= budget {
                self.solve_pivots = pivots as u64;
                return Err(LpError::IterationLimit { pivots });
            }
            pivots += 1;

            self.direction(j);
            // The entering variable moves away from its current bound by
            // `t ≥ 0`: up from lower (σ = +1) or down from upper (σ = −1);
            // basic values respond as `x_B −= σ·t·w`.
            let sigma = if self.at_upper[j] { -1.0 } else { 1.0 };
            let mut t = self.col_upper(j); // bound-flip limit: box width
            let mut leave: Option<(usize, bool)> = None;
            for (r, &wr0) in self.w.iter().enumerate() {
                let wr = sigma * wr0;
                if wr > TOLERANCE {
                    let ratio = (self.xb[r] / wr).max(0.0);
                    if ratio < t {
                        t = ratio;
                        leave = Some((r, false));
                    }
                } else if wr < -TOLERANCE {
                    let ub = self.col_upper(self.basis[r]);
                    if ub.is_finite() {
                        let ratio = ((ub - self.xb[r]) / -wr).max(0.0);
                        if ratio < t {
                            t = ratio;
                            leave = Some((r, true));
                        }
                    }
                }
            }
            if t.is_infinite() {
                self.solve_pivots = pivots as u64;
                return Err(LpError::Unbounded);
            }

            if t <= TOLERANCE {
                degenerate_streak += 1;
                if degenerate_streak >= DEGENERATE_STREAK_LIMIT {
                    bland = true;
                }
            } else {
                degenerate_streak = 0;
                bland = false;
            }

            for (xb, &wr) in self.xb.iter_mut().zip(&self.w) {
                *xb -= sigma * t * wr;
            }
            match leave {
                None => {
                    // The entering variable crossed its box without any
                    // basic variable blocking: a bound flip, no basis
                    // change and no factorization update.
                    self.at_upper[j] = !self.at_upper[j];
                }
                Some((r, leaves_at_upper)) => {
                    let out = self.basis[r];
                    self.in_basis[out] = false;
                    self.at_upper[out] = leaves_at_upper;
                    self.basis[r] = j;
                    self.in_basis[j] = true;
                    self.at_upper[j] = false;
                    self.xb[r] = if sigma > 0.0 {
                        t
                    } else {
                        self.col_upper(j) - t
                    };
                    // Append the eta for this exchange; refactorize on
                    // the update-eta cap (appends since the last rebuild
                    // — the base factorization itself may hold one eta
                    // per structural column) or the small-pivot (drift)
                    // trigger, or if the pivot was too small to divide
                    // by at all.
                    let small = self.w[r].abs() < SMALL_PIVOT_TOL;
                    let pushed = self.factor.push_eta(r, &self.w);
                    self.eta_entry_peak = self.eta_entry_peak.max(self.factor.entry_count());
                    let updates = self.factor.eta_count().saturating_sub(self.base_etas);
                    if !pushed || small || updates >= eta_cap {
                        if self.refactorize() {
                            self.solve_refactorizations += 1;
                            self.compute_xb();
                        } else {
                            // Numerically wedged basis: restart cold
                            // from the all-slack basis within the same
                            // pivot budget — always feasible, always
                            // correct, never wrong answers from a
                            // drifted file.
                            self.install_slack_basis();
                        }
                    }
                }
            }
        }
    }

    /// Maps the optimal basis back to model space, snapping values onto
    /// their box within [`TOLERANCE`]. The value buffer comes from the
    /// workspace's recycle pool, so warm chains that return it via
    /// [`LpWorkspace::recycle`] allocate nothing here.
    fn extract(&mut self, p: &Problem, pivots: usize, pool: &mut Vec<f64>) -> Solution {
        self.compute_xb();
        let mut x = std::mem::take(pool);
        x.clear();
        x.resize(self.n, 0.0);
        for (j, xj) in x.iter_mut().enumerate() {
            if !self.in_basis[j] && self.at_upper[j] {
                *xj = self.upper[j];
            }
        }
        for (r, &j) in self.basis.iter().enumerate() {
            if j < self.n {
                x[j] = self.xb[r];
            }
        }
        for (j, v) in x.iter_mut().enumerate() {
            if v.abs() < TOLERANCE {
                *v = 0.0;
            } else if (*v - self.upper[j]).abs() < TOLERANCE {
                *v = self.upper[j];
            }
        }
        let objective = p.objective_at(&x);
        Solution::new(x, objective, pivots)
    }

    /// Bytes of heap capacity currently pinned by the kernel arenas —
    /// the `peak_scratch_bytes` telemetry input.
    fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        let u32s = self.col_off.capacity()
            + self.col_row.capacity()
            + self.col_cursor.capacity()
            + self.candidates.capacity()
            + self.order.capacity();
        let f64s = self.col_val.capacity()
            + self.cost.capacity()
            + self.upper.capacity()
            + self.rhs.capacity()
            + self.xb.capacity()
            + self.y.capacity()
            + self.w.capacity()
            + self.rhs_work.capacity();
        let usizes = self.basis.capacity() + self.new_basis.capacity();
        let bools =
            self.at_upper.capacity() + self.in_basis.capacity() + self.row_pivoted.capacity();
        u32s * size_of::<u32>()
            + f64s * size_of::<f64>()
            + usizes * size_of::<usize>()
            + bools
            + self.factor.capacity_bytes()
    }
}

/// Solves `p` on the sparse revised-simplex path when it is in packing
/// form, otherwise via the dense two-phase solver. See the module docs.
pub(crate) fn solve(p: &Problem, ws: &mut LpWorkspace) -> Result<Solution, LpError> {
    if !is_network_form(p) {
        return crate::standard::solve(p, ws);
    }
    let clock = Instant::now();
    let n = p.vars.len();
    let m = p.constraints.len();
    ws.net.load(p);
    let mut warm = false;
    if ws.net_saved.live && ws.net_saved.n == n && ws.net_saved.m == m {
        // Consume the saved basis; it is revalidated on success below,
        // so a failed solve leaves the next one cold, exactly as before.
        ws.net_saved.live = false;
        if ws
            .net
            .install_saved(&ws.net_saved.basis, &ws.net_saved.at_upper)
        {
            warm = true;
        } else {
            ws.note_warm_reject();
        }
    } else {
        ws.net_saved.live = false;
    }
    if !warm {
        ws.net.install_slack_basis();
    }
    let budget = p.pivot_budget(m, n + m);
    let outcome = ws.net.optimize(budget);
    if warm {
        ws.note_warm();
    } else {
        ws.note_cold();
    }
    let result = match outcome {
        Ok(pivots) => {
            let sol = ws.net.extract(p, pivots, &mut ws.sol_pool);
            ws.net_saved.store_from(&ws.net);
            Ok(sol)
        }
        Err(e) => Err(e),
    };
    ws.note_kernel_solve(
        ws.net.solve_pivots,
        ws.net.solve_refactorizations,
        ws.net.eta_entry_peak,
        ws.net.scratch_bytes(),
        clock.elapsed().as_nanos() as u64,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn detects_packing_form() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 2.0, 3.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.5).unwrap();
        assert!(p.is_network_form());
        // A Ge row breaks the form.
        let mut q = p.clone();
        q.add_constraint(&[(x, 1.0)], Relation::Ge, 0.5).unwrap();
        assert!(!q.is_network_form());
        // A negative rhs breaks the form.
        let mut r = p.clone();
        r.add_constraint(&[(x, -1.0)], Relation::Le, -0.5).unwrap();
        assert!(!r.is_network_form());
        // An unbounded or shifted variable breaks the form.
        let mut s = p.clone();
        s.add_var("free", 0.0, f64::INFINITY, 1.0).unwrap();
        assert!(!s.is_network_form());
        let mut t = p.clone();
        t.add_var("lo", 1.0, 2.0, 1.0).unwrap();
        assert!(!t.is_network_form());
    }

    #[test]
    fn solves_a_small_packing_lp() {
        // max 3x + 2y  s.t.  x + y ≤ 4, x + 3y ≤ 6, x ≤ 3, y ≤ 5.
        // Optimum at x = 3, y = 1: objective 11.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 3.0, 3.0).unwrap();
        let y = p.add_var("y", 0.0, 5.0, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0)
            .unwrap();
        let mut ws = LpWorkspace::new();
        let sol = p.solve_network_with(&mut ws).unwrap();
        assert_close(sol.objective(), 11.0);
        assert_close(sol.value(x), 3.0);
        assert_close(sol.value(y), 1.0);
        assert_eq!(ws.cold_solves(), 1);
        // The dense path agrees.
        assert_close(p.solve().unwrap().objective(), 11.0);
    }

    #[test]
    fn bound_flips_handle_unconstrained_columns() {
        // No rows at all: profitable variables flip straight to their
        // upper bound, costly ones stay at zero.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 2.0, -1.5).unwrap();
        let y = p.add_var("y", 0.0, 3.0, 2.0).unwrap();
        let sol = p.solve_network_with(&mut LpWorkspace::new()).unwrap();
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 0.0);
        assert_close(sol.objective(), -3.0);
    }

    #[test]
    fn warm_resolve_reuses_the_basis() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 3.0, 3.0).unwrap();
        let y = p.add_var("y", 0.0, 5.0, 2.0).unwrap();
        let cap = p
            .add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0)
            .unwrap();
        let mut ws = LpWorkspace::new();
        let first = p.solve_network_with(&mut ws).unwrap();
        assert_close(first.objective(), 11.0);
        // Re-price: the old vertex stays feasible, the warm path resumes
        // from it and pivots to the new optimum (y = 2 now dominates).
        p.set_objective(y, 10.0).unwrap();
        let second = p.solve_network_with(&mut ws).unwrap();
        assert_close(second.objective(), 20.0);
        assert_eq!(ws.cold_solves(), 1);
        assert_eq!(ws.warm_solves(), 1);
        assert!(ws.last_was_warm());
        // Tighten it below the warm vertex: the saved basis goes primal-
        // infeasible and the solver falls back cold, same answer as a
        // fresh workspace.
        p.set_rhs(cap, 1.0).unwrap();
        let third = p.solve_network_with(&mut ws).unwrap();
        let cold = p.solve_network_with(&mut LpWorkspace::new()).unwrap();
        assert_close(third.objective(), cold.objective());
        assert_eq!(ws.warm_rejects(), 1);
        assert_eq!(ws.cold_solves(), 2);
    }

    #[test]
    fn falls_back_to_dense_outside_packing_form() {
        // A Ge row forces the dense path; the answer still comes back.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 4.0).unwrap();
        let mut ws = LpWorkspace::new();
        let sol = p.solve_network_with(&mut ws).unwrap();
        assert_close(sol.value(x), 4.0);
        assert_eq!(ws.cold_solves(), 1);
    }

    #[test]
    fn degenerate_rows_terminate() {
        // Several zero-rhs rows force degenerate pivots; the Bland
        // fallback guarantees termination.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 1.0, 1.0).unwrap();
        let y = p.add_var("y", 0.0, 1.0, 1.0).unwrap();
        let z = p.add_var("z", 0.0, 1.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 0.0)
            .unwrap();
        p.add_constraint(&[(y, 1.0), (z, -1.0)], Relation::Le, 0.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Le, 2.0)
            .unwrap();
        let sol = p.solve_network_with(&mut LpWorkspace::new()).unwrap();
        assert_close(sol.objective(), p.solve().unwrap().objective());
    }

    #[test]
    fn zero_width_boxes_stay_pinned() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 0.0, 5.0).unwrap();
        let y = p.add_var("y", 0.0, 2.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 3.0)
            .unwrap();
        let sol = p.solve_network_with(&mut LpWorkspace::new()).unwrap();
        assert_close(sol.value(x), 0.0);
        assert_close(sol.value(y), 2.0);
    }

    #[test]
    fn infeasibility_is_impossible_but_bounds_still_validate() {
        // Packing form is always feasible (x = 0); a malformed box is
        // caught at model build time, not here.
        let mut p = Problem::minimize();
        assert!(p.add_var("x", 2.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn eta_cap_one_forces_a_refactorization_per_pivot() {
        // With the cap at 1, every exchange crosses the trigger: the
        // kernel must refactorize after (almost) every pivot and still
        // land on the dense optimum.
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 3.0, 3.0).unwrap();
        let y = p.add_var("y", 0.0, 5.0, 2.0).unwrap();
        let z = p.add_var("z", 0.0, 2.0, 4.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Le, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 3.0), (z, 0.5)], Relation::Le, 6.0)
            .unwrap();
        p.add_constraint(&[(x, 2.0), (z, 1.0)], Relation::Le, 5.0)
            .unwrap();
        let mut ws = LpWorkspace::new();
        ws.set_network_refactor_cap(1);
        let sol = p.solve_network_with(&mut ws).unwrap();
        assert_close(sol.objective(), p.solve().unwrap().objective());
        let stats = ws.stats();
        assert!(stats.pivots > 0, "the LP needs pivots: {stats:?}");
        assert!(
            stats.refactorizations >= stats.pivots.saturating_sub(1),
            "cap 1 must refactorize on every exchange: {stats:?}"
        );
        // Edits keep re-solving correctly across forced refactorizations.
        p.set_objective(y, 9.0).unwrap();
        let warm = p.solve_network_with(&mut ws).unwrap();
        assert_close(warm.objective(), p.solve().unwrap().objective());
    }

    #[test]
    fn kernel_stats_accumulate() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 0.0, 3.0, 3.0).unwrap();
        let y = p.add_var("y", 0.0, 5.0, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        let mut ws = LpWorkspace::new();
        assert_eq!(ws.stats(), crate::SolverStats::default());
        p.solve_network_with(&mut ws).unwrap();
        p.set_objective(x, 1.0).unwrap();
        p.solve_network_with(&mut ws).unwrap();
        let stats = ws.stats();
        assert_eq!(stats.kernel_solves, 2);
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.warm_solves, 1);
        assert_eq!(stats.cold_solves, 1);
        assert!(stats.pivots >= 1);
        assert!(stats.peak_scratch_bytes > 0);
        assert!(stats.solve_ns > 0);
    }
}
