//! A small linear-programming substrate (serde is its only dependency,
//! for checkpointable warm-start bases).
//!
//! The SmartDPSS paper solves all of its optimization problems — the offline
//! benchmark `P2` and the online subproblems `P4`/`P5` — with "classical
//! linear programming approaches, e.g., \[the\] simplex method" (§IV-B; the
//! authors used Matlab's `linprog`). The Rust ecosystem has no mature pure
//! LP crate suitable for this workspace's offline build, so this crate
//! implements the substrate from scratch:
//!
//! * [`Problem`] — a model builder with named, box-bounded variables and
//!   `≤ / ≥ / =` linear constraints in either optimization [`Sense`];
//! * a **two-phase dense simplex** solver (Dantzig pricing with an automatic
//!   fallback to Bland's rule to guarantee termination on degenerate
//!   problems);
//! * [`Solution`] — optimal variable values and objective, mapped back to
//!   the original model space.
//!
//! The solver targets the *small-to-medium dense* LPs that arise in DPSS
//! control: a handful of variables per fine slot and a few hundred rows for
//! a whole coarse frame. It is exact up to floating-point tolerance and
//! deterministic.
//!
//! # Examples
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`, `x, y ≥ 0`
//! (optimum `x = 4, y = 0`, objective `12`):
//!
//! ```
//! use dpss_lp::{Problem, Relation, Sense};
//!
//! # fn main() -> Result<(), dpss_lp::LpError> {
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, f64::INFINITY, 3.0)?;
//! let y = p.add_var("y", 0.0, f64::INFINITY, 2.0)?;
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)?;
//! p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0)?;
//! let sol = p.solve()?;
//! assert!((sol.objective() - 12.0).abs() < 1e-9);
//! assert!((sol.value(x) - 4.0).abs() < 1e-9);
//! assert!(sol.value(y).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod basis;
mod error;
mod factor;
mod model;
mod network;
mod simplex;
mod solution;
mod standard;
mod workspace;

pub use basis::{BasisSnapshot, DenseBasisSnapshot, NetworkBasisSnapshot};
pub use error::LpError;
pub use model::{ConstraintId, Problem, Relation, Sense, Variable};
pub use solution::Solution;
pub use workspace::{LpWorkspace, SolverStats};

/// Absolute feasibility/optimality tolerance used throughout the solver.
pub const TOLERANCE: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke_minimize() {
        // min x + y  s.t.  x + y >= 2, x,y >= 0 → objective 2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert!((sol.objective() - 2.0).abs() < 1e-9);
    }
}
