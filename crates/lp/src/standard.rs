//! Conversion of a [`Problem`] to standard form and the two-phase driver.
//!
//! Standard form: `min cᵀy` s.t. `Ay = b`, `y ≥ 0`, `b ≥ 0`. Variables with
//! general box bounds are shifted/negated/split; `≤`/`≥` rows receive slack
//! or surplus columns; rows that still lack an identity column receive an
//! artificial variable, and phase 1 minimizes the artificial sum.
//!
//! All solves run through a caller-supplied [`LpWorkspace`], which owns the
//! tableau buffers and, when the previous solve had the same standard-form
//! shape, supplies a warm-start basis that skips phase 1 entirely (see the
//! `workspace` module docs). A warm start that turns out singular or
//! primal-infeasible for the new data silently falls back to the cold
//! two-phase path below, so callers observe identical objectives and
//! feasibility verdicts either way.

// Dense kernel: the standard-form mapping allocates `phase2_costs`,
// `placed`, `redundant` and the tableau buffers to the exact
// rows/columns it then addresses; every `VarMap` column index is minted
// here during the same construction pass. See the simplex module for the
// same policy on the tableau itself.
// audit:allow-file(slice-index): standard-form columns/rows are minted and addressed in one construction pass; see module note
#![allow(clippy::indexing_slicing)]

use crate::model::{Problem, Relation, Sense};
use crate::simplex::{
    expel_artificials, run_dual_phase, run_phase, CostRow, DualOutcome, PhaseOutcome, Tableau,
    DEGENERATE_STREAK_LIMIT,
};
use crate::solution::Solution;
use crate::workspace::{LpWorkspace, SavedBasis};
use crate::{LpError, TOLERANCE};

/// How each original variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lo + y`, `y ≥ 0` (finite lower bound).
    Shifted { col: usize, lo: f64 },
    /// `x = up − y`, `y ≥ 0` (only the upper bound is finite).
    Negated { col: usize, up: f64 },
    /// `x = y⁺ − y⁻` (free variable).
    Split { pos: usize, neg: usize },
}

/// A standard-form row under construction: structural terms and rhs.
#[derive(Debug, Clone)]
struct Row {
    terms: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
}

pub(crate) fn solve(p: &Problem, ws: &mut LpWorkspace) -> Result<Solution, LpError> {
    // ---- 1. Map variables onto non-negative columns. -------------------
    let mut maps = Vec::with_capacity(p.vars.len());
    let mut n_struct = 0usize;
    for v in &p.vars {
        let map = if v.lo.is_finite() {
            let m = VarMap::Shifted {
                col: n_struct,
                lo: v.lo,
            };
            n_struct += 1;
            m
        } else if v.up.is_finite() {
            let m = VarMap::Negated {
                col: n_struct,
                up: v.up,
            };
            n_struct += 1;
            m
        } else {
            let m = VarMap::Split {
                pos: n_struct,
                neg: n_struct + 1,
            };
            n_struct += 2;
            m
        };
        maps.push(map);
    }

    // ---- 2. Transform constraint rows into structural-column space. ----
    let mut rows: Vec<Row> = Vec::with_capacity(p.constraints.len() + p.vars.len());
    for c in &p.constraints {
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 1);
        let mut rhs = c.rhs;
        for &(j, a) in &c.terms {
            match maps[j] {
                VarMap::Shifted { col, lo } => {
                    rhs -= a * lo;
                    push_term(&mut terms, col, a);
                }
                VarMap::Negated { col, up } => {
                    rhs -= a * up;
                    push_term(&mut terms, col, -a);
                }
                VarMap::Split { pos, neg } => {
                    push_term(&mut terms, pos, a);
                    push_term(&mut terms, neg, -a);
                }
            }
        }
        rows.push(Row {
            terms,
            relation: c.relation,
            rhs,
        });
    }
    // Upper-bound rows `y ≤ up − lo` for doubly-bounded variables.
    for (v, map) in p.vars.iter().zip(&maps) {
        if let VarMap::Shifted { col, lo } = *map {
            if v.up.is_finite() {
                rows.push(Row {
                    terms: vec![(col, 1.0)],
                    relation: Relation::Le,
                    rhs: v.up - lo,
                });
            }
        }
    }

    // ---- 3. Normalize rhs signs and lay out slack/artificial columns. --
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for t in &mut row.terms {
                t.1 = -t.1;
            }
            row.relation = match row.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }
    let m = rows.len();
    let n_slack = rows
        .iter()
        .filter(|r| !matches!(r.relation, Relation::Eq))
        .count();
    let n_artificial = rows
        .iter()
        .filter(|r| !matches!(r.relation, Relation::Le))
        .count();
    let n_nonart = n_struct + n_slack;
    let n_total = n_nonart + n_artificial;

    // Phase-2 objective in structural-column space (shared by both paths).
    let sign = match p.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut phase2_costs = vec![0.0; n_nonart];
    for (v, map) in p.vars.iter().zip(&maps) {
        match *map {
            VarMap::Shifted { col, .. } => phase2_costs[col] += sign * v.obj,
            VarMap::Negated { col, .. } => phase2_costs[col] -= sign * v.obj,
            VarMap::Split { pos, neg } => {
                phase2_costs[pos] += sign * v.obj;
                phase2_costs[neg] -= sign * v.obj;
            }
        }
    }

    // ---- 4. Warm path: re-reduce onto the previous basis, skip phase 1.
    if let Some(saved) = ws.take_matching_basis(m, n_nonart) {
        match try_warm(p, &maps, &rows, n_struct, &phase2_costs, &saved, ws) {
            WarmOutcome::Solved(sol) => return Ok(sol),
            WarmOutcome::Unbounded => return Err(LpError::Unbounded),
            WarmOutcome::Fallback => ws.note_warm_reject(),
        }
    }
    ws.note_cold();

    // ---- 5. Cold path: fill the two-phase tableau. ----------------------
    fill_tableau(&mut ws.tab, &rows, m, n_struct, n_total, true);
    let tab = &mut ws.tab;
    let mut budget = p.pivot_budget(m, n_total);

    // Phase 1: drive artificials to zero.
    if n_artificial > 0 {
        ws.costs.clear();
        ws.costs.resize(n_total, 0.0);
        for c in ws.costs.iter_mut().skip(n_nonart) {
            *c = 1.0;
        }
        let mut cost = CostRow::from_costs(tab, &ws.costs);
        ws.allowed.clear();
        ws.allowed.resize(n_total, true);
        match run_phase(
            tab,
            &mut cost,
            &ws.allowed,
            &mut budget,
            DEGENERATE_STREAK_LIMIT,
        )? {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded => {
                // Phase-1 objective is bounded below by 0; cannot happen for
                // well-formed input, treat as numerical failure.
                return Err(LpError::IterationLimit { pivots: 0 });
            }
        }
        if cost.objective > 1e-7 {
            return Err(LpError::Infeasible);
        }
        let redundant = expel_artificials(tab, &mut cost, n_nonart);
        drop_rows_and_artificials(tab, &mut ws.aux, &redundant, n_nonart);
        std::mem::swap(&mut ws.tab, &mut ws.aux);
    }
    let tab = &mut ws.tab;

    // Phase 2: optimize the real objective.
    let mut cost = CostRow::from_costs(tab, &phase2_costs);
    ws.allowed.clear();
    ws.allowed.resize(tab.cols, true);
    match run_phase(
        tab,
        &mut cost,
        &ws.allowed,
        &mut budget,
        DEGENERATE_STREAK_LIMIT,
    )? {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded => return Err(LpError::Unbounded),
    }

    // Only a full-rank phase-2 system can seed the next warm start (rows
    // dropped as redundant change the shape key and are simply not saved).
    let pivots_used = p.pivot_budget(m, n_total) - budget;
    if tab.rows == m {
        let (rows_now, cols_now) = (tab.rows, tab.cols);
        let basis = std::mem::take(&mut ws.tab.basis);
        ws.save_basis(rows_now, cols_now, &basis, &phase2_costs);
        ws.tab.basis = basis;
    } else {
        ws.clear_basis();
    }
    Ok(extract_solution(p, &maps, &ws.tab, pivots_used))
}

enum WarmOutcome {
    Solved(Solution),
    Unbounded,
    /// Saved basis unusable (singular / primal-infeasible / budget burn):
    /// redo the solve on the cold path.
    Fallback,
}

/// Attempts a phase-1-free solve from `saved`: rebuilds the artificial-free
/// tableau, pivots it onto the saved basis (rows whose saved basic column
/// is their own untouched `+1` slack need no pivot at all; the rest use
/// partial pivoting over the not-yet-assigned rows), then:
///
/// * **primal-feasible** basis → phase 2 directly;
/// * **primal-infeasible** basis (the usual case after a right-hand-side
///   change) → a dual simplex feasibility restore guided by the *saved*
///   cost row (which the basis is optimal, hence dual-feasible, for),
///   followed by phase 2 on the current costs;
/// * anything unusable (singular basis, changed matrix breaking dual
///   feasibility, budget burn) → fall back to the cold two-phase path.
fn try_warm(
    p: &Problem,
    maps: &[VarMap],
    rows: &[Row],
    n_struct: usize,
    phase2_costs: &[f64],
    saved: &SavedBasis,
    ws: &mut LpWorkspace,
) -> WarmOutcome {
    let m = rows.len();
    let n_nonart = saved.cols;
    fill_tableau(&mut ws.tab, rows, m, n_struct, n_nonart, false);
    let tab = &mut ws.tab;

    // Raw costs are the correct reduced costs for the empty basis; the
    // rebuild pivots then maintain them incrementally, so after the last
    // pivot they are exactly `c − c_Bᵀ B⁻¹A` for the saved basis. The
    // saved solve's costs ride along as the dual guide row.
    let mut cost = CostRow {
        reduced: phase2_costs.to_vec(),
        objective: 0.0,
    };
    let mut guide = CostRow {
        reduced: saved.costs.clone(),
        objective: 0.0,
    };
    let mut budget = p.pivot_budget(m, n_nonart);
    ws.allowed.clear();
    ws.allowed.resize(m, false); // reused here as a "row placed" mask
    let placed = &mut ws.allowed;

    // Pass 1 — identity skips: a row whose saved basic column is its own
    // `+1` slack is already reduced in the fresh tableau, and (because
    // such a column has its only nonzero entry in that row, and the row
    // is never used as a pivot row) stays reduced through the remaining
    // rebuild pivots. On the Le-heavy DPSS frame LPs this skips most of
    // the rebuild work.
    for (r, &col) in saved.basis.iter().enumerate() {
        if col >= n_struct && tab.basis[r] == col {
            debug_assert_eq!(tab.at(r, col), 1.0);
            placed[r] = true;
        }
    }
    // Pass 2 — pivot the remaining saved columns onto unplaced rows.
    for (r_old, &col) in saved.basis.iter().enumerate() {
        if placed[r_old] && tab.basis[r_old] == col {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (r, &done) in placed.iter().enumerate().take(m) {
            if done {
                continue;
            }
            let mag = tab.at(r, col).abs();
            if best.is_none_or(|(_, b)| mag > b) {
                best = Some((r, mag));
            }
        }
        let Some((r, mag)) = best else {
            return WarmOutcome::Fallback;
        };
        if mag < 1e-7 || budget == 0 {
            // Singular for the new coefficients (or pathological budget).
            return WarmOutcome::Fallback;
        }
        budget -= 1;
        tab.pivot(r, col, &mut cost);
        tab.eliminate_cost(r, col, &mut guide);
        placed[r] = true;
    }

    // Feasibility restore: dual simplex when the new right-hand side
    // turned the saved basis primal-infeasible.
    if tab.b.iter().any(|&b| b < -1e-7) {
        // The guide row must be dual-feasible; with an unchanged
        // constraint matrix it is exactly the saved solve's optimal
        // reduced costs (all ≥ 0), but a changed matrix can break this.
        if guide.reduced.iter().any(|&r| r < -1e-7) {
            return WarmOutcome::Fallback;
        }
        for g in &mut guide.reduced {
            if *g < 0.0 {
                *g = 0.0;
            }
        }
        match run_dual_phase(tab, &mut guide, &mut cost, &mut budget) {
            Ok(DualOutcome::Feasible) => {}
            // `NoPivot` certifies the constraint system infeasible, but
            // falling back keeps a single source of truth for error
            // classification (the cold path re-derives it).
            Ok(DualOutcome::NoPivot) | Err(_) => return WarmOutcome::Fallback,
        }
    }
    for b in &mut tab.b {
        if *b < 0.0 {
            *b = 0.0;
        }
    }

    ws.allowed.clear();
    ws.allowed.resize(n_nonart, true);
    match run_phase(
        tab,
        &mut cost,
        &ws.allowed,
        &mut budget,
        DEGENERATE_STREAK_LIMIT,
    ) {
        Ok(PhaseOutcome::Optimal) => {}
        Ok(PhaseOutcome::Unbounded) => return WarmOutcome::Unbounded,
        Err(_) => return WarmOutcome::Fallback,
    }

    // Rebuild and dual pivots count toward the total: real tableau work.
    let pivots_used = p.pivot_budget(m, n_nonart) - budget;
    ws.note_warm();
    let (rows_now, cols_now) = (ws.tab.rows, ws.tab.cols);
    let basis = std::mem::take(&mut ws.tab.basis);
    ws.save_basis(rows_now, cols_now, &basis, phase2_costs);
    ws.tab.basis = basis;
    WarmOutcome::Solved(extract_solution(p, maps, &ws.tab, pivots_used))
}

/// Fills `tab` with the standard-form system: structural terms, slack /
/// surplus columns at `n_struct..`, and (cold path only) artificial
/// columns after the slacks with the phase-1 starting basis.
fn fill_tableau(
    tab: &mut Tableau,
    rows: &[Row],
    m: usize,
    n_struct: usize,
    n_cols: usize,
    with_artificials: bool,
) {
    tab.reset(m, n_cols);
    let n_slack = rows
        .iter()
        .filter(|r| !matches!(r.relation, Relation::Eq))
        .count();
    let mut next_slack = n_struct;
    let mut next_art = n_struct + n_slack;
    for (r, row) in rows.iter().enumerate() {
        for &(j, a) in &row.terms {
            let old = tab.at(r, j);
            tab.set(r, j, old + a);
        }
        tab.b[r] = row.rhs;
        match row.relation {
            Relation::Le => {
                tab.set(r, next_slack, 1.0);
                tab.basis[r] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                tab.set(r, next_slack, -1.0);
                next_slack += 1;
                if with_artificials {
                    tab.set(r, next_art, 1.0);
                    tab.basis[r] = next_art;
                    next_art += 1;
                }
            }
            Relation::Eq => {
                if with_artificials {
                    tab.set(r, next_art, 1.0);
                    tab.basis[r] = next_art;
                    next_art += 1;
                }
            }
        }
    }
}

/// Maps the optimal tableau solution back to model space (bound shifts
/// undone, tolerance drift snapped to bounds).
fn extract_solution(p: &Problem, maps: &[VarMap], tab: &Tableau, pivots_used: usize) -> Solution {
    let y = tab.solution();
    let mut values = Vec::with_capacity(p.vars.len());
    for map in maps {
        let x = match *map {
            VarMap::Shifted { col, lo } => lo + y[col],
            VarMap::Negated { col, up } => up - y[col],
            VarMap::Split { pos, neg } => y[pos] - y[neg],
        };
        values.push(x);
    }
    // Snap to bounds to remove tolerance-level drift.
    for (x, v) in values.iter_mut().zip(&p.vars) {
        if v.lo.is_finite() && *x < v.lo {
            *x = v.lo;
        }
        if v.up.is_finite() && *x > v.up {
            *x = v.up;
        }
        if x.abs() < TOLERANCE {
            *x = 0.0;
        }
    }
    let objective = p.objective_at(&values);
    Solution::new(values, objective, pivots_used)
}

fn push_term(terms: &mut Vec<(usize, f64)>, col: usize, coeff: f64) {
    match terms.iter_mut().find(|(j, _)| *j == col) {
        Some((_, acc)) => *acc += coeff,
        None => terms.push((col, coeff)),
    }
}

/// Rebuilds the tableau without redundant rows and without artificial
/// columns (which are all non-basic or belong to dropped rows by now).
fn drop_rows_and_artificials(
    tab: &Tableau,
    out: &mut Tableau,
    redundant: &[bool],
    n_nonart: usize,
) {
    let keep_rows: Vec<usize> = (0..tab.rows).filter(|&r| !redundant[r]).collect();
    out.reset(keep_rows.len(), n_nonart);
    for (nr, &r) in keep_rows.iter().enumerate() {
        for j in 0..n_nonart {
            out.set(nr, j, tab.at(r, j));
        }
        out.b[nr] = tab.b[r];
        debug_assert!(
            tab.basis[r] < n_nonart,
            "kept row must not have an artificial basic"
        );
        out.basis[nr] = tab.basis[r];
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn equality_constraints_via_artificials() {
        // min 2x + 3y s.t. x + y = 10, x − y = 2 → x=6, y=4, obj 24.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 2.0).unwrap();
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 2.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 6.0);
        assert_close(sol.value(y), 4.0);
        assert_close(sol.objective(), 24.0);
    }

    #[test]
    fn free_variable_can_go_negative() {
        // min x s.t. x ≥ −5 via constraint (variable itself free).
        let mut p = Problem::minimize();
        let x = p
            .add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, -5.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), -5.0);
        assert_close(sol.objective(), -5.0);
    }

    #[test]
    fn negated_variable_upper_bound_only() {
        // max x with x ≤ 3 (no lower bound) → 3.
        let mut p = Problem::maximize();
        let x = p.add_var("x", f64::NEG_INFINITY, 3.0, 1.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 3.0);
        // And min x with an extra floor constraint.
        let mut p = Problem::minimize();
        let x = p.add_var("x", f64::NEG_INFINITY, 3.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.5).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 1.5);
    }

    #[test]
    fn shifted_negative_lower_bound() {
        // min x, x ∈ [−2, 7] → −2; max → 7.
        let mut p = Problem::minimize();
        let x = p.add_var("x", -2.0, 7.0, 1.0).unwrap();
        assert_close(p.solve().unwrap().value(x), -2.0);
        let mut p = Problem::maximize();
        let x = p.add_var("x", -2.0, 7.0, 1.0).unwrap();
        assert_close(p.solve().unwrap().value(x), 7.0);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 1.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert!(matches!(p.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn contradictory_equalities_are_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 2.0).unwrap();
        assert!(matches!(p.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn unbounded_is_detected() {
        let mut p = Problem::minimize();
        let _x = p.add_var("x", 0.0, f64::INFINITY, -1.0).unwrap();
        assert!(matches!(p.solve(), Err(LpError::Unbounded)));
    }

    #[test]
    fn redundant_equalities_are_dropped() {
        // x + y = 4 stated twice; min x + 2y → x=4, y=0.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // −x ≤ −3 ⇔ x ≥ 3.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(x, -1.0)], Relation::Le, -3.0).unwrap();
        assert_close(p.solve().unwrap().value(x), 3.0);
    }

    #[test]
    fn diet_problem() {
        // Classic diet: minimize cost of two foods meeting two nutrients.
        // min 0.6a + b s.t. 10a + 4b ≥ 20, 5a + 10b ≥ 30, a,b ≥ 0.
        let mut p = Problem::minimize();
        let a = p.add_var("a", 0.0, f64::INFINITY, 0.6).unwrap();
        let b = p.add_var("b", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(a, 10.0), (b, 4.0)], Relation::Ge, 20.0)
            .unwrap();
        p.add_constraint(&[(a, 5.0), (b, 10.0)], Relation::Ge, 30.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert!(p.is_feasible(sol.values(), 1e-7));
        // Vertex: 10a+4b=20 & 5a+10b=30 → a=1, b=2.5 → cost 3.1.
        assert_close(sol.objective(), 3.1);
    }

    #[test]
    fn degenerate_beale_like_problem_terminates() {
        // A classic cycling-prone LP (Beale's example). Bland fallback must
        // terminate and find the optimum −0.05.
        let mut p = Problem::minimize();
        let x1 = p.add_var("x1", 0.0, f64::INFINITY, -0.75).unwrap();
        let x2 = p.add_var("x2", 0.0, f64::INFINITY, 150.0).unwrap();
        let x3 = p.add_var("x3", 0.0, f64::INFINITY, -0.02).unwrap();
        let x4 = p.add_var("x4", 0.0, f64::INFINITY, 6.0).unwrap();
        p.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective(), -0.05);
    }

    #[test]
    fn fixed_variable_lo_equals_up() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 2.5, 2.5, -10.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 2.5);
        assert_close(sol.objective(), -25.0);
    }

    #[test]
    fn empty_problem_solves_trivially() {
        let p = Problem::minimize();
        let sol = p.solve().unwrap();
        assert_eq!(sol.values().len(), 0);
        assert_close(sol.objective(), 0.0);
    }

    #[test]
    fn mixed_relations_one_model() {
        // min 3x + 2y + z
        //  s.t. x + y + z = 10, x − y ≥ 1, z ≤ 4, x,y,z ≥ 0.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0).unwrap();
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0).unwrap();
        let z = p.add_var("z", 0.0, 4.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Eq, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Ge, 1.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert!(p.is_feasible(sol.values(), 1e-7));
        // Best: maximize z (cheap) then balance x−y≥1: z=4, x+y=6, x−y=1 →
        // x=3.5, y=2.5 → 3·3.5+2·2.5+4 = 19.5.
        assert_close(sol.objective(), 19.5);
    }
}
