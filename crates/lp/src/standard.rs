//! Conversion of a [`Problem`] to standard form and the two-phase driver.
//!
//! Standard form: `min cᵀy` s.t. `Ay = b`, `y ≥ 0`, `b ≥ 0`. Variables with
//! general box bounds are shifted/negated/split; `≤`/`≥` rows receive slack
//! or surplus columns; rows that still lack an identity column receive an
//! artificial variable, and phase 1 minimizes the artificial sum.

use crate::model::{Problem, Relation, Sense};
use crate::simplex::{expel_artificials, run_phase, CostRow, PhaseOutcome, Tableau};
use crate::solution::Solution;
use crate::{LpError, TOLERANCE};

/// How each original variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lo + y`, `y ≥ 0` (finite lower bound).
    Shifted { col: usize, lo: f64 },
    /// `x = up − y`, `y ≥ 0` (only the upper bound is finite).
    Negated { col: usize, up: f64 },
    /// `x = y⁺ − y⁻` (free variable).
    Split { pos: usize, neg: usize },
}

/// A standard-form row under construction: structural terms and rhs.
#[derive(Debug, Clone)]
struct Row {
    terms: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
}

pub(crate) fn solve(p: &Problem) -> Result<Solution, LpError> {
    // ---- 1. Map variables onto non-negative columns. -------------------
    let mut maps = Vec::with_capacity(p.vars.len());
    let mut n_struct = 0usize;
    for v in &p.vars {
        let map = if v.lo.is_finite() {
            let m = VarMap::Shifted {
                col: n_struct,
                lo: v.lo,
            };
            n_struct += 1;
            m
        } else if v.up.is_finite() {
            let m = VarMap::Negated {
                col: n_struct,
                up: v.up,
            };
            n_struct += 1;
            m
        } else {
            let m = VarMap::Split {
                pos: n_struct,
                neg: n_struct + 1,
            };
            n_struct += 2;
            m
        };
        maps.push(map);
    }

    // ---- 2. Transform constraint rows into structural-column space. ----
    let mut rows: Vec<Row> = Vec::with_capacity(p.constraints.len() + p.vars.len());
    for c in &p.constraints {
        let mut terms: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 1);
        let mut rhs = c.rhs;
        for &(j, a) in &c.terms {
            match maps[j] {
                VarMap::Shifted { col, lo } => {
                    rhs -= a * lo;
                    push_term(&mut terms, col, a);
                }
                VarMap::Negated { col, up } => {
                    rhs -= a * up;
                    push_term(&mut terms, col, -a);
                }
                VarMap::Split { pos, neg } => {
                    push_term(&mut terms, pos, a);
                    push_term(&mut terms, neg, -a);
                }
            }
        }
        rows.push(Row {
            terms,
            relation: c.relation,
            rhs,
        });
    }
    // Upper-bound rows `y ≤ up − lo` for doubly-bounded variables.
    for (v, map) in p.vars.iter().zip(&maps) {
        if let VarMap::Shifted { col, lo } = *map {
            if v.up.is_finite() {
                rows.push(Row {
                    terms: vec![(col, 1.0)],
                    relation: Relation::Le,
                    rhs: v.up - lo,
                });
            }
        }
    }

    // ---- 3. Normalize rhs signs and lay out slack/artificial columns. --
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for t in &mut row.terms {
                t.1 = -t.1;
            }
            row.relation = match row.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }
    let m = rows.len();
    let n_slack = rows
        .iter()
        .filter(|r| !matches!(r.relation, Relation::Eq))
        .count();
    let n_artificial = rows
        .iter()
        .filter(|r| !matches!(r.relation, Relation::Le))
        .count();
    let n_nonart = n_struct + n_slack;
    let n_total = n_nonart + n_artificial;

    // ---- 4. Fill the tableau. ------------------------------------------
    let mut tab = Tableau::new(m, n_total);
    let mut next_slack = n_struct;
    let mut next_art = n_nonart;
    for (r, row) in rows.iter().enumerate() {
        for &(j, a) in &row.terms {
            let old = tab.at(r, j);
            tab.set(r, j, old + a);
        }
        tab.b[r] = row.rhs;
        match row.relation {
            Relation::Le => {
                tab.set(r, next_slack, 1.0);
                tab.basis[r] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                tab.set(r, next_slack, -1.0);
                next_slack += 1;
                tab.set(r, next_art, 1.0);
                tab.basis[r] = next_art;
                next_art += 1;
            }
            Relation::Eq => {
                tab.set(r, next_art, 1.0);
                tab.basis[r] = next_art;
                next_art += 1;
            }
        }
    }

    let mut budget = p.pivot_budget(m, n_total);

    // ---- 5. Phase 1: drive artificials to zero. -------------------------
    if n_artificial > 0 {
        let mut phase1_costs = vec![0.0; n_total];
        for c in phase1_costs.iter_mut().skip(n_nonart) {
            *c = 1.0;
        }
        let mut cost = CostRow::from_costs(&tab, &phase1_costs);
        let allowed = vec![true; n_total];
        match run_phase(&mut tab, &mut cost, &allowed, &mut budget)? {
            PhaseOutcome::Optimal => {}
            PhaseOutcome::Unbounded => {
                // Phase-1 objective is bounded below by 0; cannot happen for
                // well-formed input, treat as numerical failure.
                return Err(LpError::IterationLimit { pivots: 0 });
            }
        }
        if cost.objective > 1e-7 {
            return Err(LpError::Infeasible);
        }
        let redundant = expel_artificials(&mut tab, &mut cost, n_nonart);
        if redundant.iter().any(|&r| r) {
            tab = drop_rows_and_artificials(&tab, &redundant, n_nonart);
        } else if n_artificial > 0 {
            tab = drop_rows_and_artificials(&tab, &vec![false; m], n_nonart);
        }
    }

    // ---- 6. Phase 2: optimize the real objective. ------------------------
    let sign = match p.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut phase2_costs = vec![0.0; tab.cols];
    for (v, map) in p.vars.iter().zip(&maps) {
        match *map {
            VarMap::Shifted { col, .. } => phase2_costs[col] += sign * v.obj,
            VarMap::Negated { col, .. } => phase2_costs[col] -= sign * v.obj,
            VarMap::Split { pos, neg } => {
                phase2_costs[pos] += sign * v.obj;
                phase2_costs[neg] -= sign * v.obj;
            }
        }
    }
    let mut cost = CostRow::from_costs(&tab, &phase2_costs);
    let allowed = vec![true; tab.cols];
    match run_phase(&mut tab, &mut cost, &allowed, &mut budget)? {
        PhaseOutcome::Optimal => {}
        PhaseOutcome::Unbounded => return Err(LpError::Unbounded),
    }

    // ---- 7. Map the solution back to model space. ------------------------
    let y = tab.solution();
    let mut values = Vec::with_capacity(p.vars.len());
    for map in &maps {
        let x = match *map {
            VarMap::Shifted { col, lo } => lo + y[col],
            VarMap::Negated { col, up } => up - y[col],
            VarMap::Split { pos, neg } => y[pos] - y[neg],
        };
        values.push(x);
    }
    // Snap to bounds to remove tolerance-level drift.
    for (x, v) in values.iter_mut().zip(&p.vars) {
        if v.lo.is_finite() && *x < v.lo {
            *x = v.lo;
        }
        if v.up.is_finite() && *x > v.up {
            *x = v.up;
        }
        if x.abs() < TOLERANCE {
            *x = 0.0;
        }
    }
    let objective = p.objective_at(&values);
    let pivots_used = p.pivot_budget(m, n_total) - budget;
    Ok(Solution::new(values, objective, pivots_used))
}

fn push_term(terms: &mut Vec<(usize, f64)>, col: usize, coeff: f64) {
    match terms.iter_mut().find(|(j, _)| *j == col) {
        Some((_, acc)) => *acc += coeff,
        None => terms.push((col, coeff)),
    }
}

/// Rebuilds the tableau without redundant rows and without artificial
/// columns (which are all non-basic or belong to dropped rows by now).
fn drop_rows_and_artificials(tab: &Tableau, redundant: &[bool], n_nonart: usize) -> Tableau {
    let keep_rows: Vec<usize> = (0..tab.rows).filter(|&r| !redundant[r]).collect();
    let mut out = Tableau::new(keep_rows.len(), n_nonart);
    for (nr, &r) in keep_rows.iter().enumerate() {
        for j in 0..n_nonart {
            out.set(nr, j, tab.at(r, j));
        }
        out.b[nr] = tab.b[r];
        debug_assert!(
            tab.basis[r] < n_nonart,
            "kept row must not have an artificial basic"
        );
        out.basis[nr] = tab.basis[r];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "expected {b}, got {a}");
    }

    #[test]
    fn equality_constraints_via_artificials() {
        // min 2x + 3y s.t. x + y = 10, x − y = 2 → x=6, y=4, obj 24.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 2.0).unwrap();
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 2.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 6.0);
        assert_close(sol.value(y), 4.0);
        assert_close(sol.objective(), 24.0);
    }

    #[test]
    fn free_variable_can_go_negative() {
        // min x s.t. x ≥ −5 via constraint (variable itself free).
        let mut p = Problem::minimize();
        let x = p
            .add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, -5.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), -5.0);
        assert_close(sol.objective(), -5.0);
    }

    #[test]
    fn negated_variable_upper_bound_only() {
        // max x with x ≤ 3 (no lower bound) → 3.
        let mut p = Problem::maximize();
        let x = p.add_var("x", f64::NEG_INFINITY, 3.0, 1.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 3.0);
        // And min x with an extra floor constraint.
        let mut p = Problem::minimize();
        let x = p.add_var("x", f64::NEG_INFINITY, 3.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.5).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 1.5);
    }

    #[test]
    fn shifted_negative_lower_bound() {
        // min x, x ∈ [−2, 7] → −2; max → 7.
        let mut p = Problem::minimize();
        let x = p.add_var("x", -2.0, 7.0, 1.0).unwrap();
        assert_close(p.solve().unwrap().value(x), -2.0);
        let mut p = Problem::maximize();
        let x = p.add_var("x", -2.0, 7.0, 1.0).unwrap();
        assert_close(p.solve().unwrap().value(x), 7.0);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 1.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert!(matches!(p.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn contradictory_equalities_are_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Eq, 2.0).unwrap();
        assert!(matches!(p.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn unbounded_is_detected() {
        let mut p = Problem::minimize();
        let _x = p.add_var("x", 0.0, f64::INFINITY, -1.0).unwrap();
        assert!(matches!(p.solve(), Err(LpError::Unbounded)));
    }

    #[test]
    fn redundant_equalities_are_dropped() {
        // x + y = 4 stated twice; min x + 2y → x=4, y=0.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // −x ≤ −3 ⇔ x ≥ 3.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(x, -1.0)], Relation::Le, -3.0).unwrap();
        assert_close(p.solve().unwrap().value(x), 3.0);
    }

    #[test]
    fn diet_problem() {
        // Classic diet: minimize cost of two foods meeting two nutrients.
        // min 0.6a + b s.t. 10a + 4b ≥ 20, 5a + 10b ≥ 30, a,b ≥ 0.
        let mut p = Problem::minimize();
        let a = p.add_var("a", 0.0, f64::INFINITY, 0.6).unwrap();
        let b = p.add_var("b", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(a, 10.0), (b, 4.0)], Relation::Ge, 20.0)
            .unwrap();
        p.add_constraint(&[(a, 5.0), (b, 10.0)], Relation::Ge, 30.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert!(p.is_feasible(sol.values(), 1e-7));
        // Vertex: 10a+4b=20 & 5a+10b=30 → a=1, b=2.5 → cost 3.1.
        assert_close(sol.objective(), 3.1);
    }

    #[test]
    fn degenerate_beale_like_problem_terminates() {
        // A classic cycling-prone LP (Beale's example). Bland fallback must
        // terminate and find the optimum −0.05.
        let mut p = Problem::minimize();
        let x1 = p.add_var("x1", 0.0, f64::INFINITY, -0.75).unwrap();
        let x2 = p.add_var("x2", 0.0, f64::INFINITY, 150.0).unwrap();
        let x3 = p.add_var("x3", 0.0, f64::INFINITY, -0.02).unwrap();
        let x4 = p.add_var("x4", 0.0, f64::INFINITY, 6.0).unwrap();
        p.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        )
        .unwrap();
        p.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.objective(), -0.05);
    }

    #[test]
    fn fixed_variable_lo_equals_up() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 2.5, 2.5, -10.0).unwrap();
        let sol = p.solve().unwrap();
        assert_close(sol.value(x), 2.5);
        assert_close(sol.objective(), -25.0);
    }

    #[test]
    fn empty_problem_solves_trivially() {
        let p = Problem::minimize();
        let sol = p.solve().unwrap();
        assert_eq!(sol.values().len(), 0);
        assert_close(sol.objective(), 0.0);
    }

    #[test]
    fn mixed_relations_one_model() {
        // min 3x + 2y + z
        //  s.t. x + y + z = 10, x − y ≥ 1, z ≤ 4, x,y,z ≥ 0.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0).unwrap();
        let y = p.add_var("y", 0.0, f64::INFINITY, 2.0).unwrap();
        let z = p.add_var("z", 0.0, 4.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Eq, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Ge, 1.0)
            .unwrap();
        let sol = p.solve().unwrap();
        assert!(p.is_feasible(sol.values(), 1e-7));
        // Best: maximize z (cheap) then balance x−y≥1: z=4, x+y=6, x−y=1 →
        // x=3.5, y=2.5 → 3·3.5+2·2.5+4 = 19.5.
        assert_close(sol.objective(), 19.5);
    }
}
