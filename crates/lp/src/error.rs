use std::error::Error;
use std::fmt;

/// Error returned by model construction or the simplex solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The solver exceeded its pivot budget (numerical trouble; the budget
    /// is generous, so this indicates a pathological model).
    IterationLimit {
        /// Number of pivots performed before giving up.
        pivots: usize,
    },
    /// A coefficient, bound or right-hand side was NaN or infinite where a
    /// finite value is required.
    NotFinite {
        /// Description of the offending quantity.
        what: &'static str,
    },
    /// A variable's lower bound exceeds its upper bound.
    EmptyBounds {
        /// Index of the offending variable.
        var: usize,
    },
    /// A [`Variable`](crate::Variable) handle from a different or newer
    /// model was used.
    UnknownVariable {
        /// The out-of-range index carried by the handle.
        var: usize,
    },
    /// A [`ConstraintId`](crate::ConstraintId) handle from a different or
    /// newer model was used.
    UnknownConstraint {
        /// The out-of-range index carried by the handle.
        constraint: usize,
    },
    /// A [`BasisSnapshot`](crate::BasisSnapshot) failed validation on
    /// import (inconsistent shape, out-of-range index, non-finite value).
    InvalidBasis {
        /// Description of the inconsistency.
        what: &'static str,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit { pivots } => {
                write!(f, "simplex exceeded {pivots} pivots without converging")
            }
            LpError::NotFinite { what } => write!(f, "{what} must be finite"),
            LpError::EmptyBounds { var } => {
                write!(f, "variable {var} has lower bound above upper bound")
            }
            LpError::UnknownVariable { var } => {
                write!(f, "variable handle {var} does not belong to this problem")
            }
            LpError::UnknownConstraint { constraint } => {
                write!(
                    f,
                    "constraint handle {constraint} does not belong to this problem"
                )
            }
            LpError::InvalidBasis { what } => {
                write!(f, "invalid basis snapshot: {what}")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_meaningful() {
        assert_eq!(LpError::Infeasible.to_string(), "problem is infeasible");
        assert_eq!(LpError::Unbounded.to_string(), "objective is unbounded");
        assert!(LpError::IterationLimit { pivots: 7 }
            .to_string()
            .contains('7'));
        assert!(LpError::EmptyBounds { var: 3 }.to_string().contains('3'));
        assert!(LpError::UnknownVariable { var: 9 }
            .to_string()
            .contains('9'));
        assert!(LpError::UnknownConstraint { constraint: 5 }
            .to_string()
            .contains('5'));
        assert!(LpError::NotFinite { what: "rhs" }
            .to_string()
            .contains("rhs"));
        assert!(LpError::InvalidBasis { what: "shape" }
            .to_string()
            .contains("shape"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<LpError>();
    }
}
