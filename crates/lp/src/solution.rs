use std::fmt;

use crate::model::Variable;

/// An optimal solution returned by [`Problem::solve`](crate::Problem::solve).
///
/// Values are reported in the original model space (bounds applied, shifts
/// undone) and the objective in the original optimization sense.
///
/// # Examples
///
/// ```
/// use dpss_lp::{Problem, Relation, Sense};
///
/// # fn main() -> Result<(), dpss_lp::LpError> {
/// let mut p = Problem::new(Sense::Minimize);
/// let x = p.add_var("x", 1.0, 5.0, 2.0)?;
/// let sol = p.solve()?;
/// assert_eq!(sol.value(x), 1.0);
/// assert_eq!(sol.objective(), 2.0);
/// assert_eq!(sol.values(), &[1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    pivots: usize,
}

impl Solution {
    pub(crate) fn new(values: Vec<f64>, objective: f64, pivots: usize) -> Self {
        Solution {
            values,
            objective,
            pivots,
        }
    }

    /// Optimal value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem (index out of
    /// range).
    #[must_use]
    #[allow(clippy::indexing_slicing)]
    pub fn value(&self, var: Variable) -> f64 {
        // audit:allow(slice-index): documented # Panics contract for foreign Variable ids
        self.values[var.index()]
    }

    /// Optimal values of all variables, in insertion order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the solution, handing its value buffer back (the
    /// recycling path behind [`LpWorkspace::recycle`]).
    ///
    /// [`LpWorkspace::recycle`]: crate::LpWorkspace::recycle
    pub(crate) fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Optimal objective value in the problem's original sense.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of simplex pivots spent across both phases (diagnostic;
    /// useful for performance regressions).
    #[must_use]
    pub fn pivots(&self) -> usize {
        self.pivots
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "objective {:.6} at {:?}", self.objective, self.values)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Problem, Relation};

    #[test]
    fn accessors_and_display() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 4.0).unwrap();
        let sol = p.solve().unwrap();
        assert_eq!(sol.value(x), 4.0);
        assert_eq!(sol.values().len(), 1);
        assert!(sol.pivots() > 0, "a Ge row needs at least one pivot");
        let shown = sol.to_string();
        assert!(shown.contains("objective"), "display: {shown}");
    }

    #[test]
    #[should_panic]
    fn foreign_variable_panics() {
        let mut p = Problem::minimize();
        p.add_var("x", 0.0, 1.0, 1.0).unwrap();
        let sol = p.solve().unwrap();
        let mut other = Problem::minimize();
        other.add_var("a", 0.0, 1.0, 0.0).unwrap();
        let foreign = other.add_var("b", 0.0, 1.0, 0.0).unwrap();
        let _ = sol.value(foreign);
    }
}
