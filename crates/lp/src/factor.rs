//! Product-form basis factorization for the network simplex kernel.
//!
//! The revised simplex method needs two linear solves per pivot —
//! `w = B⁻¹·Aⱼ` (FTRAN, the entering column in the basis frame) and
//! `y = c_Bᵀ·B⁻¹` (BTRAN, the simplex multipliers) — plus one basis
//! update when a column enters. Carrying an explicit dense `m × m`
//! inverse makes each of those `O(m²)`; this module replaces it with the
//! **product form of the inverse**: the basis inverse is held as a
//! product of elementary *eta* matrices,
//!
//! ```text
//! B⁻¹ = Eₖ · Eₖ₋₁ · … · E₁
//! ```
//!
//! where each `Eᵢ` differs from the identity in a single column (its
//! *pivot column*). A pivot appends one eta built from the entering
//! direction `w` — `O(nnz(w))` work — and FTRAN/BTRAN apply the file in
//! `O(Σ nnz(η))`, which for the sparse fleet flow bases is far below
//! `m²`. The file is periodically rebuilt from the basis columns
//! (*refactorization*, owned by the caller in `network.rs`) to bound
//! both its length and accumulated rounding drift.
//!
//! Storage is flat — one header per eta plus two parallel arrays of
//! off-pivot `(row, value)` entries — so a [`Factorization`] owned by a
//! workspace is reused across solves without allocating once its
//! capacity has grown to the working-set size.

// Kernel storage: every row index is below the `m` the file was reset
// with, minted by the caller from in-range pivot rows; runtime bound
// checks in the FTRAN/BTRAN inner loops would be pure overhead.
// audit:allow-file(slice-index): eta entries are bounded by the m the file was reset with; see module note
#![allow(clippy::indexing_slicing)]

/// One elementary matrix of the product file: identity except in column
/// `pivot_row`, where the diagonal holds `pivot_val` and the rows listed
/// in `entries[start..end]` hold the off-pivot values.
#[derive(Debug, Clone, Copy)]
struct EtaHead {
    pivot_row: u32,
    pivot_val: f64,
    start: u32,
    end: u32,
}

/// A basis inverse in product (eta-file) form. See the module docs.
#[derive(Debug, Clone, Default)]
pub(crate) struct Factorization {
    m: usize,
    heads: Vec<EtaHead>,
    /// Off-pivot entry rows, flat across all etas (`heads[i]` owns
    /// `rows[start..end]` / `vals[start..end]`).
    rows: Vec<u32>,
    vals: Vec<f64>,
}

impl Factorization {
    /// Resets the file to the identity on `m` rows, keeping capacity.
    pub(crate) fn reset(&mut self, m: usize) {
        self.m = m;
        self.heads.clear();
        self.rows.clear();
        self.vals.clear();
    }

    /// Number of etas in the file (the refactorization trigger input).
    pub(crate) fn eta_count(&self) -> usize {
        self.heads.len()
    }

    /// Total off-pivot entries across the file (the eta-length telemetry).
    pub(crate) fn entry_count(&self) -> usize {
        self.rows.len()
    }

    /// Bytes of heap capacity currently pinned by the file.
    pub(crate) fn capacity_bytes(&self) -> usize {
        self.heads.capacity() * std::mem::size_of::<EtaHead>()
            + self.rows.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<f64>()
    }

    /// Appends the eta matrix that maps the entering direction
    /// `w = B⁻¹·Aⱼ` onto `e_r`, i.e. performs the basis exchange at pivot
    /// row `r`. Returns `false` (file unchanged) if the pivot element
    /// `w[r]` is too small to divide by safely — the caller must then
    /// refactorize or fall back.
    pub(crate) fn push_eta(&mut self, r: usize, w: &[f64]) -> bool {
        debug_assert_eq!(w.len(), self.m);
        let piv = w[r];
        if piv.abs() < 1e-12 || !piv.is_finite() {
            return false;
        }
        let pivot_val = 1.0 / piv;
        let start = self.rows.len() as u32;
        for (i, &wi) in w.iter().enumerate() {
            if i != r && wi != 0.0 {
                self.rows.push(i as u32);
                self.vals.push(-wi * pivot_val);
            }
        }
        self.heads.push(EtaHead {
            pivot_row: r as u32,
            pivot_val,
            start,
            end: self.rows.len() as u32,
        });
        true
    }

    /// `x ← B⁻¹·x`: applies the etas in append order (`E₁` first).
    pub(crate) fn ftran(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        for h in &self.heads {
            let r = h.pivot_row as usize;
            let t = x[r];
            if t == 0.0 {
                continue;
            }
            x[r] = h.pivot_val * t;
            for k in h.start as usize..h.end as usize {
                x[self.rows[k] as usize] += self.vals[k] * t;
            }
        }
    }

    /// `yᵀ ← yᵀ·B⁻¹`: applies the etas in reverse order (`Eₖ` first).
    /// Each eta touches only its pivot component:
    /// `y[r] ← η_r·y[r] + Σᵢ ηᵢ·y[i]`.
    pub(crate) fn btran(&self, y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.m);
        for h in self.heads.iter().rev() {
            let r = h.pivot_row as usize;
            let mut acc = h.pivot_val * y[r];
            for k in h.start as usize..h.end as usize {
                acc += self.vals[k] * y[self.rows[k] as usize];
            }
            y[r] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: multiply the eta file out against a vector.
    fn ftran_ref(f: &Factorization, x: &[f64]) -> Vec<f64> {
        let mut out = x.to_vec();
        f.ftran(&mut out);
        out
    }

    #[test]
    fn empty_file_is_the_identity() {
        let mut f = Factorization::default();
        f.reset(3);
        let mut x = vec![1.0, -2.0, 3.0];
        f.ftran(&mut x);
        assert_eq!(x, vec![1.0, -2.0, 3.0]);
        let mut y = vec![4.0, 5.0, 6.0];
        f.btran(&mut y);
        assert_eq!(y, vec![4.0, 5.0, 6.0]);
        assert_eq!(f.eta_count(), 0);
        assert_eq!(f.entry_count(), 0);
    }

    #[test]
    fn push_eta_rejects_tiny_pivots() {
        let mut f = Factorization::default();
        f.reset(2);
        assert!(!f.push_eta(0, &[1e-13, 1.0]));
        assert_eq!(f.eta_count(), 0);
        assert!(f.push_eta(0, &[2.0, 1.0]));
        assert_eq!(f.eta_count(), 1);
    }

    #[test]
    fn ftran_btran_agree_with_the_explicit_inverse() {
        // Build B⁻¹ for B = [[2, 1], [1, 3]] by pivoting its columns in:
        // start from I, enter column (2,1) at row 0, then (1,3) at row 1.
        let mut f = Factorization::default();
        f.reset(2);
        // w = B⁻¹_current · A_0 = I·(2,1) = (2,1); pivot row 0.
        assert!(f.push_eta(0, &[2.0, 1.0]));
        // w = E₁·(1,3): t = 1, w0 = 0.5, w1 = 3 - 0.5 = 2.5; pivot row 1.
        let mut w = vec![1.0, 3.0];
        f.ftran(&mut w);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 2.5).abs() < 1e-12);
        assert!(f.push_eta(1, &w));

        // det B = 5; B⁻¹ = [[0.6, -0.2], [-0.2, 0.4]].
        let binv = [[0.6, -0.2], [-0.2, 0.4]];
        for probe in [[1.0, 0.0], [0.0, 1.0], [3.0, -2.0]] {
            let got = ftran_ref(&f, &probe);
            for i in 0..2 {
                let want: f64 = (0..2).map(|k| binv[i][k] * probe[k]).sum();
                assert!((got[i] - want).abs() < 1e-12, "ftran {probe:?} row {i}");
            }
            let mut y = probe.to_vec();
            f.btran(&mut y);
            for k in 0..2 {
                let want: f64 = (0..2).map(|i| probe[i] * binv[i][k]).sum();
                assert!((y[k] - want).abs() < 1e-12, "btran {probe:?} col {k}");
            }
        }
    }

    #[test]
    fn reset_clears_but_keeps_capacity() {
        let mut f = Factorization::default();
        f.reset(2);
        assert!(f.push_eta(0, &[1.0, 0.5]));
        let bytes = f.capacity_bytes();
        assert!(bytes > 0);
        f.reset(2);
        assert_eq!(f.eta_count(), 0);
        assert_eq!(f.capacity_bytes(), bytes);
    }
}
