//! Portable images of a workspace's warm-start bases.
//!
//! A [`LpWorkspace`](crate::LpWorkspace) carries up to two saved bases —
//! one for the dense two-phase path, one for the network (packing-form)
//! path. Long-running services that checkpoint mid-stream need to carry
//! those bases across a process restart, or the first solve after a
//! resume runs cold and, on degenerate problems, may land on a
//! *different optimal vertex* than the uninterrupted run would have —
//! breaking byte-for-byte resume equivalence. [`BasisSnapshot`] is the
//! serializable mirror: export with
//! [`LpWorkspace::export_basis`](crate::LpWorkspace::export_basis),
//! re-install with
//! [`LpWorkspace::import_basis`](crate::LpWorkspace::import_basis).
//!
//! # Examples
//!
//! ```
//! use dpss_lp::{LpWorkspace, Problem, Relation, Sense};
//!
//! # fn main() -> Result<(), dpss_lp::LpError> {
//! let mut ws = LpWorkspace::new();
//! let mut p = Problem::new(Sense::Minimize);
//! let g = p.add_var("g", 0.0, 2.0, 40.0)?;
//! p.add_constraint(&[(g, 1.0)], Relation::Ge, 1.0)?;
//! p.solve_with(&mut ws)?;
//!
//! // Checkpoint, "restart", restore: the next solve starts warm.
//! let snapshot = ws.export_basis();
//! let mut fresh = LpWorkspace::new();
//! fresh.import_basis(&snapshot)?;
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::error::LpError;
use crate::workspace::{LpWorkspace, SavedBasis};

/// Serializable image of the dense-path saved basis (see
/// [`LpWorkspace`]'s module docs for the warm-start story).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseBasisSnapshot {
    /// Constraint rows of the phase-2 system the basis belongs to.
    pub rows: usize,
    /// Non-artificial columns (structural + slack) of that system.
    pub cols: usize,
    /// Basic column per row, all `< cols`.
    pub basis: Vec<usize>,
    /// The phase-2 objective the basis is optimal for.
    pub costs: Vec<f64>,
}

/// Serializable image of the network-path saved basis.
///
/// Only the combinatorial state travels — the basis columns and the
/// nonbasic bound statuses. The factorization is deliberately absent:
/// the kernel rebuilds it deterministically from the problem columns on
/// the next warm install, so snapshots stay small and a restored
/// workspace continues bit-identically to its donor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkBasisSnapshot {
    /// Structural variable count the basis was built for.
    pub n: usize,
    /// Constraint row count the basis was built for.
    pub m: usize,
    /// Basic column per row, each `< n + m`.
    pub basis: Vec<usize>,
    /// Nonbasic-at-upper-bound flags, one per column (`n + m`).
    pub at_upper: Vec<bool>,
}

/// Both saved bases of one workspace, either of which may be absent
/// (a fresh workspace exports an all-`None` snapshot; importing one is
/// a no-op that leaves the next solve cold).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BasisSnapshot {
    /// Dense-path basis, if a dense solve has succeeded.
    pub dense: Option<DenseBasisSnapshot>,
    /// Network-path basis, if a packing-form solve has succeeded.
    pub network: Option<NetworkBasisSnapshot>,
}

impl LpWorkspace {
    /// Exports the saved bases (dense and network paths) as a
    /// serializable snapshot. The workspace is unchanged.
    #[must_use]
    pub fn export_basis(&self) -> BasisSnapshot {
        BasisSnapshot {
            dense: self.saved.as_ref().map(|s| DenseBasisSnapshot {
                rows: s.rows,
                cols: s.cols,
                basis: s.basis.clone(),
                costs: s.costs.clone(),
            }),
            network: self.net_saved.live.then(|| NetworkBasisSnapshot {
                n: self.net_saved.n,
                m: self.net_saved.m,
                basis: self.net_saved.basis.clone(),
                at_upper: self.net_saved.at_upper.clone(),
            }),
        }
    }

    /// Replaces the workspace's saved bases with the snapshot's, after
    /// validating internal consistency. An absent side clears that
    /// side's basis, so `import_basis(&other.export_basis())` always
    /// leaves this workspace warm-starting exactly like `other`.
    ///
    /// # Errors
    ///
    /// [`LpError::InvalidBasis`] if a snapshot's lengths disagree with
    /// its declared shape, an index is out of range, or a float is not
    /// finite. The workspace is left unchanged on error.
    pub fn import_basis(&mut self, snapshot: &BasisSnapshot) -> Result<(), LpError> {
        if let Some(d) = &snapshot.dense {
            validate_dense(d)?;
        }
        if let Some(n) = &snapshot.network {
            validate_network(n)?;
        }
        self.saved = snapshot.dense.as_ref().map(|d| SavedBasis {
            rows: d.rows,
            cols: d.cols,
            basis: d.basis.clone(),
            costs: d.costs.clone(),
        });
        match &snapshot.network {
            Some(n) => {
                let saved = &mut self.net_saved;
                saved.live = true;
                saved.n = n.n;
                saved.m = n.m;
                saved.basis.clear();
                saved.basis.extend_from_slice(&n.basis);
                saved.at_upper.clear();
                saved.at_upper.extend_from_slice(&n.at_upper);
            }
            None => self.net_saved.live = false,
        }
        Ok(())
    }
}

fn validate_dense(d: &DenseBasisSnapshot) -> Result<(), LpError> {
    if d.basis.len() != d.rows {
        return Err(LpError::InvalidBasis {
            what: "dense basis length must equal the declared row count",
        });
    }
    if d.costs.len() != d.cols {
        return Err(LpError::InvalidBasis {
            what: "dense cost length must equal the declared column count",
        });
    }
    if d.basis.iter().any(|&b| b >= d.cols) {
        return Err(LpError::InvalidBasis {
            what: "dense basis entry out of column range",
        });
    }
    if d.costs.iter().any(|c| !c.is_finite()) {
        return Err(LpError::InvalidBasis {
            what: "dense basis costs must be finite",
        });
    }
    Ok(())
}

fn validate_network(n: &NetworkBasisSnapshot) -> Result<(), LpError> {
    let cols = n.n + n.m;
    if n.basis.len() != n.m {
        return Err(LpError::InvalidBasis {
            what: "network basis length must equal the declared row count",
        });
    }
    if n.at_upper.len() != cols {
        return Err(LpError::InvalidBasis {
            what: "network at-upper flags must cover every column",
        });
    }
    if n.basis.iter().any(|&b| b >= cols) {
        return Err(LpError::InvalidBasis {
            what: "network basis entry out of column range",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation, Sense};

    fn cover_lp(demand: f64, price: f64) -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let g = p.add_var("g", 0.0, 5.0, price).unwrap();
        let w = p.add_var("w", 0.0, f64::INFINITY, 1.0).unwrap();
        p.add_constraint(&[(g, 1.0), (w, -1.0)], Relation::Ge, demand)
            .unwrap();
        p
    }

    fn packing_lp(cap: f64) -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 3.0, -2.0).unwrap();
        let y = p.add_var("y", 0.0, 3.0, -1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, cap)
            .unwrap();
        p
    }

    #[test]
    fn fresh_workspace_exports_empty_snapshot() {
        let snap = LpWorkspace::new().export_basis();
        assert_eq!(snap, BasisSnapshot::default());
    }

    #[test]
    fn dense_roundtrip_restores_the_warm_path() {
        let mut ws = LpWorkspace::new();
        cover_lp(1.0, 40.0).solve_with(&mut ws).unwrap();
        let snap = ws.export_basis();
        assert!(snap.dense.is_some());
        assert!(snap.network.is_none());

        // A fresh workspace with the imported basis solves warm, and the
        // solution matches the donor workspace's continuation exactly.
        let mut fresh = LpWorkspace::new();
        fresh.import_basis(&snap).unwrap();
        let a = cover_lp(2.0, 45.0).solve_with(&mut ws).unwrap();
        let b = cover_lp(2.0, 45.0).solve_with(&mut fresh).unwrap();
        assert_eq!(a.objective().to_bits(), b.objective().to_bits());
        assert_eq!(fresh.warm_solves(), 1);
        assert_eq!(fresh.cold_solves(), 0);
    }

    #[test]
    fn network_roundtrip_restores_the_warm_path() {
        let mut ws = LpWorkspace::new();
        packing_lp(2.0).solve_network_with(&mut ws).unwrap();
        let snap = ws.export_basis();
        assert!(snap.network.is_some());

        let mut fresh = LpWorkspace::new();
        fresh.import_basis(&snap).unwrap();
        let a = packing_lp(2.5).solve_network_with(&mut ws).unwrap();
        let b = packing_lp(2.5).solve_network_with(&mut fresh).unwrap();
        assert_eq!(a.objective().to_bits(), b.objective().to_bits());
        assert_eq!(fresh.warm_solves(), 1);
    }

    #[test]
    fn importing_an_empty_snapshot_clears_saved_bases() {
        let mut ws = LpWorkspace::new();
        cover_lp(1.0, 40.0).solve_with(&mut ws).unwrap();
        ws.import_basis(&BasisSnapshot::default()).unwrap();
        cover_lp(1.5, 40.0).solve_with(&mut ws).unwrap();
        assert_eq!(ws.cold_solves(), 2);
        assert_eq!(ws.warm_solves(), 0);
    }

    #[test]
    fn malformed_snapshots_are_rejected_and_leave_the_workspace_alone() {
        let mut ws = LpWorkspace::new();
        cover_lp(1.0, 40.0).solve_with(&mut ws).unwrap();
        let good = ws.export_basis();

        let mut bad = good.clone();
        if let Some(d) = bad.dense.as_mut() {
            d.basis.push(0);
        }
        assert!(matches!(
            ws.import_basis(&bad),
            Err(LpError::InvalidBasis { .. })
        ));

        let mut bad = good.clone();
        if let Some(d) = bad.dense.as_mut() {
            d.basis[0] = d.cols;
        }
        assert!(matches!(
            ws.import_basis(&bad),
            Err(LpError::InvalidBasis { .. })
        ));

        let mut bad = good.clone();
        if let Some(d) = bad.dense.as_mut() {
            d.costs[0] = f64::NAN;
        }
        assert!(matches!(
            ws.import_basis(&bad),
            Err(LpError::InvalidBasis { .. })
        ));

        // The failed imports above must not have clobbered the basis.
        cover_lp(2.0, 41.0).solve_with(&mut ws).unwrap();
        assert_eq!(ws.warm_solves(), 1);
    }

    #[test]
    fn malformed_network_snapshots_are_rejected() {
        let mut ws = LpWorkspace::new();
        packing_lp(2.0).solve_network_with(&mut ws).unwrap();
        let good = ws.export_basis();

        let mut bad = good.clone();
        if let Some(n) = bad.network.as_mut() {
            n.at_upper.pop();
        }
        assert!(ws.import_basis(&bad).is_err());

        let mut bad = good.clone();
        if let Some(n) = bad.network.as_mut() {
            n.basis.push(0);
        }
        assert!(ws.import_basis(&bad).is_err());

        let mut bad = good;
        if let Some(n) = bad.network.as_mut() {
            n.basis[0] = n.n + n.m;
        }
        assert!(ws.import_basis(&bad).is_err());
    }
}
