use crate::{LpError, Solution};

/// Optimization direction of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sense {
    /// Minimize the objective (the DPSS cost problems are minimizations).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Relation of a linear constraint's left-hand side to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

/// Opaque handle to a decision variable of a [`Problem`].
///
/// Handles are only valid for the problem that created them; using a handle
/// with another problem yields [`LpError::UnknownVariable`] (or refers to an
/// unrelated variable if the index happens to exist — handles are plain
/// indices, so keep problems separate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Variable(pub(crate) usize);

impl Variable {
    /// Index of this variable within its problem, in insertion order.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to a constraint row of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Index of this constraint within its problem, in insertion order.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct VarData {
    pub(crate) name: String,
    pub(crate) lo: f64,
    pub(crate) up: f64,
    pub(crate) obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct ConstraintData {
    /// `(variable index, coefficient)`, deduplicated by summation.
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// A linear program under construction.
///
/// Build a problem by adding box-bounded variables with objective
/// coefficients ([`Problem::add_var`]) and linear constraints
/// ([`Problem::add_constraint`]), then call [`Problem::solve`].
///
/// # Examples
///
/// The paper's `P4` (long-term-ahead purchasing) is a one-variable LP:
/// minimize `g·w` for a signed weight `w` subject to a demand cover and the
/// grid cap:
///
/// ```
/// use dpss_lp::{Problem, Relation, Sense};
///
/// # fn main() -> Result<(), dpss_lp::LpError> {
/// let (w, need, cap) = (-3.0, 1.2, 2.0);
/// let mut p = Problem::new(Sense::Minimize);
/// let g = p.add_var("g_bef", 0.0, cap, w)?;
/// p.add_constraint(&[(g, 1.0)], Relation::Ge, need)?;
/// let sol = p.solve()?;
/// // Negative weight → buy as much as the cap allows.
/// assert!((sol.value(g) - cap).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarData>,
    pub(crate) constraints: Vec<ConstraintData>,
    max_pivots: Option<usize>,
}

impl Problem {
    /// Creates an empty problem with the given optimization sense.
    #[must_use]
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            max_pivots: None,
        }
    }

    /// Convenience constructor for a minimization problem.
    #[must_use]
    pub fn minimize() -> Self {
        Problem::new(Sense::Minimize)
    }

    /// Convenience constructor for a maximization problem.
    #[must_use]
    pub fn maximize() -> Self {
        Problem::new(Sense::Maximize)
    }

    /// Adds a decision variable with bounds `[lo, up]` and objective
    /// coefficient `obj`, returning its handle.
    ///
    /// Bounds may be infinite (`f64::NEG_INFINITY` / `f64::INFINITY`) to
    /// express one-sided or free variables.
    ///
    /// # Errors
    ///
    /// * [`LpError::NotFinite`] if `obj` is not finite or a bound is NaN;
    /// * [`LpError::EmptyBounds`] if `lo > up`.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lo: f64,
        up: f64,
        obj: f64,
    ) -> Result<Variable, LpError> {
        if !obj.is_finite() {
            return Err(LpError::NotFinite {
                what: "objective coefficient",
            });
        }
        if lo.is_nan() || up.is_nan() {
            return Err(LpError::NotFinite { what: "bound" });
        }
        if lo > up {
            return Err(LpError::EmptyBounds {
                var: self.vars.len(),
            });
        }
        let idx = self.vars.len();
        self.vars.push(VarData {
            name: name.into(),
            lo,
            up,
            obj,
        });
        Ok(Variable(idx))
    }

    /// Adds the linear constraint `Σ coeff·var REL rhs`.
    ///
    /// Repeated variables in `terms` are summed. Terms with zero coefficient
    /// are kept (harmless) so callers can build rows mechanically.
    ///
    /// # Errors
    ///
    /// * [`LpError::UnknownVariable`] if a handle does not belong here;
    /// * [`LpError::NotFinite`] if a coefficient or `rhs` is not finite.
    pub fn add_constraint(
        &mut self,
        terms: &[(Variable, f64)],
        relation: Relation,
        rhs: f64,
    ) -> Result<ConstraintId, LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NotFinite { what: "rhs" });
        }
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            if v.0 >= self.vars.len() {
                return Err(LpError::UnknownVariable { var: v.0 });
            }
            if !c.is_finite() {
                return Err(LpError::NotFinite {
                    what: "constraint coefficient",
                });
            }
            match dense.iter_mut().find(|(j, _)| *j == v.0) {
                Some((_, acc)) => *acc += c,
                None => dense.push((v.0, c)),
            }
        }
        let idx = self.constraints.len();
        self.constraints.push(ConstraintData {
            terms: dense,
            relation,
            rhs,
        });
        Ok(ConstraintId(idx))
    }

    /// Overrides the objective coefficient of an existing variable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`] or [`LpError::NotFinite`].
    #[allow(clippy::indexing_slicing)]
    pub fn set_objective(&mut self, var: Variable, obj: f64) -> Result<(), LpError> {
        if var.0 >= self.vars.len() {
            return Err(LpError::UnknownVariable { var: var.0 });
        }
        if !obj.is_finite() {
            return Err(LpError::NotFinite {
                what: "objective coefficient",
            });
        }
        // audit:allow(slice-index): guarded by the UnknownVariable check above
        self.vars[var.0].obj = obj;
        Ok(())
    }

    /// Replaces the bounds of an existing variable — the re-solve edit
    /// behind rolling-horizon cap updates (e.g. tightening an interconnect
    /// pair cap between frames). The problem's shape is unchanged, so a
    /// held [`LpWorkspace`](crate::LpWorkspace) basis stays eligible for a
    /// warm start on the next [`solve_with`](Self::solve_with).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`], [`LpError::NotFinite`] (NaN
    /// bound) or [`LpError::EmptyBounds`] if `lo > up`.
    #[allow(clippy::indexing_slicing)]
    pub fn set_bounds(&mut self, var: Variable, lo: f64, up: f64) -> Result<(), LpError> {
        if var.0 >= self.vars.len() {
            return Err(LpError::UnknownVariable { var: var.0 });
        }
        if lo.is_nan() || up.is_nan() {
            return Err(LpError::NotFinite { what: "bound" });
        }
        if lo > up {
            return Err(LpError::EmptyBounds { var: var.0 });
        }
        // audit:allow(slice-index): guarded by the UnknownVariable check above
        self.vars[var.0].lo = lo;
        // audit:allow(slice-index): guarded by the UnknownVariable check above
        self.vars[var.0].up = up;
        Ok(())
    }

    /// Replaces the right-hand side of an existing constraint (the other
    /// half of a frame-to-frame re-solve edit: demands and availabilities
    /// move, the constraint structure does not).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownConstraint`] or [`LpError::NotFinite`].
    #[allow(clippy::indexing_slicing)]
    pub fn set_rhs(&mut self, constraint: ConstraintId, rhs: f64) -> Result<(), LpError> {
        if constraint.0 >= self.constraints.len() {
            return Err(LpError::UnknownConstraint {
                constraint: constraint.0,
            });
        }
        if !rhs.is_finite() {
            return Err(LpError::NotFinite { what: "rhs" });
        }
        // audit:allow(slice-index): guarded by the UnknownConstraint check above
        self.constraints[constraint.0].rhs = rhs;
        Ok(())
    }

    /// Caps the number of simplex pivots (both phases combined). The default
    /// budget is `200·(rows + columns) + 2000`, far above what well-posed
    /// DPSS problems need.
    pub fn set_max_pivots(&mut self, max_pivots: usize) {
        self.max_pivots = Some(max_pivots);
    }

    /// Number of variables added so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (for diagnostics).
    ///
    /// Returns `None` for foreign handles.
    #[must_use]
    pub fn var_name(&self, var: Variable) -> Option<&str> {
        self.vars.get(var.0).map(|v| v.name.as_str())
    }

    /// Optimization sense of this problem.
    #[must_use]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    pub(crate) fn pivot_budget(&self, rows: usize, cols: usize) -> usize {
        self.max_pivots.unwrap_or(200 * (rows + cols) + 2_000)
    }

    /// Solves the problem with the two-phase simplex method.
    ///
    /// Allocates a fresh [`LpWorkspace`](crate::LpWorkspace) per call; hot
    /// loops that solve many structurally similar problems should hold one
    /// workspace and call [`solve_with`](Self::solve_with) instead, which
    /// reuses buffers and warm-starts from the previous optimal basis.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] if no point satisfies all constraints and
    ///   bounds;
    /// * [`LpError::Unbounded`] if the objective can be improved without
    ///   limit;
    /// * [`LpError::IterationLimit`] if the pivot budget is exhausted.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&mut crate::LpWorkspace::new())
    }

    /// Solves the problem reusing `ws`'s buffers and warm-start basis.
    ///
    /// Semantically identical to [`solve`](Self::solve): the returned
    /// objective and the feasibility verdict never depend on the
    /// workspace's history (a stale basis is detected and the solver falls
    /// back to the cold path). Only the work done to get there changes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve`](Self::solve).
    pub fn solve_with(&self, ws: &mut crate::LpWorkspace) -> Result<Solution, LpError> {
        crate::standard::solve(self, ws)
    }

    /// Solves the problem on the sparse revised-simplex **network path**
    /// when it is in packing form (every constraint `≤` with
    /// non-negative rhs, every variable bounded `[0, u]` with `u`
    /// finite — see [`is_network_form`](Self::is_network_form)), and
    /// transparently falls back to the dense path
    /// ([`solve_with`](Self::solve_with)) otherwise.
    ///
    /// Semantically identical to [`solve`](Self::solve) on the problems
    /// it accepts: the optimal objective agrees with the dense solver to
    /// [`TOLERANCE`](crate::TOLERANCE) (the optimal *vertex* may differ
    /// on degenerate problems, exactly as warm and cold dense solves
    /// may). The workspace caches the final basis and its inverse, so
    /// re-solves after [`set_objective`](Self::set_objective) /
    /// [`set_bounds`](Self::set_bounds) / [`set_rhs`](Self::set_rhs)
    /// edits resume from the previous optimum.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve`](Self::solve).
    pub fn solve_network_with(&self, ws: &mut crate::LpWorkspace) -> Result<Solution, LpError> {
        crate::network::solve(self, ws)
    }

    /// Whether this problem is in the packing form the network path
    /// ([`solve_network_with`](Self::solve_network_with)) handles
    /// natively: every constraint `≤` with non-negative right-hand side
    /// and every variable bounded `[0, u]` with `u` finite.
    #[must_use]
    pub fn is_network_form(&self) -> bool {
        crate::network::is_network_form(self)
    }

    /// Evaluates the objective at an arbitrary assignment (useful in tests
    /// and for verifying candidate points).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_vars()`.
    #[must_use]
    pub fn objective_at(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.vars.len(), "assignment length mismatch");
        self.vars.iter().zip(values).map(|(v, x)| v.obj * x).sum()
    }

    /// Checks whether an assignment satisfies all bounds and constraints
    /// within tolerance `tol` (useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_vars()`.
    #[must_use]
    #[allow(clippy::indexing_slicing)]
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        assert_eq!(values.len(), self.vars.len(), "assignment length mismatch");
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lo - tol || x > v.up + tol {
                return false;
            }
        }
        for c in &self.constraints {
            // audit:allow(slice-index): term indices were validated by add_constraint; length asserted above
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * values[j]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_validates_input() {
        let mut p = Problem::minimize();
        assert!(matches!(
            p.add_var("x", 0.0, 1.0, f64::NAN),
            Err(LpError::NotFinite { .. })
        ));
        assert!(matches!(
            p.add_var("x", f64::NAN, 1.0, 0.0),
            Err(LpError::NotFinite { .. })
        ));
        assert!(matches!(
            p.add_var("x", 2.0, 1.0, 0.0),
            Err(LpError::EmptyBounds { var: 0 })
        ));
        assert!(p.add_var("x", 0.0, f64::INFINITY, 1.0).is_ok());
        assert_eq!(p.num_vars(), 1);
    }

    #[test]
    fn add_constraint_validates_input() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 1.0, 1.0).unwrap();
        assert!(matches!(
            p.add_constraint(&[(Variable(7), 1.0)], Relation::Le, 1.0),
            Err(LpError::UnknownVariable { var: 7 })
        ));
        assert!(matches!(
            p.add_constraint(&[(x, f64::INFINITY)], Relation::Le, 1.0),
            Err(LpError::NotFinite { .. })
        ));
        assert!(matches!(
            p.add_constraint(&[(x, 1.0)], Relation::Le, f64::NAN),
            Err(LpError::NotFinite { .. })
        ));
        let id = p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        assert_eq!(id.index(), 0);
        assert_eq!(p.num_constraints(), 1);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0), (x, 2.0)], Relation::Ge, 6.0)
            .unwrap();
        // 3x >= 6 → x >= 2.
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn set_objective_replaces_coefficient() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 1.0, 2.0, 1.0).unwrap();
        p.set_objective(x, -1.0).unwrap();
        let sol = p.solve().unwrap();
        // Minimizing −x drives x to its upper bound.
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
        assert!(p.set_objective(Variable(9), 1.0).is_err());
        assert!(p.set_objective(x, f64::NAN).is_err());
    }

    #[test]
    fn set_bounds_replaces_and_validates() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 5.0, 1.0).unwrap();
        p.set_bounds(x, 2.0, 3.0).unwrap();
        let sol = p.solve().unwrap();
        // Minimizing x within the tightened box lands on the new floor.
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
        assert!(matches!(
            p.set_bounds(Variable(9), 0.0, 1.0),
            Err(LpError::UnknownVariable { var: 9 })
        ));
        assert!(matches!(
            p.set_bounds(x, f64::NAN, 1.0),
            Err(LpError::NotFinite { .. })
        ));
        assert!(matches!(
            p.set_bounds(x, 2.0, 1.0),
            Err(LpError::EmptyBounds { var: 0 })
        ));
    }

    #[test]
    fn set_rhs_replaces_and_validates() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0, 1.0).unwrap();
        let c = p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0).unwrap();
        p.set_rhs(c, 4.0).unwrap();
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 4.0).abs() < 1e-9);
        assert!(matches!(
            p.set_rhs(ConstraintId(3), 1.0),
            Err(LpError::UnknownConstraint { constraint: 3 })
        ));
        assert!(matches!(
            p.set_rhs(c, f64::INFINITY),
            Err(LpError::NotFinite { .. })
        ));
    }

    #[test]
    fn introspection_helpers() {
        let mut p = Problem::maximize();
        let x = p.add_var("mwh", 0.0, 1.0, 2.0).unwrap();
        assert_eq!(p.var_name(x), Some("mwh"));
        assert_eq!(p.var_name(Variable(4)), None);
        assert_eq!(p.sense(), Sense::Maximize);
        assert_eq!(p.objective_at(&[3.0]), 6.0);
        assert!(p.is_feasible(&[0.5], 1e-9));
        assert!(!p.is_feasible(&[1.5], 1e-9));
    }

    #[test]
    fn feasibility_checks_all_relations() {
        let mut p = Problem::minimize();
        let x = p
            .add_var("x", f64::NEG_INFINITY, f64::INFINITY, 0.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, -2.0).unwrap();
        p.add_constraint(&[(x, 2.0)], Relation::Eq, 2.0).unwrap();
        assert!(p.is_feasible(&[1.0], 1e-9));
        assert!(!p.is_feasible(&[0.0], 1e-9)); // violates Eq
        assert!(!p.is_feasible(&[3.0], 1e-9)); // violates Le and Eq
    }
}
