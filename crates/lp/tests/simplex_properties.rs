//! Property-based tests for the simplex solver.
//!
//! Strategy: generate LPs with a *known feasible point* by construction, so
//! the solver must return `Ok`, and then check the two defining properties
//! of an optimum — feasibility of the returned point and dominance over
//! every feasible point we can sample.

use dpss_lp::{LpError, Problem, Relation, Sense};
use proptest::prelude::*;

/// A randomly generated bounded-feasible LP together with one feasible
/// point used as a witness.
#[derive(Debug, Clone)]
struct FeasibleLp {
    objective: Vec<f64>,
    bounds: Vec<(f64, f64)>,
    /// `(coefficients, rhs)` rows, all `≤`.
    rows: Vec<(Vec<f64>, f64)>,
    witness: Vec<f64>,
}

impl FeasibleLp {
    fn build(&self, sense: Sense) -> (Problem, Vec<dpss_lp::Variable>) {
        let mut p = Problem::new(sense);
        let vars: Vec<_> = self
            .objective
            .iter()
            .zip(&self.bounds)
            .enumerate()
            .map(|(i, (&c, &(lo, up)))| p.add_var(format!("x{i}"), lo, up, c).unwrap())
            .collect();
        for (coeffs, rhs) in &self.rows {
            let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
            p.add_constraint(&terms, Relation::Le, *rhs).unwrap();
        }
        (p, vars)
    }
}

fn feasible_lp(max_vars: usize, max_rows: usize) -> impl Strategy<Value = FeasibleLp> {
    (1..=max_vars).prop_flat_map(move |n| {
        let objective = proptest::collection::vec(-10.0..10.0f64, n);
        let widths = proptest::collection::vec((0.0..5.0f64, 0.1..8.0f64), n);
        let fractions = proptest::collection::vec(0.0..1.0f64, n);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(-4.0..4.0f64, n),
                0.0..6.0f64, // extra slack beyond the witness activity
            ),
            0..=max_rows,
        );
        (objective, widths, fractions, rows).prop_map(|(objective, widths, fractions, raw_rows)| {
            let bounds: Vec<(f64, f64)> = widths
                .iter()
                .map(|&(lo, w)| (lo - 2.0, lo - 2.0 + w))
                .collect();
            let witness: Vec<f64> = bounds
                .iter()
                .zip(&fractions)
                .map(|(&(lo, up), &f)| lo + f * (up - lo))
                .collect();
            let rows = raw_rows
                .into_iter()
                .map(|(coeffs, slack)| {
                    let activity: f64 = coeffs.iter().zip(&witness).map(|(a, x)| a * x).sum();
                    (coeffs, activity + slack)
                })
                .collect();
            FeasibleLp {
                objective,
                bounds,
                rows,
                witness,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every generated LP has a feasible witness and box bounds, so the
    /// solver must return an optimal solution that (a) is feasible and
    /// (b) weakly dominates the witness.
    #[test]
    fn solver_finds_feasible_dominating_point(lp in feasible_lp(5, 5)) {
        let (p, _) = lp.build(Sense::Minimize);
        let sol = p.solve().expect("bounded feasible LP must solve");
        prop_assert!(p.is_feasible(sol.values(), 1e-6),
            "solution {:?} infeasible", sol.values());
        let witness_obj = p.objective_at(&lp.witness);
        prop_assert!(sol.objective() <= witness_obj + 1e-6,
            "objective {} worse than witness {}", sol.objective(), witness_obj);
    }

    /// Maximization must mirror minimization of the negated objective.
    #[test]
    fn max_equals_negated_min(lp in feasible_lp(4, 4)) {
        let (pmax, _) = lp.build(Sense::Maximize);
        let mut neg = lp.clone();
        for c in &mut neg.objective { *c = -*c; }
        let (pmin, _) = neg.build(Sense::Minimize);
        let smax = pmax.solve().expect("max LP must solve");
        let smin = pmin.solve().expect("min LP must solve");
        prop_assert!((smax.objective() + smin.objective()).abs() < 1e-6,
            "max {} vs min {}", smax.objective(), smin.objective());
    }

    /// The optimum weakly dominates *any* sampled feasible point, not just
    /// the construction witness.
    #[test]
    fn optimum_dominates_random_feasible_points(
        lp in feasible_lp(4, 3),
        samples in proptest::collection::vec(proptest::collection::vec(0.0..1.0f64, 4), 8),
    ) {
        let (p, _) = lp.build(Sense::Minimize);
        let sol = p.solve().expect("bounded feasible LP must solve");
        for frac in samples {
            let candidate: Vec<f64> = lp.bounds.iter().zip(&frac)
                .map(|(&(lo, up), &f)| lo + f * (up - lo))
                .collect();
            if p.is_feasible(&candidate, 0.0) {
                let cand_obj = p.objective_at(&candidate);
                prop_assert!(sol.objective() <= cand_obj + 1e-6,
                    "optimum {} beaten by sampled point {}", sol.objective(), cand_obj);
            }
        }
    }

    /// Tightening the feasible region can never improve the optimum.
    #[test]
    fn extra_constraint_never_improves_objective(lp in feasible_lp(4, 3)) {
        let (p, _) = lp.build(Sense::Minimize);
        let base = p.solve().expect("base LP must solve");

        // Add a redundant-at-witness constraint: sum of vars ≤ activity+1.
        let mut tightened = lp.clone();
        let coeffs = vec![1.0; lp.objective.len()];
        let activity: f64 = lp.witness.iter().sum();
        tightened.rows.push((coeffs, activity + 1.0));
        let (p2, _) = tightened.build(Sense::Minimize);
        let tight = p2.solve().expect("tightened LP keeps the witness feasible");
        prop_assert!(tight.objective() >= base.objective() - 1e-6,
            "tightening improved objective: {} < {}", tight.objective(), base.objective());
    }
}

#[test]
fn infeasible_box_and_constraint_combination() {
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, 1.0, 1.0).unwrap();
    let y = p.add_var("y", 0.0, 1.0, 1.0).unwrap();
    p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 3.0)
        .unwrap();
    assert!(matches!(p.solve(), Err(LpError::Infeasible)));
}

#[test]
fn large_chain_lp_solves_quickly() {
    // A frame-sized LP: 200 variables chained by 199 coupling rows, the
    // shape of the offline per-frame benchmark problem.
    let mut p = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (0..200)
        .map(|i| {
            p.add_var(format!("v{i}"), 0.0, 10.0, 1.0 + (i % 7) as f64)
                .unwrap()
        })
        .collect();
    for w in vars.windows(2) {
        p.add_constraint(&[(w[0], 1.0), (w[1], 1.0)], Relation::Ge, 1.0)
            .unwrap();
    }
    let sol = p.solve().unwrap();
    assert!(p.is_feasible(sol.values(), 1e-6));
    // Optimal: alternate 1/0 patterns; objective must be at most naive
    // all-halves assignment.
    let naive = vec![0.5; 200];
    assert!(sol.objective() <= p.objective_at(&naive) + 1e-6);
}
