//! Long warm re-solve chains across refactorization boundaries.
//!
//! `tests/network_equivalence.rs` pins the factorized network path to
//! the dense simplex on short frame-to-frame chains. This suite is the
//! endurance version of that contract: **200+ sequential edits** through
//! one workspace — every bound, rhs and objective rewritten each step —
//! with the objective checked against a cold dense solve after every
//! edit. Two workspaces ride the same chain:
//!
//! * one with the default eta cap, so the chain crosses refactorization
//!   boundaries wherever the eta file naturally fills up or a small
//!   pivot trips the drift guard;
//! * one with the cap forced to 1 (`set_network_refactor_cap`), so
//!   *every* pivot lands on a refactorization boundary — the worst case
//!   for a factorization bug to hide behind.
//!
//! Any divergence between the eta-file algebra and a from-scratch
//! factorization shows up as an objective drift here long before it
//! would surface in a fleet table.

use dpss_lp::{ConstraintId, LpWorkspace, Problem, Relation, Sense, Variable};
use proptest::prelude::*;

/// The settlement flow shape (`FleetPlanner::plan`): one variable per
/// directed site pair, donor-budget and recipient-need rows.
struct FlowTemplate {
    flows: Vec<Variable>,
    donor_rows: Vec<ConstraintId>,
    need_rows: Vec<ConstraintId>,
}

fn build_flow(
    sites: usize,
    caps: &[f64],
    donors: &[f64],
    needs: &[f64],
    prices: &[f64],
) -> (Problem, FlowTemplate) {
    let n = sites;
    let mut p = Problem::new(Sense::Minimize);
    let mut flows = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let k = flows.len();
            let f = p
                .add_var(format!("f{i}_{j}"), 0.0, caps[k], -prices[k])
                .unwrap();
            flows.push(f);
        }
    }
    let var = |i: usize, j: usize| flows[i * (n - 1) + if j > i { j - 1 } else { j }];
    let mut donor_rows = Vec::new();
    let mut need_rows = Vec::new();
    for (i, &budget) in donors.iter().enumerate().take(n) {
        let terms: Vec<(Variable, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (var(i, j), 1.0))
            .collect();
        donor_rows.push(p.add_constraint(&terms, Relation::Le, budget).unwrap());
    }
    for (j, &need) in needs.iter().enumerate().take(n) {
        let terms: Vec<(Variable, f64)> = (0..n)
            .filter(|&i| i != j)
            .map(|i| (var(i, j), 0.95))
            .collect();
        need_rows.push(p.add_constraint(&terms, Relation::Le, need).unwrap());
    }
    (
        p,
        FlowTemplate {
            flows,
            donor_rows,
            need_rows,
        },
    )
}

/// A tiny xorshift stream: the 200+ edit payloads are derived from one
/// proptest-chosen seed instead of materializing thousands of floats
/// through strategy machinery (which shrinks glacially at this length).
struct Stream(u64);

impl Stream {
    fn unit(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        // 53 mantissa bits → exact dyadic rational in [0, 1).
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

/// The chain's mutable template data, walked frame to frame.
struct ChainData {
    caps: Vec<f64>,
    donors: Vec<f64>,
    needs: Vec<f64>,
    prices: Vec<f64>,
}

impl ChainData {
    fn draw(s: &mut Stream) -> Self {
        ChainData {
            caps: (0..12).map(|_| s.in_range(0.0, 3.0)).collect(),
            donors: (0..4).map(|_| s.in_range(0.0, 4.0)).collect(),
            needs: (0..4).map(|_| s.in_range(0.0, 4.0)).collect(),
            prices: (0..12).map(|_| s.in_range(1.0, 90.0)).collect(),
        }
    }

    /// One frame of drift: every cap, price, donor and need moves by a
    /// bounded multiplicative jitter — the way consecutive coarse frames
    /// reshape a fleet template. Kept gentle so the previous optimal
    /// basis has a real chance of staying primal-feasible (the warm
    /// path); every 16th frame redraws the template wholesale to stress
    /// warm rejection and cold recovery too.
    fn step(&mut self, s: &mut Stream, step: usize) {
        if step.is_multiple_of(16) {
            *self = Self::draw(s);
            return;
        }
        let jitter = |v: &mut f64, s: &mut Stream, lo: f64, hi: f64| {
            *v = (*v * s.in_range(0.85, 1.18) + s.in_range(-0.02, 0.02)).clamp(lo, hi);
        };
        for v in &mut self.caps {
            jitter(v, s, 0.0, 3.0);
        }
        for v in &mut self.donors {
            jitter(v, s, 0.0, 4.0);
        }
        for v in &mut self.needs {
            jitter(v, s, 0.0, 4.0);
        }
        for v in &mut self.prices {
            jitter(v, s, 1.0, 90.0);
        }
    }

    /// Writes the full edit surface into the problem.
    fn apply(&self, p: &mut Problem, t: &FlowTemplate) {
        for (k, &f) in t.flows.iter().enumerate() {
            p.set_bounds(f, 0.0, self.caps[k]).unwrap();
            p.set_objective(f, -self.prices[k]).unwrap();
        }
        for (row, &d) in t.donor_rows.iter().zip(&self.donors) {
            p.set_rhs(*row, d).unwrap();
        }
        for (row, &nd) in t.need_rows.iter().zip(&self.needs) {
            p.set_rhs(*row, nd).unwrap();
        }
    }
}

fn assert_agrees(p: &Problem, ws: &mut LpWorkspace, step: usize, tag: &str) {
    let dense = p.solve().expect("packing LPs are always feasible");
    let net = p
        .solve_network_with(ws)
        .expect("packing LPs are always feasible");
    let tol = 1e-9 * (1.0 + dense.objective().abs());
    assert!(
        (dense.objective() - net.objective()).abs() <= tol,
        "step {step} ({tag}): dense {} vs factorized {} (warm: {})",
        dense.objective(),
        net.objective(),
        ws.last_was_warm()
    );
    assert!(
        p.is_feasible(net.values(), 1e-6),
        "step {step} ({tag}): factorized point infeasible"
    );
}

fn run_chain(seed: u64, edits: usize) {
    let mut s = Stream(seed | 1);
    let mut data = ChainData::draw(&mut s);
    let (mut p, template) = build_flow(4, &data.caps, &data.donors, &data.needs, &data.prices);
    assert!(p.is_network_form());

    let mut natural = LpWorkspace::new();
    let mut forced = LpWorkspace::new();
    forced.set_network_refactor_cap(1);

    assert_agrees(&p, &mut natural, 0, "natural cap");
    assert_agrees(&p, &mut forced, 0, "cap = 1");
    for step in 1..=edits {
        data.step(&mut s, step);
        data.apply(&mut p, &template);
        assert_agrees(&p, &mut natural, step, "natural cap");
        assert_agrees(&p, &mut forced, step, "cap = 1");
    }

    // The chain must actually exercise what it claims to: warm
    // re-solves on both workspaces, refactorization boundaries inside
    // the forced one (one rebuild per pivot beyond the first).
    let nat = natural.stats();
    assert!(
        nat.warm_solves as usize >= edits / 4,
        "warm path disengaged: {} warm / {} rejects of {} solves",
        nat.warm_solves,
        nat.warm_rejects,
        nat.solves
    );
    // Bound-flip pivots never touch the eta file, so the forced cadence
    // is not exactly one rebuild per pivot — but it must rebuild on
    // every basis exchange, which puts it far past one per solve and
    // far past the natural cadence over the same chain.
    let f = forced.stats();
    assert!(
        f.refactorizations as usize > edits,
        "cap = 1 must cross a refactorization boundary every solve: \
         {} rebuilds for {} pivots over {} solves",
        f.refactorizations,
        f.pivots,
        f.kernel_solves
    );
    assert!(
        f.refactorizations > nat.refactorizations,
        "forced cadence ({}) must out-rebuild the natural cap ({})",
        f.refactorizations,
        nat.refactorizations
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 200+ full-surface edits: the factorized path never drifts from
    /// dense, warm or cold, natural or forced refactorization cadence.
    #[test]
    fn two_hundred_edit_chains_never_drift(
        seed in 0u64..u64::MAX,
        edits in 200usize..=224,
    ) {
        run_chain(seed, edits);
    }
}

/// A pinned instance of the chain so the 200-edit contract runs even
/// under `--test-threads` setups that filter proptest suites, and fails
/// reproducibly without shrinking.
#[test]
fn pinned_two_hundred_forty_edit_chain() {
    run_chain(0x1CDC_5201_3DEF_ACED, 240);
}
