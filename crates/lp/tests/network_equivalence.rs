//! Network-path ↔ dense-simplex equivalence properties.
//!
//! The contract of [`Problem::solve_network_with`] is that the sparse
//! revised-simplex path only changes *how* a packing-form LP is solved,
//! never *what* it returns: the objective must match the dense two-phase
//! solver to 1e-9 and the returned point must be feasible. The property
//! tests below randomize the two fleet flow shapes `dpss-core` solves
//! every coarse frame — per-link settlement flows and the aggregated
//! prospective (total + bought per donor) form — plus warm re-solve
//! chains through one workspace with the full edit surface
//! (`set_objective` / `set_bounds` / `set_rhs`).

use dpss_lp::{LpWorkspace, Problem, Relation, Sense, Variable};
use proptest::prelude::*;

/// A fleet-flow settlement LP: one variable per directed site pair
/// (bounded by the pair cap), donor-budget and recipient-need rows, a
/// delivered-value objective — the exact shape of `FleetPlanner::plan`.
#[derive(Debug, Clone)]
struct FlowInstance {
    sites: usize,
    /// Pair cap per ordered pair, row-major with unused diagonal.
    caps: Vec<f64>,
    donors: Vec<f64>,
    needs: Vec<f64>,
    prices: Vec<f64>,
    /// Per-link loss factor applied on the need rows.
    losses: Vec<f64>,
}

impl FlowInstance {
    fn build(&self) -> (Problem, Vec<Variable>) {
        let (p, flows, _, _) = self.build_full();
        (p, flows)
    }

    fn build_full(
        &self,
    ) -> (
        Problem,
        Vec<Variable>,
        Vec<dpss_lp::ConstraintId>,
        Vec<dpss_lp::ConstraintId>,
    ) {
        let n = self.sites;
        let mut p = Problem::new(Sense::Minimize);
        let mut flows = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let f = p
                    .add_var(
                        format!("f{i}_{j}"),
                        0.0,
                        self.caps[i * n + j],
                        -self.prices[j] * (1.0 - self.losses[i * n + j]),
                    )
                    .unwrap();
                flows.push(f);
            }
        }
        let var = |i: usize, j: usize| {
            let k = i * (n - 1) + if j > i { j - 1 } else { j };
            flows[k]
        };
        let mut donor_rows = Vec::new();
        let mut need_rows = Vec::new();
        for i in 0..n {
            let terms: Vec<(Variable, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (var(i, j), 1.0))
                .collect();
            donor_rows.push(
                p.add_constraint(&terms, Relation::Le, self.donors[i])
                    .unwrap(),
            );
        }
        for j in 0..n {
            let terms: Vec<(Variable, f64)> = (0..n)
                .filter(|&i| i != j)
                .map(|i| (var(i, j), 1.0 - self.losses[i * n + j]))
                .collect();
            need_rows.push(
                p.add_constraint(&terms, Relation::Le, self.needs[j])
                    .unwrap(),
            );
        }
        (p, flows, donor_rows, need_rows)
    }
}

fn flow_instance(sites: usize) -> impl Strategy<Value = FlowInstance> {
    let pairs = sites * sites;
    (
        proptest::collection::vec(0.0..3.0f64, pairs),
        proptest::collection::vec(0.0..4.0f64, sites),
        proptest::collection::vec(0.0..4.0f64, sites),
        proptest::collection::vec(1.0..90.0f64, sites),
        proptest::collection::vec(0.0..0.3f64, pairs),
    )
        .prop_map(move |(caps, donors, needs, prices, losses)| FlowInstance {
            sites,
            caps,
            donors,
            needs,
            prices,
            losses,
        })
}

/// The aggregated prospective form: per-link totals `t_l ∈ [0, cap]`
/// plus per-donor bought amounts `z_i`, with free-budget rows
/// `Σ_l t_l − z_i ≤ surplus_i`, total-budget rows
/// `Σ_l t_l ≤ surplus_i + procurable_i` and need rows — the shape of
/// `FleetPlanner::plan_prospective`'s network template.
#[derive(Debug, Clone)]
struct ProspectiveInstance {
    sites: usize,
    caps: Vec<f64>,
    surplus: Vec<f64>,
    procurable: Vec<f64>,
    needs: Vec<f64>,
    values: Vec<f64>,
    buy_costs: Vec<f64>,
}

impl ProspectiveInstance {
    fn build(&self) -> Problem {
        let n = self.sites;
        let mut p = Problem::new(Sense::Minimize);
        let mut links: Vec<Vec<(usize, Variable)>> = vec![Vec::new(); n];
        for (i, out) in links.iter_mut().enumerate() {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let t = p
                    .add_var(
                        format!("t{i}_{j}"),
                        0.0,
                        self.caps[i * n + j],
                        -self.values[i * n + j],
                    )
                    .unwrap();
                out.push((j, t));
            }
        }
        for (i, out) in links.iter().enumerate() {
            let z = p
                .add_var(format!("z{i}"), 0.0, self.procurable[i], self.buy_costs[i])
                .unwrap();
            let mut free: Vec<(Variable, f64)> = out.iter().map(|&(_, t)| (t, 1.0)).collect();
            free.push((z, -1.0));
            p.add_constraint(&free, Relation::Le, self.surplus[i])
                .unwrap();
            let total: Vec<(Variable, f64)> = out.iter().map(|&(_, t)| (t, 1.0)).collect();
            p.add_constraint(&total, Relation::Le, self.surplus[i] + self.procurable[i])
                .unwrap();
        }
        for j in 0..n {
            let terms: Vec<(Variable, f64)> = (0..n)
                .flat_map(|i| links[i].iter().filter(|&&(to, _)| to == j))
                .map(|&(_, t)| (t, 0.95))
                .collect();
            p.add_constraint(&terms, Relation::Le, self.needs[j])
                .unwrap();
        }
        p
    }
}

fn prospective_instance(sites: usize) -> impl Strategy<Value = ProspectiveInstance> {
    let pairs = sites * sites;
    (
        proptest::collection::vec(0.0..3.0f64, pairs),
        proptest::collection::vec(0.0..4.0f64, sites),
        proptest::collection::vec(0.0..2.0f64, sites),
        proptest::collection::vec(0.0..4.0f64, sites),
        proptest::collection::vec(0.0..90.0f64, pairs),
        proptest::collection::vec(0.0..120.0f64, sites),
    )
        .prop_map(
            move |(caps, surplus, procurable, needs, values, buy_costs)| ProspectiveInstance {
                sites,
                caps,
                surplus,
                procurable,
                needs,
                values,
                buy_costs,
            },
        )
}

fn assert_objectives_agree(p: &Problem, ws: &mut LpWorkspace) {
    let dense = p.solve().expect("packing LPs are always feasible");
    let net = p
        .solve_network_with(ws)
        .expect("packing LPs are always feasible");
    let tol = 1e-9 * (1.0 + dense.objective().abs());
    assert!(
        (dense.objective() - net.objective()).abs() <= tol,
        "dense {} vs network {} (warm: {})",
        dense.objective(),
        net.objective(),
        ws.last_was_warm()
    );
    assert!(
        p.is_feasible(net.values(), 1e-6),
        "network solution infeasible: {:?}",
        net.values()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On randomized settlement-shaped flow LPs, the network path and
    /// dense simplex agree on the objective to 1e-9.
    #[test]
    fn network_matches_dense_on_flow_instances(inst in flow_instance(4)) {
        let (p, _) = inst.build();
        prop_assert!(p.is_network_form());
        assert_objectives_agree(&p, &mut LpWorkspace::new());
    }

    /// Same on the aggregated prospective shape (negative row
    /// coefficients on the bought column exercise the general pricing).
    #[test]
    fn network_matches_dense_on_prospective_instances(
        inst in prospective_instance(4),
    ) {
        let p = inst.build();
        prop_assert!(p.is_network_form());
        assert_objectives_agree(&p, &mut LpWorkspace::new());
    }

    /// A frame-to-frame re-solve chain through one workspace — the
    /// FleetPlanner loop: edit every bound, rhs and objective, re-solve
    /// warm, and never drift from a cold dense solve.
    #[test]
    fn warm_network_chain_never_drifts(
        inst in flow_instance(3),
        edits in proptest::collection::vec(
            (
                proptest::collection::vec(0.0..3.0f64, 6),
                proptest::collection::vec(0.0..4.0f64, 3),
                proptest::collection::vec(0.0..4.0f64, 3),
                proptest::collection::vec(1.0..90.0f64, 6),
            ),
            1..5,
        ),
    ) {
        let (mut p, flows, donor_rows, need_rows) = inst.build_full();
        let mut ws = LpWorkspace::new();
        assert_objectives_agree(&p, &mut ws);
        for (caps, donors, needs, prices) in &edits {
            for (k, f) in flows.iter().enumerate() {
                p.set_bounds(*f, 0.0, caps[k]).unwrap();
                p.set_objective(*f, -prices[k]).unwrap();
            }
            for (row, &d) in donor_rows.iter().zip(donors) {
                p.set_rhs(*row, d).unwrap();
            }
            for (row, &nd) in need_rows.iter().zip(needs) {
                p.set_rhs(*row, nd).unwrap();
            }
            assert_objectives_agree(&p, &mut ws);
        }
    }
}

#[test]
fn warm_path_engages_on_resolve_chains() {
    // Deterministic check that the chain property actually exercises the
    // warm path rather than silently falling back cold every solve.
    let inst = FlowInstance {
        sites: 3,
        caps: vec![0.0, 2.0, 1.5, 1.0, 0.0, 2.0, 0.5, 1.0, 0.0],
        donors: vec![2.0, 1.0, 3.0],
        needs: vec![1.5, 2.5, 0.5],
        prices: vec![45.0, 60.0, 30.0],
        losses: vec![0.0; 9],
    };
    let (mut p, flows) = inst.build();
    let mut ws = LpWorkspace::new();
    p.solve_network_with(&mut ws).unwrap();
    for (k, cap) in [(0usize, 0.5), (3, 2.0), (5, 0.0), (0, 2.0)] {
        p.set_bounds(flows[k], 0.0, cap).unwrap();
        let net = p.solve_network_with(&mut ws).unwrap();
        let dense = p.solve().unwrap();
        assert!(
            (net.objective() - dense.objective()).abs() <= 1e-9 * (1.0 + dense.objective().abs()),
            "cap edit {k}->{cap}: network {} vs dense {}",
            net.objective(),
            dense.objective()
        );
    }
    assert!(
        ws.warm_solves() >= 2,
        "bound edits must keep the network warm path eligible: {} warm / {} cold / {} rejects",
        ws.warm_solves(),
        ws.cold_solves(),
        ws.warm_rejects()
    );
}

#[test]
fn network_entry_point_accepts_non_packing_problems() {
    // The fallback keeps `solve_network_with` a drop-in `solve_with`:
    // an equality-constrained LP routes to the dense path and solves.
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_var("x", 0.0, 5.0, 2.0).unwrap();
    let y = p.add_var("y", 0.0, 5.0, 3.0).unwrap();
    p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0)
        .unwrap();
    assert!(!p.is_network_form());
    let sol = p.solve_network_with(&mut LpWorkspace::new()).unwrap();
    assert!((sol.objective() - 8.0).abs() < 1e-9, "{}", sol.objective());
    assert!((sol.value(x) - 4.0).abs() < 1e-9);
}
